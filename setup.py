"""Legacy setup shim: this offline environment lacks the `wheel` package
that PEP 660 editable installs require, so `pip install -e .` falls back
to `setup.py develop` via this file. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
