# Repro convenience targets.  PY overrides the interpreter.
PY ?= python
PYTHONPATH := src
export PYTHONPATH

.PHONY: test verify sweep conformance bench-gate verify-cluster verify-rebalance verify-archive verify-service policy-lint profile

# Tier-1: the full unit/integration suite.
test:
	$(PY) -m pytest -x -q

# Static analysis of the declarative policy rulesets (dead rules,
# coverage gaps); non-zero exit on any error-severity finding.
policy-lint:
	$(PY) -m repro policy lint

# The PR gate: tier-1, ruleset lint, a bounded crash-consistency sweep +
# differential conformance + detection equivalence, the E2/E8/E9
# regression gates, the online-rebalance (E6b) gate, the tiered
# cold-archive (E7b) gate, and the wire-service (E11) gate.
verify: test policy-lint bench-gate verify-rebalance verify-archive verify-service
	$(PY) -m repro verify --limit 12

# The exhaustive sweep: every write boundary, clean + torn.  ~30s.
sweep:
	$(PY) -m repro verify --skip-conformance

conformance:
	$(PY) -m repro verify --skip-sweep

bench-gate:
	$(PY) -m pytest benchmarks/bench_e2_throughput.py::test_e2_batched_ingest -q
	$(PY) -m pytest benchmarks/bench_e8_audit_scaling.py::test_e8_incremental_fast_path -q
	$(PY) -m pytest benchmarks/bench_e9_cluster_scaling.py::test_e9_cluster_scaling -q
	$(PY) benchmarks/check_regression.py

# cProfile of the E2 hot write path (the profile that drives the
# raw-speed work).  ARGS passes extra flags, e.g.
# `make profile ARGS="--arm single --sort tottime"`.
profile:
	$(PY) benchmarks/profile_e2.py $(ARGS)

# Elastic-resharding gate: the vnode-ring property suite, the
# rebalancer's functional and crash-sweep tests, the rebalance
# detection-equivalence oracle, and the E6b online-rebalance arm
# (p99-under-fire + proof re-verification) gated by check_regression.
verify-rebalance:
	$(PY) -m pytest tests/cluster/test_vnode_ring.py tests/cluster/test_rebalancer.py tests/cluster/test_rebalance_crash.py tests/cluster/test_cluster_equivalence.py -q
	$(PY) -m pytest benchmarks/bench_e6_migration.py::test_e6b_online_rebalance -q
	$(PY) benchmarks/check_regression.py --skip-e8 --skip-e9

# Tiered-archive gate: the segment/cold-store/tiering suites (incl.
# the demotion crash sweep), the demote→recall round-trip properties,
# the cold-residue threat tests, and the E7b arm (footprint, recall
# p99, incremental-verify bars) gated by check_regression.
verify-archive:
	$(PY) -m pytest tests/archive tests/property/test_archive_roundtrip.py tests/threats/test_cold_residue.py -q
	$(PY) -m pytest benchmarks/bench_e7_retention_30yr.py -q
	$(PY) benchmarks/check_regression.py --skip-e8 --skip-e9 --skip-e6

# Wire-service gate: the service suite (wire schema, session
# lifecycle, admission control, the audit oracle) and the E11
# closed-loop load arm (200 concurrent sessions, sustained-RPS floor,
# p99 ceiling, full audit coverage) gated by check_regression.
verify-service:
	$(PY) -m pytest tests/service -q
	$(PY) -m pytest benchmarks/bench_e11_service.py -q
	$(PY) benchmarks/check_regression.py --skip-e8 --skip-e9 --skip-e6 --skip-e7

# Cluster-only gate: the sharded router's tests, the cross-shard
# detection-equivalence oracle, and the E9 scaling bar.
verify-cluster:
	$(PY) -m pytest tests/cluster -q
	$(PY) -m repro verify --skip-sweep --skip-conformance --shards 2
	$(PY) -m pytest benchmarks/bench_e9_cluster_scaling.py::test_e9_cluster_scaling -q
	$(PY) benchmarks/check_regression.py --skip-e8
