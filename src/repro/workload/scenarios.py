"""Named workload scenarios used by examples and benchmarks.

Each scenario is a thin script over :class:`WorkloadGenerator` that
describes a recognizable operational situation:

* :class:`HospitalDayScenario` — a day of admissions, charting, and
  lookups: the throughput workload (E2).
* :class:`ThirtyYearArchiveScenario` — records written, then decades of
  simulated time with periodic media refresh: the retention workload
  (E7).
* :class:`AuditSeasonScenario` — a burst of reads plus the forensic
  queries a compliance audit triggers: the audit-scaling workload (E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.clock import SECONDS_PER_DAY, SimulatedClock
from repro.workload.generator import GeneratedRecord, WorkloadGenerator


@dataclass
class HospitalDayScenario:
    """One day of hospital operation."""

    seed: int = 7
    n_patients: int = 50
    n_records: int = 200
    n_corrections: int = 10
    clock: SimulatedClock = field(default_factory=lambda: SimulatedClock(start=1.17e9))

    def build(self) -> tuple[WorkloadGenerator, list[GeneratedRecord]]:
        """Generate the day's records (clock advances through the day)."""
        generator = WorkloadGenerator(self.seed, self.clock)
        patients = generator.create_population(self.n_patients)
        emitted = [generator.demographics_record(p) for p in patients]
        per_record_gap = SECONDS_PER_DAY / max(1, self.n_records)
        for _ in range(self.n_records):
            self.clock.advance(per_record_gap)
            emitted.extend(generator.mixed_stream(1))
        return generator, emitted


@dataclass
class ThirtyYearArchiveScenario:
    """Records created in year 0, retained for 30 simulated years."""

    seed: int = 11
    n_patients: int = 20
    n_records: int = 100
    years: float = 30.0
    media_refresh_years: float = 5.0
    clock: SimulatedClock = field(default_factory=lambda: SimulatedClock(start=1.17e9))

    def build(self) -> tuple[WorkloadGenerator, list[GeneratedRecord]]:
        generator = WorkloadGenerator(self.seed, self.clock)
        patients = generator.create_population(self.n_patients)
        emitted = [generator.demographics_record(p) for p in patients]
        # Ensure a healthy share of 30-year OSHA exposure records.
        for _ in range(self.n_records // 4):
            emitted.append(generator.exposure_record())
        emitted.extend(generator.mixed_stream(self.n_records - self.n_records // 4))
        return generator, emitted

    def refresh_epochs(self) -> list[float]:
        """Years at which media must be refreshed (migration points)."""
        epochs = []
        year = self.media_refresh_years
        while year < self.years:
            epochs.append(year)
            year += self.media_refresh_years
        return epochs


@dataclass
class AuditSeasonScenario:
    """A compliance-audit read/query storm over an existing store."""

    seed: int = 13
    n_patients: int = 30
    n_records: int = 150
    n_reads: int = 500
    clock: SimulatedClock = field(default_factory=lambda: SimulatedClock(start=1.17e9))

    def build(self) -> tuple[WorkloadGenerator, list[GeneratedRecord]]:
        generator = WorkloadGenerator(self.seed, self.clock)
        patients = generator.create_population(self.n_patients)
        emitted = [generator.demographics_record(p) for p in patients]
        emitted.extend(generator.mixed_stream(self.n_records))
        return generator, emitted

    def read_targets(self, generator: WorkloadGenerator) -> list[GeneratedRecord]:
        """The zipf-ish read stream of the audit season."""
        return [
            generator.sample_emitted(1)[0]
            for _ in range(self.n_reads)
        ]
