"""Clinical vocabulary for synthetic records.

Small curated lists — enough vocabulary diversity for the index
experiments (hundreds of distinct terms, realistic skew) without
shipping a medical ontology.  Condition entries carry a code modeled on
ICD-9 formatting and note-text fragments the note generator samples.
"""

from __future__ import annotations

FIRST_NAMES = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Wei", "Ana",
    "Omar", "Fatima", "Raj", "Priya", "Yuki", "Kofi", "Ingrid", "Dmitri",
)

LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Nguyen", "Chen", "Patel", "Kim", "Ali", "Okafor", "Svensson", "Ivanov",
)

DEPARTMENTS = (
    "cardiology", "oncology", "neurology", "orthopedics", "pediatrics",
    "emergency", "radiology", "endocrinology", "pulmonology", "nephrology",
)

# (icd-ish code, condition name, note fragments)
CONDITIONS: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("250.00", "diabetes mellitus", ("elevated glucose", "metformin continued", "a1c trending down")),
    ("401.9", "hypertension", ("blood pressure elevated", "lisinopril adjusted", "sodium restriction advised")),
    ("162.9", "lung carcinoma", ("mass noted on imaging", "biopsy scheduled", "oncology referral placed")),
    ("174.9", "breast cancer", ("lumpectomy discussed", "tamoxifen initiated", "staging complete")),
    ("428.0", "heart failure", ("reduced ejection fraction", "diuretics titrated", "edema improving")),
    ("493.90", "asthma", ("wheezing on exam", "albuterol prescribed", "peak flow improved")),
    ("585.9", "chronic kidney disease", ("creatinine rising", "nephrology consulted", "dialysis discussed")),
    ("331.0", "alzheimer disease", ("memory decline reported", "donepezil started", "caregiver counseled")),
    ("042", "hiv disease", ("viral load undetectable", "antiretroviral adherence good", "cd4 stable")),
    ("296.20", "major depression", ("mood low", "sertraline initiated", "therapy referral made")),
    ("715.90", "osteoarthritis", ("joint pain chronic", "nsaids continued", "replacement discussed")),
    ("530.81", "reflux esophagitis", ("heartburn frequent", "omeprazole prescribed", "endoscopy normal")),
)

OBSERVATION_CODES: tuple[tuple[str, str, str, float, float], ...] = (
    # (code, display, unit, low, high)
    ("8480-6", "systolic blood pressure", "mmHg", 90.0, 200.0),
    ("8462-4", "diastolic blood pressure", "mmHg", 50.0, 120.0),
    ("2339-0", "glucose", "mg/dL", 60.0, 350.0),
    ("718-7", "hemoglobin", "g/dL", 7.0, 18.0),
    ("2160-0", "creatinine", "mg/dL", 0.4, 6.0),
    ("8867-4", "heart rate", "bpm", 40.0, 160.0),
    ("8310-5", "body temperature", "C", 35.0, 41.0),
    ("2571-8", "triglycerides", "mg/dL", 40.0, 500.0),
)

ENCOUNTER_TYPES = ("admission", "outpatient", "followup", "procedure", "telehealth")

EXPOSURE_AGENTS = (
    "asbestos", "benzene", "ionizing radiation", "silica dust",
    "lead", "formaldehyde", "ethylene oxide",
)

STREETS = (
    "Maple Street", "Oak Avenue", "Cedar Lane", "Elm Drive",
    "Birch Road", "Willow Way", "Juniper Court",
)

CITIES = (
    "Springfield", "Riverton", "Lakeview", "Fairmont",
    "Georgetown", "Clinton", "Ashland",
)
