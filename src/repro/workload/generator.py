"""The deterministic EHR workload generator.

Produces a patient population and streams of records (demographics,
encounters, observations, clinical notes, exposure records) with:

* zipf-skewed patient activity (a few patients generate most records,
  as in real hospitals);
* condition assignment per patient, so a patient's notes consistently
  mention their conditions (which gives the index workload realistic
  term co-occurrence);
* embedded PHI in note text at a configurable rate (phone numbers,
  dates), exercising the de-identification scrubber;
* correction requests against previously-emitted records.

All randomness flows from a single :class:`DeterministicRng`, so a
seeded generator is fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.records.model import (
    ClinicalNote,
    Encounter,
    HealthRecord,
    Observation,
    Patient,
    RecordType,
)
from repro.util.clock import Clock
from repro.util.identifiers import IdGenerator
from repro.util.rng import DeterministicRng
from repro.workload import vocab


@dataclass(frozen=True)
class GeneratedRecord:
    """A record plus the workload metadata experiments need."""

    record: HealthRecord
    author_id: str
    conditions: tuple[str, ...]  # condition names mentioned, for index checks


@dataclass(frozen=True)
class PatientProfile:
    """The generator's internal model of one patient."""

    patient_id: str
    name: str
    birth_date: str
    address: str
    phone: str
    ssn: str
    conditions: tuple[tuple[str, str, tuple[str, ...]], ...]


class WorkloadGenerator:
    """Seeded generator of patients and record streams."""

    def __init__(self, seed: int | str, clock: Clock, n_providers: int = 8) -> None:
        self._rng = DeterministicRng(seed)
        self._ids = IdGenerator(seed=str(seed))
        self._clock = clock
        self._patients: list[PatientProfile] = []
        self._providers = [f"dr-{i:02d}" for i in range(max(1, n_providers))]
        self._emitted: list[GeneratedRecord] = []

    # -- population --------------------------------------------------------

    def _make_patient(self) -> PatientProfile:
        rng = self._rng
        first = rng.choice(vocab.FIRST_NAMES)
        last = rng.choice(vocab.LAST_NAMES)
        year = rng.randint(1930, 2000)
        birth_date = f"{year:04d}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
        address = (
            f"{rng.randint(1, 999)} {rng.choice(vocab.STREETS)}, "
            f"{rng.choice(vocab.CITIES)}"
        )
        phone = f"555-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
        ssn = f"{rng.randint(100, 899)}-{rng.randint(10, 99)}-{rng.randint(1000, 9999)}"
        n_conditions = rng.randint(1, 3)
        conditions = tuple(rng.sample(vocab.CONDITIONS, n_conditions))
        return PatientProfile(
            patient_id=self._ids.next("pat"),
            name=f"{first} {last}",
            birth_date=birth_date,
            address=address,
            phone=phone,
            ssn=ssn,
            conditions=conditions,
        )

    def create_population(self, n_patients: int) -> list[PatientProfile]:
        """Create patients (additive across calls)."""
        if n_patients <= 0:
            raise WorkloadError("population size must be positive")
        created = [self._make_patient() for _ in range(n_patients)]
        self._patients.extend(created)
        return created

    @property
    def patients(self) -> list[PatientProfile]:
        return list(self._patients)

    def _pick_patient(self) -> PatientProfile:
        if not self._patients:
            raise WorkloadError("create_population must be called first")
        return self._patients[self._rng.zipf_index(len(self._patients))]

    def _pick_provider(self) -> str:
        return self._rng.choice(self._providers)

    @property
    def providers(self) -> list[str]:
        return list(self._providers)

    # -- record streams ---------------------------------------------------------

    def demographics_record(self, patient: PatientProfile) -> GeneratedRecord:
        record = Patient.create(
            record_id=self._ids.next("rec"),
            patient_id=patient.patient_id,
            created_at=self._clock.now(),
            name=patient.name,
            birth_date=patient.birth_date,
            address=patient.address,
            phone=patient.phone,
            ssn=patient.ssn,
        )
        return self._emit(record, "registrar", ())

    def encounter_record(self, patient: PatientProfile | None = None) -> GeneratedRecord:
        patient = patient or self._pick_patient()
        condition = self._rng.choice(patient.conditions)
        record = Encounter.create(
            record_id=self._ids.next("rec"),
            patient_id=patient.patient_id,
            created_at=self._clock.now(),
            encounter_type=self._rng.choice(vocab.ENCOUNTER_TYPES),
            provider=self._pick_provider(),
            department=self._rng.choice(vocab.DEPARTMENTS),
            reason=condition[1],
        )
        return self._emit(record, record.body["provider"], (condition[1],))

    def observation_record(self, patient: PatientProfile | None = None) -> GeneratedRecord:
        patient = patient or self._pick_patient()
        code, display, unit, low, high = self._rng.choice(vocab.OBSERVATION_CODES)
        value = round(self._rng.uniform(low, high), 1)
        record = Observation.create(
            record_id=self._ids.next("rec"),
            patient_id=patient.patient_id,
            created_at=self._clock.now(),
            code=code,
            display=display,
            value=value,
            unit=unit,
            abnormal=self._rng.bernoulli(0.2),
        )
        return self._emit(record, self._pick_provider(), ())

    def note_record(
        self,
        patient: PatientProfile | None = None,
        phi_in_text_probability: float = 0.1,
    ) -> GeneratedRecord:
        patient = patient or self._pick_patient()
        condition = self._rng.choice(patient.conditions)
        fragments = list(condition[2])
        sentences = [f"assessment consistent with {condition[1]}."]
        sentences += [f"{frag}." for frag in self._rng.sample(fragments, min(2, len(fragments)))]
        if self._rng.bernoulli(phi_in_text_probability):
            sentences.append(f"contacted family at {patient.phone}.")
        author = self._pick_provider()
        record = ClinicalNote.create(
            record_id=self._ids.next("rec"),
            patient_id=patient.patient_id,
            created_at=self._clock.now(),
            author=author,
            specialty=self._rng.choice(vocab.DEPARTMENTS),
            text=" ".join(sentences),
        )
        return self._emit(record, author, (condition[1],))

    def exposure_record(self, patient: PatientProfile | None = None) -> GeneratedRecord:
        patient = patient or self._pick_patient()
        agent = self._rng.choice(vocab.EXPOSURE_AGENTS)
        record = HealthRecord(
            record_id=self._ids.next("rec"),
            record_type=RecordType.EXPOSURE_RECORD,
            patient_id=patient.patient_id,
            created_at=self._clock.now(),
            body={
                "agent": agent,
                "exposure_level": round(self._rng.uniform(0.1, 10.0), 2),
                "unit": "mg/m3",
                "workplace": f"{self._rng.choice(vocab.CITIES)} plant",
            },
        )
        return self._emit(record, "occupational-health", (agent,))

    def claim_record(self, patient: PatientProfile | None = None) -> GeneratedRecord:
        patient = patient or self._pick_patient()
        record = HealthRecord(
            record_id=self._ids.next("rec"),
            record_type=RecordType.INSURANCE_CLAIM,
            patient_id=patient.patient_id,
            created_at=self._clock.now(),
            body={
                "claim_number": f"CLM-{self._rng.randint(100000, 999999)}",
                "amount": round(self._rng.uniform(50.0, 25_000.0), 2),
                "payer": self._rng.choice(["medicare", "medicaid", "private"]),
                "status": self._rng.choice(["submitted", "paid", "denied"]),
            },
        )
        return self._emit(record, "billing-system", ())

    def mixed_stream(self, count: int) -> list[GeneratedRecord]:
        """A realistic mix: 15% encounters, 40% observations, 30% notes,
        5% exposure records, 10% insurance claims."""
        if count < 0:
            raise WorkloadError("count must be non-negative")
        emitted = []
        for _ in range(count):
            kind = self._rng.weighted_choice(
                ["encounter", "observation", "note", "exposure", "claim"],
                [0.15, 0.40, 0.30, 0.05, 0.10],
            )
            if kind == "encounter":
                emitted.append(self.encounter_record())
            elif kind == "observation":
                emitted.append(self.observation_record())
            elif kind == "note":
                emitted.append(self.note_record())
            elif kind == "claim":
                emitted.append(self.claim_record())
            else:
                emitted.append(self.exposure_record())
        return emitted

    # -- corrections ----------------------------------------------------------------

    def correction_for(self, generated: GeneratedRecord) -> tuple[HealthRecord, str]:
        """Produce a corrected copy of an emitted record plus the reason.

        Observations get a corrected value; notes get an addendum; other
        types get a corrected-field tweak.
        """
        record = generated.record
        body = dict(record.body)
        if record.record_type is RecordType.OBSERVATION:
            body["value"] = round(body["value"] * self._rng.uniform(0.9, 1.1), 1)
            reason = "value transcription error"
        elif record.record_type is RecordType.CLINICAL_NOTE:
            body["text"] = body["text"] + " addendum: prior entry amended per patient request."
            reason = "patient-requested amendment"
        else:
            body["corrected"] = True
            reason = "administrative correction"
        corrected = HealthRecord(
            record_id=record.record_id,
            record_type=record.record_type,
            patient_id=record.patient_id,
            created_at=self._clock.now(),
            body=body,
        )
        return corrected, reason

    # -- bookkeeping -------------------------------------------------------------------

    def _emit(
        self, record: HealthRecord, author_id: str, conditions: tuple[str, ...]
    ) -> GeneratedRecord:
        generated = GeneratedRecord(record=record, author_id=author_id, conditions=conditions)
        self._emitted.append(generated)
        return generated

    @property
    def emitted(self) -> list[GeneratedRecord]:
        return list(self._emitted)

    def sample_emitted(self, count: int) -> list[GeneratedRecord]:
        """Random sample of already-emitted records (for corrections/reads)."""
        if not self._emitted:
            raise WorkloadError("no records emitted yet")
        return self._rng.sample(self._emitted, min(count, len(self._emitted)))
