"""Synthetic EHR workloads.

Real PHI cannot be used (that is the entire point of the paper), so the
experiments run on deterministic synthetic data whose *shape* matches
clinical workloads: a patient population with zipf-skewed access, a mix
of encounters / observations / notes, clinical vocabulary for the index
workload, correction requests, and audit-season read storms.

Everything derives from a seed; the same seed reproduces byte-identical
workloads on any machine.
"""

from repro.workload.generator import GeneratedRecord, WorkloadGenerator
from repro.workload.scenarios import (
    AuditSeasonScenario,
    HospitalDayScenario,
    ThirtyYearArchiveScenario,
)
from repro.workload.vocab import CONDITIONS, DEPARTMENTS, FIRST_NAMES, LAST_NAMES

__all__ = [
    "GeneratedRecord",
    "WorkloadGenerator",
    "AuditSeasonScenario",
    "HospitalDayScenario",
    "ThirtyYearArchiveScenario",
    "CONDITIONS",
    "DEPARTMENTS",
    "FIRST_NAMES",
    "LAST_NAMES",
]
