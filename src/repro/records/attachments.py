"""Binary attachments: imaging and scanned documents.

Health records routinely carry large binary payloads (DICOM studies,
scanned consent forms).  An :class:`Attachment` is chunked, each chunk
AEAD-encrypted under the owning record's data key and stored as its own
WORM object, with a manifest committing to the chunk digests — so a
multi-megabyte study gets the same integrity, retention, and secure-
deletion treatment as a structured record, and a single corrupted chunk
is localized rather than poisoning the whole study.

This module is storage-engine-agnostic plumbing: it chunks, seals, and
verifies; the caller provides ``put``/``get`` functions (usually bound
to a :class:`~repro.worm.store.WormStore`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.crypto.aead import AeadCipher, AeadCiphertext
from repro.crypto.hashing import sha256
from repro.errors import IntegrityError, ValidationError

DEFAULT_CHUNK_SIZE = 64 * 1024

PutFn = Callable[[str, bytes], None]
GetFn = Callable[[str], bytes]


@dataclass(frozen=True)
class AttachmentManifest:
    """Commitment to one attachment's chunks."""

    attachment_id: str
    content_type: str
    total_size: int
    chunk_size: int
    chunk_ids: tuple[str, ...]
    chunk_digests: tuple[bytes, ...]  # digests of the *plaintext* chunks
    content_digest: bytes  # digest of the full plaintext

    def to_dict(self) -> dict:
        return {
            "attachment_id": self.attachment_id,
            "content_type": self.content_type,
            "total_size": self.total_size,
            "chunk_size": self.chunk_size,
            "chunk_ids": list(self.chunk_ids),
            "chunk_digests": list(self.chunk_digests),
            "content_digest": self.content_digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttachmentManifest":
        return cls(
            attachment_id=data["attachment_id"],
            content_type=data["content_type"],
            total_size=data["total_size"],
            chunk_size=data["chunk_size"],
            chunk_ids=tuple(data["chunk_ids"]),
            chunk_digests=tuple(data["chunk_digests"]),
            content_digest=data["content_digest"],
        )


def store_attachment(
    attachment_id: str,
    data: bytes,
    cipher: AeadCipher,
    put: PutFn,
    content_type: str = "application/octet-stream",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> AttachmentManifest:
    """Chunk, encrypt, and store an attachment; returns its manifest."""
    if not attachment_id:
        raise ValidationError("attachment id must not be empty")
    if chunk_size < 1:
        raise ValidationError("chunk size must be positive")
    chunk_ids: list[str] = []
    chunk_digests: list[bytes] = []
    for index in range(0, max(len(data), 1), chunk_size):
        chunk = data[index : index + chunk_size]
        chunk_id = f"{attachment_id}/chunk-{index // chunk_size:06d}"
        sealed = cipher.encrypt(chunk, associated_data=chunk_id.encode("utf-8"))
        put(chunk_id, sealed.to_bytes())
        chunk_ids.append(chunk_id)
        chunk_digests.append(sha256(chunk))
    return AttachmentManifest(
        attachment_id=attachment_id,
        content_type=content_type,
        total_size=len(data),
        chunk_size=chunk_size,
        chunk_ids=tuple(chunk_ids),
        chunk_digests=tuple(chunk_digests),
        content_digest=sha256(data),
    )


def load_attachment(
    manifest: AttachmentManifest, cipher: AeadCipher, get: GetFn
) -> bytes:
    """Fetch, decrypt, and verify an attachment end-to-end.

    Raises :class:`IntegrityError` naming the first bad chunk, or a
    final whole-content digest mismatch.
    """
    pieces: list[bytes] = []
    for chunk_id, expected in zip(manifest.chunk_ids, manifest.chunk_digests):
        sealed = AeadCiphertext.from_bytes(get(chunk_id))
        chunk = cipher.decrypt(sealed, associated_data=chunk_id.encode("utf-8"))
        if sha256(chunk) != expected:
            raise IntegrityError(f"attachment chunk {chunk_id} failed its digest")
        pieces.append(chunk)
    data = b"".join(pieces)[: manifest.total_size]
    if sha256(data) != manifest.content_digest:
        raise IntegrityError(
            f"attachment {manifest.attachment_id} failed its content digest"
        )
    return data


def verify_attachment(
    manifest: AttachmentManifest, cipher: AeadCipher, get: GetFn
) -> list[str]:
    """Integrity-scan an attachment; returns the ids of bad chunks
    (empty == intact) instead of raising, for audit sweeps."""
    bad: list[str] = []
    for chunk_id, expected in zip(manifest.chunk_ids, manifest.chunk_digests):
        try:
            sealed = AeadCiphertext.from_bytes(get(chunk_id))
            chunk = cipher.decrypt(sealed, associated_data=chunk_id.encode("utf-8"))
        except Exception:
            bad.append(chunk_id)
            continue
        if sha256(chunk) != expected:
            bad.append(chunk_id)
    return bad
