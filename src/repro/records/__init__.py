"""Electronic health record data model.

A deliberately FHIR-flavoured but self-contained model:

* :mod:`repro.records.model` — patients, encounters, observations and
  clinical notes as immutable dataclasses with canonical encodings.
* :mod:`repro.records.phi` — the 18 HIPAA Safe-Harbor identifier
  categories, classification of record fields, and de-identification.
* :mod:`repro.records.versioning` — append-only version chains.  The
  paper's Section 4 observes that WORM storage "does not support
  corrections" while patients have the right to request them; the
  version chain is the hybrid answer: a correction is a new immutable
  version linked (by hash) to its predecessor, so history is preserved
  *and* the current view is correct.
"""

from repro.records.attachments import (
    AttachmentManifest,
    load_attachment,
    store_attachment,
    verify_attachment,
)
from repro.records.model import (
    ClinicalNote,
    Encounter,
    HealthRecord,
    Observation,
    Patient,
    RecordType,
)
from repro.records.phi import (
    PHI_CATEGORIES,
    PhiCategory,
    classify_fields,
    deidentify,
    generalize_birth_date,
)
from repro.records.versioning import RecordVersion, VersionChain

__all__ = [
    "AttachmentManifest",
    "load_attachment",
    "store_attachment",
    "verify_attachment",
    "ClinicalNote",
    "Encounter",
    "HealthRecord",
    "Observation",
    "Patient",
    "RecordType",
    "PHI_CATEGORIES",
    "PhiCategory",
    "classify_fields",
    "deidentify",
    "generalize_birth_date",
    "RecordVersion",
    "VersionChain",
]
