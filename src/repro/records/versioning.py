"""Append-only version chains: corrections without mutation.

The paper's Section 4 identifies the central tension of compliance WORM
storage for healthcare: records must be immutable (integrity, retention)
*and* correctable (HIPAA gives individuals the right to request
corrections).  The resolution implemented here:

* every record version is immutable once written;
* a correction (or amendment) is a *new* version whose header carries
  the SHA-256 of its predecessor's canonical form, a reason string, and
  the author;
* the chain head digest commits to the entire history, so rewriting an
  old version is detectable by rehashing;
* reads default to the latest version, but every historical version
  stays retrievable — an auditor can replay the record's evolution.

:class:`VersionChain` is pure data structure (no storage); the WORM
store persists each version as its own write-once object and keeps the
chain linkage inside the version headers, so the chain survives and is
re-verifiable from raw storage alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.crypto.hashing import hash_canonical
from repro.errors import IntegrityError, RecordError, ValidationError
from repro.records.model import HealthRecord
from repro.util.encoding import IdentityMemo

# Versions are frozen once constructed, so their canonical digest is a
# pure function of identity — memoized so chain verification and head
# digests never re-encode an unchanged version.
_DIGEST_MEMO = IdentityMemo(capacity=4096)


@dataclass(frozen=True)
class RecordVersion:
    """One immutable version of a health record."""

    record: HealthRecord
    version_number: int
    previous_digest: bytes  # 32 zero bytes for version 0
    reason: str  # why this version exists ("initial", correction note)
    author_id: str  # who created it
    created_at: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "record": self.record.to_dict(),
            "version_number": self.version_number,
            "previous_digest": self.previous_digest,
            "reason": self.reason,
            "author_id": self.author_id,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RecordVersion":
        try:
            return cls(
                record=HealthRecord.from_dict(data["record"]),
                version_number=data["version_number"],
                previous_digest=data["previous_digest"],
                reason=data["reason"],
                author_id=data["author_id"],
                created_at=data["created_at"],
            )
        except KeyError as exc:
            raise ValidationError(f"malformed version dict: missing {exc}") from exc

    def digest(self) -> bytes:
        """Canonical digest of this version (chains into the successor).

        Memoized on this (frozen) instance — repeated chain walks and
        head-digest reads encode each version at most once.
        """
        return _DIGEST_MEMO.get(self, lambda v: hash_canonical(v.to_dict()))


_GENESIS = bytes(32)


class VersionChain:
    """The ordered, hash-linked versions of one record id."""

    def __init__(self, record_id: str) -> None:
        self.record_id = record_id
        self._versions: list[RecordVersion] = []

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[RecordVersion]:
        return iter(self._versions)

    @property
    def head_digest(self) -> bytes:
        """Digest of the latest version (genesis digest when empty)."""
        if not self._versions:
            return _GENESIS
        return self._versions[-1].digest()

    def append_initial(
        self, record: HealthRecord, author_id: str, created_at: float
    ) -> RecordVersion:
        """Start the chain with version 0."""
        if self._versions:
            raise RecordError(f"record {self.record_id} already has versions")
        if record.record_id != self.record_id:
            raise ValidationError(
                f"record id {record.record_id} does not match chain {self.record_id}"
            )
        version = RecordVersion(
            record=record,
            version_number=0,
            previous_digest=_GENESIS,
            reason="initial",
            author_id=author_id,
            created_at=created_at,
        )
        self._versions.append(version)
        return version

    def append_correction(
        self,
        corrected: HealthRecord,
        author_id: str,
        reason: str,
        created_at: float,
    ) -> RecordVersion:
        """Append an amendment linked to the current head."""
        if not self._versions:
            raise RecordError(f"record {self.record_id} has no initial version")
        if corrected.record_id != self.record_id:
            raise ValidationError(
                f"record id {corrected.record_id} does not match chain {self.record_id}"
            )
        if not reason:
            raise ValidationError("corrections must state a reason")
        version = RecordVersion(
            record=corrected,
            version_number=len(self._versions),
            previous_digest=self.head_digest,
            reason=reason,
            author_id=author_id,
            created_at=created_at,
        )
        self._versions.append(version)
        return version

    def latest(self) -> RecordVersion:
        """The current version (what a clinician reads)."""
        if not self._versions:
            raise RecordError(f"record {self.record_id} has no versions")
        return self._versions[-1]

    def version(self, number: int) -> RecordVersion:
        """A specific historical version."""
        if number < 0 or number >= len(self._versions):
            raise RecordError(
                f"record {self.record_id} has no version {number} "
                f"(have 0..{len(self._versions) - 1})"
            )
        return self._versions[number]

    def verify(self) -> None:
        """Recompute the hash linkage; raise :class:`IntegrityError` if
        any version was altered or reordered after the fact."""
        previous = _GENESIS
        for expected_number, version in enumerate(self._versions):
            if version.version_number != expected_number:
                raise IntegrityError(
                    f"record {self.record_id}: version numbering broken at "
                    f"{version.version_number} (expected {expected_number})"
                )
            if version.previous_digest != previous:
                raise IntegrityError(
                    f"record {self.record_id}: hash link broken at version "
                    f"{expected_number}"
                )
            previous = version.digest()

    @classmethod
    def from_versions(cls, record_id: str, versions: list[RecordVersion]) -> "VersionChain":
        """Rebuild a chain from stored versions and verify the linkage."""
        chain = cls(record_id)
        chain._versions = sorted(versions, key=lambda v: v.version_number)
        chain.verify()
        return chain
