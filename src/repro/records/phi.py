"""Protected Health Information taxonomy and de-identification.

HIPAA's Privacy Rule defines the Safe-Harbor de-identification method:
remove 18 categories of identifiers and the data ceases to be PHI.
This module encodes those categories, classifies record fields against
them, and produces de-identified copies (used when records are shared
for research/audit without authorization, and by the compliance checker
to verify the store *can* produce de-identified exports).
"""

from __future__ import annotations

import enum
import re
from typing import Any

from repro.records.model import HealthRecord


class PhiCategory(enum.Enum):
    """The 18 HIPAA Safe-Harbor identifier categories."""

    NAME = "name"
    GEOGRAPHY = "geography"
    DATES = "dates"
    PHONE = "phone"
    FAX = "fax"
    EMAIL = "email"
    SSN = "ssn"
    MEDICAL_RECORD_NUMBER = "medical_record_number"
    HEALTH_PLAN_NUMBER = "health_plan_number"
    ACCOUNT_NUMBER = "account_number"
    LICENSE_NUMBER = "license_number"
    VEHICLE_ID = "vehicle_id"
    DEVICE_ID = "device_id"
    URL = "url"
    IP_ADDRESS = "ip_address"
    BIOMETRIC = "biometric"
    PHOTO = "photo"
    OTHER_UNIQUE_ID = "other_unique_id"


PHI_CATEGORIES: tuple[PhiCategory, ...] = tuple(PhiCategory)

# Field-name → category mapping for the structured record bodies.
_FIELD_CATEGORIES: dict[str, PhiCategory] = {
    "name": PhiCategory.NAME,
    "author": PhiCategory.NAME,
    "provider": PhiCategory.NAME,
    "address": PhiCategory.GEOGRAPHY,
    "birth_date": PhiCategory.DATES,
    "phone": PhiCategory.PHONE,
    "email": PhiCategory.EMAIL,
    "ssn": PhiCategory.SSN,
}

_REDACTED = "[REDACTED]"

# Free-text scrubbing patterns (applied to note text).
_TEXT_PATTERNS: list[tuple[PhiCategory, re.Pattern[str]]] = [
    (PhiCategory.SSN, re.compile(r"\b\d{3}-\d{2}-\d{4}\b")),
    (PhiCategory.PHONE, re.compile(r"\b\d{3}[-.]\d{3}[-.]\d{4}\b")),
    (PhiCategory.EMAIL, re.compile(r"\b[\w.+-]+@[\w-]+\.[\w.]+\b")),
    (PhiCategory.IP_ADDRESS, re.compile(r"\b(?:\d{1,3}\.){3}\d{1,3}\b")),
    (PhiCategory.URL, re.compile(r"\bhttps?://\S+\b")),
    (PhiCategory.DATES, re.compile(r"\b\d{4}-\d{2}-\d{2}\b")),
]


def classify_fields(record: HealthRecord) -> dict[str, PhiCategory]:
    """Map each body field of *record* that holds PHI to its category.

    The record id and patient id are always PHI (medical record
    numbers) but live in the envelope, not the body, so they are
    reported under the pseudo-field names ``record_id``/``patient_id``.
    """
    classified: dict[str, PhiCategory] = {
        "record_id": PhiCategory.MEDICAL_RECORD_NUMBER,
        "patient_id": PhiCategory.MEDICAL_RECORD_NUMBER,
    }
    for field_name, value in record.body.items():
        category = _FIELD_CATEGORIES.get(field_name)
        if category is not None and value:
            classified[field_name] = category
    return classified


def scrub_text(text: str) -> tuple[str, list[PhiCategory]]:
    """Redact identifier patterns from free text.

    Returns the scrubbed text and the categories that were found.
    """
    found: list[PhiCategory] = []
    for category, pattern in _TEXT_PATTERNS:
        if pattern.search(text):
            found.append(category)
            text = pattern.sub(_REDACTED, text)
    return text, found


def generalize_birth_date(birth_date: str, reference_year: int) -> str:
    """Safe-Harbor date handling: keep only the year — and for patients
    older than 89 (whose year alone is identifying, per the rule),
    aggregate into the single category ``"90+"``."""
    match = re.match(r"(\d{4})", birth_date)
    if not match:
        return _REDACTED
    year = int(match.group(1))
    age = reference_year - year
    if age > 89:
        return "90+"
    return str(year)


def deidentify(
    record: HealthRecord, pseudonym: str = "anon", reference_year: int = 2007
) -> HealthRecord:
    """Produce a Safe-Harbor de-identified copy of *record*.

    Structured PHI fields are replaced with ``[REDACTED]`` — except
    dates, which are *generalized* per the rule (year only; ages over 89
    collapse to "90+"); free-text fields are pattern-scrubbed; the
    patient id is replaced with *pseudonym*.  The returned record has a
    derived record id so it can never collide with the identified
    original in any store.
    """
    body: dict[str, Any] = {}
    for field_name, value in record.body.items():
        category = _FIELD_CATEGORIES.get(field_name)
        if category is PhiCategory.DATES and value:
            body[field_name] = generalize_birth_date(str(value), reference_year)
        elif category is not None and value:
            body[field_name] = _REDACTED
        elif isinstance(value, str):
            body[field_name], _ = scrub_text(value)
        else:
            body[field_name] = value
    return HealthRecord(
        record_id=f"{record.record_id}-deid",
        record_type=record.record_type,
        patient_id=pseudonym,
        created_at=record.created_at,
        body=body,
    )


_GENERALIZED_DATE = re.compile(r"^(\d{4}|90\+)$")


def contains_phi(record: HealthRecord) -> bool:
    """Whether any body field or free text still carries identifiers.

    Generalized dates (a bare year, or the over-89 "90+" bucket) are
    Safe-Harbor compliant and do not count as PHI.
    """
    for field_name, value in record.body.items():
        category = _FIELD_CATEGORIES.get(field_name)
        if category is not None and value and value != _REDACTED:
            if category is PhiCategory.DATES and _GENERALIZED_DATE.match(str(value)):
                continue
            return True
        if isinstance(value, str):
            for _, pattern in _TEXT_PATTERNS:
                if pattern.search(value):
                    return True
    return False
