"""Health record entities.

Immutable dataclasses with a common :class:`HealthRecord` envelope.
The envelope is what the storage engine sees: a record id, a type, a
patient id, a timestamp, and a ``body`` dict of typed fields.  The
entity classes (:class:`Patient`, :class:`Encounter`,
:class:`Observation`, :class:`ClinicalNote`) are constructors/views
over that envelope, so the whole stack below (encryption, hashing,
indexing) only ever handles one shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ValidationError
from repro.util.validation import require, require_non_empty, require_type


class RecordType(enum.Enum):
    """The record classes the retention schedules distinguish."""

    PATIENT_DEMOGRAPHICS = "patient_demographics"
    ENCOUNTER = "encounter"
    OBSERVATION = "observation"
    CLINICAL_NOTE = "clinical_note"
    EXPOSURE_RECORD = "exposure_record"  # OSHA 29 CFR 1910.1020 territory
    INSURANCE_CLAIM = "insurance_claim"


@dataclass(frozen=True)
class HealthRecord:
    """The storage envelope for any health record.

    ``body`` must be canonically encodable (see
    :mod:`repro.util.encoding`); the constructor validates this early so
    a malformed record can never reach the hashed/immutable layers.
    """

    record_id: str
    record_type: RecordType
    patient_id: str
    created_at: float
    body: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_non_empty(self.record_id, "record_id")
        require_type(self.record_type, RecordType, "record_type")
        require_non_empty(self.patient_id, "patient_id")
        require(self.created_at >= 0, "created_at must be non-negative")
        require_type(self.body, dict, "body")
        # Fail fast on non-canonical bodies.
        from repro.util.encoding import canonical_bytes

        canonical_bytes(self.body)

    def to_dict(self) -> dict[str, Any]:
        """Canonical dict form (what gets hashed/encrypted/stored)."""
        return {
            "record_id": self.record_id,
            "record_type": self.record_type.value,
            "patient_id": self.patient_id,
            "created_at": self.created_at,
            "body": self.body,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HealthRecord":
        try:
            return cls(
                record_id=data["record_id"],
                record_type=RecordType(data["record_type"]),
                patient_id=data["patient_id"],
                created_at=data["created_at"],
                body=data["body"],
            )
        except (KeyError, ValueError) as exc:
            raise ValidationError(f"malformed record dict: {exc}") from exc

    def searchable_text(self) -> str:
        """The free text the keyword index covers."""
        pieces: list[str] = []

        def collect(value: Any) -> None:
            if isinstance(value, str):
                pieces.append(value)
            elif isinstance(value, dict):
                for item in value.values():
                    collect(item)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    collect(item)

        collect(self.body)
        return " ".join(pieces)


def _record(
    record_id: str,
    record_type: RecordType,
    patient_id: str,
    created_at: float,
    body: dict[str, Any],
) -> HealthRecord:
    return HealthRecord(
        record_id=record_id,
        record_type=record_type,
        patient_id=patient_id,
        created_at=created_at,
        body=body,
    )


class Patient:
    """Constructor for patient-demographics records."""

    @staticmethod
    def create(
        record_id: str,
        patient_id: str,
        created_at: float,
        name: str,
        birth_date: str,
        address: str,
        phone: str = "",
        ssn: str = "",
        email: str = "",
    ) -> HealthRecord:
        require_non_empty(name, "name")
        require_non_empty(birth_date, "birth_date")
        return _record(
            record_id,
            RecordType.PATIENT_DEMOGRAPHICS,
            patient_id,
            created_at,
            {
                "name": name,
                "birth_date": birth_date,
                "address": address,
                "phone": phone,
                "ssn": ssn,
                "email": email,
            },
        )


class Encounter:
    """Constructor for encounter (admission/visit) records."""

    @staticmethod
    def create(
        record_id: str,
        patient_id: str,
        created_at: float,
        encounter_type: str,
        provider: str,
        department: str,
        reason: str,
        disposition: str = "",
    ) -> HealthRecord:
        require_non_empty(encounter_type, "encounter_type")
        require_non_empty(provider, "provider")
        return _record(
            record_id,
            RecordType.ENCOUNTER,
            patient_id,
            created_at,
            {
                "encounter_type": encounter_type,
                "provider": provider,
                "department": department,
                "reason": reason,
                "disposition": disposition,
            },
        )


class Observation:
    """Constructor for observation (lab/vital) records."""

    @staticmethod
    def create(
        record_id: str,
        patient_id: str,
        created_at: float,
        code: str,
        display: str,
        value: float,
        unit: str,
        reference_range: str = "",
        abnormal: bool = False,
    ) -> HealthRecord:
        require_non_empty(code, "code")
        require_type(value, (int, float), "value")
        return _record(
            record_id,
            RecordType.OBSERVATION,
            patient_id,
            created_at,
            {
                "code": code,
                "display": display,
                "value": float(value),
                "unit": unit,
                "reference_range": reference_range,
                "abnormal": abnormal,
            },
        )


class ClinicalNote:
    """Constructor for free-text clinical notes (the index workload)."""

    @staticmethod
    def create(
        record_id: str,
        patient_id: str,
        created_at: float,
        author: str,
        specialty: str,
        text: str,
    ) -> HealthRecord:
        require_non_empty(author, "author")
        require_non_empty(text, "text")
        return _record(
            record_id,
            RecordType.CLINICAL_NOTE,
            patient_id,
            created_at,
            {"author": author, "specialty": specialty, "text": text},
        )
