"""Curator: a regulatory-compliant secure storage system for healthcare records.

A full-system reproduction of Hasan, Winslett & Sion, *Requirements of
Secure Storage Systems for Healthcare Records* (SDM@VLDB 2007): the
hybrid compliant store the paper calls for, every storage model it
surveys as baselines, an executable version of its requirements
taxonomy, and the attack harness that scores any model against it.

Quickstart::

    from repro import CuratorStore, CuratorConfig
    from repro.records import Observation
    from repro.util import SimulatedClock
    import secrets

    clock = SimulatedClock()
    store = CuratorStore(CuratorConfig(master_key=secrets.token_bytes(32),
                                       clock=clock))
    record = Observation.create(
        record_id="rec-1", patient_id="pat-1", created_at=clock.now(),
        code="8480-6", display="Systolic BP", value=120, unit="mmHg")
    store.store(record, author_id="dr-house")
    print(store.read("rec-1", actor_id="dr-house"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
constructed evaluation (the paper, being a position paper, has none of
its own).
"""

from repro.cluster import ClusterManifest, CuratorCluster, HashRing
from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.core.lifecycle import ArchiveLifecycle

__version__ = "1.1.0"

__all__ = [
    "ArchiveLifecycle",
    "ClusterManifest",
    "CuratorCluster",
    "CuratorConfig",
    "CuratorStore",
    "HashRing",
    "__version__",
]
