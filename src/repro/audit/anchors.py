"""External anchoring of the audit log.

A bare hash chain is tamper-evident against *modification* but not
against *truncation*: an insider who controls the whole device can chop
the tail of the log and the remaining prefix still verifies.  The
classic countermeasure is to periodically publish a commitment to an
external witness the insider does not control.

:class:`AnchorWitness` simulates that witness (a regulator's inbox, a
public ledger).  Each :class:`AuditAnchor` carries the log size, the
Merkle root at that size, and the site's signature.  Checking a log
against its witness:

* the latest anchor's size must not exceed the log (else: truncation);
* the log's Merkle root *at each anchored size* must equal the anchored
  root (else: history rewriting);
* consecutive anchors must be Merkle-consistent (else: the site forked
  its history between publications).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.log import AuditLog
from repro.crypto.merkle import verify_consistency
from repro.crypto.signatures import SignedPayload, Signer, Verifier
from repro.errors import AuditError


@dataclass(frozen=True)
class AuditAnchor:
    """One published commitment: (size, merkle_root) signed by the site."""

    log_size: int
    merkle_root: bytes
    published_at: float
    signed: SignedPayload


class AnchorWitness:
    """The external party that receives and validates anchors."""

    def __init__(self, site_verifier: Verifier) -> None:
        self._verifier = site_verifier
        self._anchors: list[AuditAnchor] = []
        # (size, root) of the highest anchor a past check_log validated.
        # Purely a cache: check_log revalidates it against the live tree
        # before skipping anything, so a tree that forked since simply
        # misses the cache and every anchor is rechecked.
        self._verified_prefix: tuple[int, bytes] | None = None

    @property
    def anchors(self) -> list[AuditAnchor]:
        return list(self._anchors)

    def latest(self) -> AuditAnchor | None:
        return self._anchors[-1] if self._anchors else None

    def receive(self, anchor: AuditAnchor, log: AuditLog) -> None:
        """Accept a new anchor after validating signature and consistency.

        The witness demands a consistency proof against its previous
        anchor, which it checks itself — the site cannot fork history
        between publications without detection.
        """
        payload = self._verifier.verify(anchor.signed)
        if payload["log_size"] != anchor.log_size or payload["merkle_root"] != anchor.merkle_root:
            raise AuditError("anchor payload does not match signed content")
        previous = self.latest()
        if previous is not None:
            if anchor.log_size < previous.log_size:
                raise AuditError(
                    f"anchor shrinks the log: {previous.log_size} -> {anchor.log_size}"
                )
            proof = log.merkle_tree().prove_consistency(previous.log_size)
            verify_consistency(
                previous.merkle_root,
                anchor.merkle_root,
                previous.log_size,
                anchor.log_size,
                proof,
            )
        self._anchors.append(anchor)

    def check_log(self, log: AuditLog) -> None:
        """Audit a log against everything this witness has seen.

        Raises :class:`AuditError` on truncation or history rewriting.

        Anchors at or below the memoized verified prefix are skipped
        once the live tree still reproduces that prefix's root — one
        ``root_at`` instead of one per historical anchor, so repeated
        checks over a long witness history cost O(tree), not
        O(anchors x tree).
        """
        tree = log.merkle_tree()
        skip_at_or_below = 0
        if self._verified_prefix is not None:
            size, root = self._verified_prefix
            if size <= len(log) and tree.root_at(size) == root:
                skip_at_or_below = size
        for anchor in self._anchors:
            if len(log) < anchor.log_size:
                raise AuditError(
                    f"log truncated: witness holds an anchor at size "
                    f"{anchor.log_size}, log has only {len(log)} events"
                )
            if anchor.log_size <= skip_at_or_below:
                continue
            root_then = tree.root_at(anchor.log_size)
            if root_then != anchor.merkle_root:
                raise AuditError(
                    f"log history rewritten: root at size {anchor.log_size} "
                    "does not match the witnessed anchor"
                )
        if self._anchors:
            newest = self._anchors[-1]
            self._verified_prefix = (newest.log_size, newest.merkle_root)


class WitnessQuorum:
    """Anchor to several independent witnesses; trust a threshold.

    A single witness is itself a trust assumption: if the insider can
    compromise it (delete its anchors, or feed it forged ones), the
    truncation protection evaporates.  A quorum distributes that trust:
    anchors go to every witness, and a log is accepted only if at least
    *threshold* witnesses independently vouch for it.  An adversary must
    compromise ``n - threshold + 1`` witnesses to erase history.
    """

    def __init__(self, witnesses: list[AnchorWitness], threshold: int) -> None:
        if not witnesses:
            raise AuditError("a quorum needs at least one witness")
        if not 1 <= threshold <= len(witnesses):
            raise AuditError(
                f"threshold {threshold} out of range 1..{len(witnesses)}"
            )
        self._witnesses = list(witnesses)
        self._threshold = threshold

    @property
    def witnesses(self) -> list[AnchorWitness]:
        return list(self._witnesses)

    def publish(self, log: AuditLog, signer: Signer, timestamp: float) -> AuditAnchor:
        """Publish one anchor to every reachable witness."""
        anchor = publish_anchor(log, signer, timestamp)
        delivered = 0
        for witness in self._witnesses:
            try:
                witness.receive(anchor, log)
                delivered += 1
            except AuditError:
                continue  # a witness may be unreachable/compromised
        if delivered < self._threshold:
            raise AuditError(
                f"anchor reached only {delivered} witnesses; quorum needs "
                f"{self._threshold}"
            )
        return anchor

    def check_log(self, log: AuditLog) -> int:
        """Check the log against every witness; returns how many vouch.

        Raises :class:`AuditError` when fewer than the threshold accept —
        including the case where compromised witnesses *wiped their
        anchors* (an empty witness vacuously accepts any log, so wiped
        witnesses do not count toward detection, but honest ones still
        reject a truncated log and break the quorum the other way: a log
        is vouched for only by witnesses that both hold anchors and
        verify them)."""
        if all(not witness.anchors for witness in self._witnesses):
            return 0  # nothing was ever anchored: vacuously consistent
        vouching = 0
        for witness in self._witnesses:
            if not witness.anchors:
                continue  # wiped/never-used witnesses vouch for nothing
            try:
                witness.check_log(log)
                vouching += 1
            except AuditError:
                continue
        if vouching < self._threshold:
            raise AuditError(
                f"only {vouching} witnesses vouch for this log; quorum needs "
                f"{self._threshold}"
            )
        return vouching


def publish_anchor(log: AuditLog, signer: Signer, timestamp: float) -> AuditAnchor:
    """Create a signed anchor for the log's current state."""
    size = len(log)
    root = log.merkle_root()
    signed = signer.sign(
        {"log_size": size, "merkle_root": root, "published_at": timestamp}
    )
    return AuditAnchor(
        log_size=size, merkle_root=root, published_at=timestamp, signed=signed
    )
