"""The hash-chained audit log.

Every appended event is serialized canonically, journaled to a block
device (so the adversary sees exactly what persists), and folded into a
running hash chain::

    chain[i] = H(0x01 || chain[i-1] || canonical(event_i || chain_prev))

The chain digest after each event is stored *with* the event, which
lets verification pinpoint the first altered entry rather than only
saying "something is wrong".

Verification modes:

* :meth:`AuditLog.verify_chain` — full rescan from storage; detects
  in-place edits, deletions, insertions, and reordering.
* :meth:`AuditLog.verify_chain` with ``incremental=True`` — O(delta)
  fast path: replay only events past the sealed verified watermark
  (see :mod:`repro.audit.checkpoint`), tie them to the sealed prefix
  with Merkle consistency proofs, and spot-check a randomized sample
  of sealed-prefix frames; escalates to a forced full rescan on a
  configurable cadence so silent prefix tampering stays caught.
* combined with :mod:`repro.audit.anchors` — detects truncation too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.audit.checkpoint import CheckpointStore, VerifiedWatermark
from repro.audit.events import AuditAction, AuditEvent
from repro.crypto.hashing import GENESIS_DIGEST, chain_digest
from repro.crypto.merkle import MerkleTree, leaf_hash, verify_consistency
from repro.errors import AuditError
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import Journal
from repro.util.clock import Clock, WallClock
from repro.util.encoding import canonical_bytes, canonical_dumps, canonical_loads
from repro.util.metrics import METRICS


@dataclass(frozen=True)
class ChainVerification:
    """Result of a chain verification (full or incremental).

    ``events_checked`` counts events *replayed from storage*: the whole
    log for a full pass, only the delta past the watermark for an
    incremental one (sealed-prefix coverage is ``spot_checked``).
    ``escalated`` marks an incremental request that was served by a
    full rescan (missing/invalid watermark, or the forced-rescan
    cadence coming due).
    """

    ok: bool
    events_checked: int
    first_bad_sequence: int | None = None
    problem: str = ""
    mode: str = "full"  # "full" | "incremental"
    spot_checked: int = 0
    escalated: bool = False

    def __bool__(self) -> bool:
        return self.ok


class AuditLog:
    """Append-only, hash-chained, journal-backed audit log."""

    def __init__(
        self,
        device: BlockDevice | None = None,
        clock: Clock | None = None,
        checkpoints: CheckpointStore | None = None,
        spot_checks: int = 16,
        full_rescan_every: int = 64,
        rng: random.Random | None = None,
    ) -> None:
        self._journal = Journal(device or MemoryDevice("audit-dev", 1 << 24))
        self._clock = clock or WallClock()
        self._head = GENESIS_DIGEST
        self._events: list[AuditEvent] = []
        self._tree = MerkleTree()
        # Open batch: buffered journal payloads, or None outside a batch.
        self._pending: list[bytes] | None = None
        # Incremental-verification state.  The in-memory watermark is
        # authoritative within a process (process memory is trusted);
        # the checkpoint store is its MAC-sealed persistent mirror.
        self._checkpoints = checkpoints
        self._watermark: VerifiedWatermark | None = (
            checkpoints.latest() if checkpoints is not None else None
        )
        self._spot_checks = spot_checks
        self._full_rescan_every = full_rescan_every
        # Unpredictable by default (the adversary must not know which
        # sealed frames the next spot-check will sample); tests inject
        # a seeded Random for reproducibility.
        self._rng = rng or random.Random()

    def __len__(self) -> int:
        return len(self._events)

    @property
    def head_digest(self) -> bytes:
        """The current chain head (commits to the whole history)."""
        return self._head

    @property
    def device(self) -> BlockDevice:
        return self._journal.device

    def merkle_root(self) -> bytes:
        """Merkle root over all event encodings (for anchoring)."""
        return self._tree.root()

    def merkle_tree(self) -> MerkleTree:
        return self._tree

    # -- append ----------------------------------------------------------

    def append(
        self,
        action: AuditAction,
        actor_id: str,
        subject_id: str,
        detail: dict[str, Any] | None = None,
    ) -> AuditEvent:
        """Record an event; returns it with its assigned sequence number.

        Inside an open batch (:meth:`begin_batch`) the chain, Merkle
        tree, and in-memory event list advance immediately but the
        journal write is deferred to :meth:`commit` — one device flush
        covers the whole batch.
        """
        event = AuditEvent(
            sequence=len(self._events),
            timestamp=self._clock.now(),
            action=action,
            actor_id=actor_id,
            subject_id=subject_id,
            detail=detail or {},
        )
        # The chain input and the persisted entry share the event and
        # prev encodings; splicing pre-encoded fragments (keys in sorted
        # order: chain < event < prev) halves the canonical-JSON work
        # while producing bytes identical to canonical_bytes() of the
        # equivalent dicts — verify_chain recomputes and must agree.
        event_json = canonical_dumps(event.to_dict())
        prev_json = canonical_dumps(self._head)
        encoded = f'{{"event":{event_json},"prev":{prev_json}}}'.encode("utf-8")
        new_head = chain_digest(self._head, encoded)
        chain_json = canonical_dumps(new_head)
        persisted = (
            f'{{"chain":{chain_json},"event":{event_json},"prev":{prev_json}}}'
        ).encode("utf-8")
        if self._pending is not None:
            self._pending.append(persisted)
        else:
            self._journal.append(persisted)
        self._tree.append(encoded)
        self._head = new_head
        self._events.append(event)
        return event

    # -- batch commit boundary -----------------------------------------------

    def begin_batch(self) -> None:
        """Start deferring journal writes; pair with :meth:`commit`.

        Chain semantics are untouched — every event still gets its own
        chain digest and Merkle leaf at append time; only the device
        flush is grouped.  Until commit, :meth:`verify_chain` will see
        storage lagging the in-memory head, so callers must commit
        before verifying (the engine wraps batches in try/finally).
        """
        if self._pending is not None:
            raise AuditError("an audit batch is already open")
        self._pending = []

    def commit(self) -> int:
        """Flush buffered events in ONE journal device write; returns
        how many were flushed.  No-op (returns 0) when no batch is open.
        """
        pending, self._pending = self._pending, None
        if not pending:
            return 0
        self._journal.append_many(pending)
        return len(pending)

    def flush_batch(self) -> int:
        """Journal everything buffered so far WITHOUT closing the batch;
        returns how many entries were flushed.

        The anchoring path needs this: an anchor commits a Merkle root
        to an external witness, so every event under that root must be
        durable *before* the anchor exists — otherwise a crash leaves
        the witness attesting to events the device never saw, and honest
        recovery reads as truncation.  No-op outside a batch.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        self._journal.append_many(pending)
        return len(pending)

    @property
    def in_batch(self) -> bool:
        return self._pending is not None

    # -- read -------------------------------------------------------------

    def events(self) -> list[AuditEvent]:
        """All events, in order (from the in-memory view)."""
        return list(self._events)

    def event(self, sequence: int) -> AuditEvent:
        if sequence < 0 or sequence >= len(self._events):
            raise AuditError(f"no audit event with sequence {sequence}")
        return self._events[sequence]

    # -- verification -------------------------------------------------------

    @property
    def watermark(self) -> VerifiedWatermark | None:
        """The current verified watermark (None before any full verify)."""
        return self._watermark

    @property
    def checkpoints(self) -> CheckpointStore | None:
        return self._checkpoints

    def adopt_checkpoints(self, checkpoints: CheckpointStore | None) -> None:
        """Attach a (possibly recovered) checkpoint store after the fact.

        Used by engine recovery: the audit log is replayed from its own
        device first, then the checkpoint store recovered from *its*
        device is adopted.  The persisted watermark is loaded but not
        trusted blindly — :meth:`verify_chain` validates it against the
        in-memory state and falls back to a full rescan on any mismatch
        (including the torn-seal case, where recovery already dropped
        the torn frame and ``latest()`` returns an older seal or None).
        """
        self._checkpoints = checkpoints
        self._watermark = checkpoints.latest() if checkpoints is not None else None

    def verify_chain(
        self, incremental: bool = False, deep: bool = False
    ) -> ChainVerification:
        """Re-derive the chain from persistent storage.

        Default (and ``deep=True``): full rescan — read every journaled
        entry back from the device (so raw-device tampering is caught),
        recompute each link, and compare with the stored chain digests
        and the in-memory head.  A successful pass seals a verified
        watermark.

        ``incremental=True``: replay only events past the watermark,
        verify the suffix chains from the sealed head to the in-memory
        head, tie the in-memory Merkle tree to the sealed root with a
        consistency proof, and spot-check a random sample of sealed-
        prefix frames against the trusted leaf digests.  Falls back to
        (``escalated``) full verification when no valid watermark
        exists or the forced-rescan cadence is due, so sealed-prefix
        tampering that dodges the sample is still caught within
        ``full_rescan_every`` incremental runs.
        """
        if incremental and not deep:
            return self._verify_incremental()
        with METRICS.timer("audit_verify_full_ns"):
            result = self._verify_full()
        METRICS.incr("audit_verify_full_runs")
        if result.ok:
            self._seal_watermark(incremental_runs=0)
        return result

    def _verify_full(self, escalated: bool = False) -> ChainVerification:
        head = GENESIS_DIGEST
        try:
            payloads = self._journal.read_all()
        except Exception as exc:  # journal checksum failures included
            return ChainVerification(
                ok=False,
                events_checked=0,
                first_bad_sequence=self._first_journal_corruption(),
                problem=f"journal unreadable: {exc}",
                escalated=escalated,
            )
        for sequence, payload in enumerate(payloads):
            failure, head = self._check_frame(sequence, payload, head, escalated)
            if failure is not None:
                return failure
        if head != self._head:
            return ChainVerification(
                ok=False,
                events_checked=len(payloads),
                first_bad_sequence=len(payloads),
                problem="storage does not reproduce the in-memory chain head "
                "(possible truncation or appended forgery)",
                escalated=escalated,
            )
        return ChainVerification(
            ok=True, events_checked=len(payloads), escalated=escalated
        )

    def _check_frame(
        self, sequence: int, payload: bytes, head: bytes, escalated: bool = False
    ) -> tuple[ChainVerification | None, bytes]:
        """Verify one journaled frame given the chain head before it;
        returns ``(failure, new_head)`` with ``failure=None`` on success."""

        def bad(problem: str) -> tuple[ChainVerification, bytes]:
            return (
                ChainVerification(
                    ok=False,
                    events_checked=sequence,
                    first_bad_sequence=sequence,
                    problem=problem,
                    escalated=escalated,
                ),
                head,
            )

        try:
            entry = canonical_loads(payload)
            event = AuditEvent.from_dict(entry["event"])
        except Exception as exc:  # noqa: BLE001 — any decode failure is a finding
            return bad(f"event {sequence} undecodable: {exc}")
        if event.sequence != sequence:
            return bad(f"event {sequence} carries sequence {event.sequence}")
        if entry["prev"] != head:
            return bad(f"chain link broken before event {sequence}")
        encoded = canonical_bytes({"event": entry["event"], "prev": head})
        new_head = chain_digest(head, encoded)
        if entry["chain"] != new_head:
            return bad(f"stored chain digest wrong at event {sequence}")
        return None, new_head

    def _verify_incremental(self) -> ChainVerification:
        """The O(delta) fast path (see :meth:`verify_chain`)."""
        watermark = self._watermark
        size = len(self._events)
        if watermark is None:
            result = self.verify_chain(deep=True)
            return ChainVerification(
                ok=result.ok,
                events_checked=result.events_checked,
                first_bad_sequence=result.first_bad_sequence,
                problem=result.problem,
                escalated=True,
            )
        if watermark.incremental_runs + 1 >= self._full_rescan_every:
            # Forced periodic rescan: probabilistic spot-checking alone
            # would let a patient adversary wait out the sampler.
            METRICS.incr("audit_verify_escalations")
            result = self.verify_chain(deep=True)
            return ChainVerification(
                ok=result.ok,
                events_checked=result.events_checked,
                first_bad_sequence=result.first_bad_sequence,
                problem=result.problem,
                escalated=True,
            )
        if watermark.size > size or watermark.size > len(self._journal):
            # Stale or foreign watermark (e.g. sealed before a tail the
            # journal no longer has): never trusted — full rescan.
            self._watermark = None
            METRICS.incr("audit_verify_escalations")
            result = self.verify_chain(deep=True)
            return ChainVerification(
                ok=result.ok,
                events_checked=result.events_checked,
                first_bad_sequence=result.first_bad_sequence,
                problem=result.problem,
                escalated=True,
            )
        with METRICS.timer("audit_verify_incremental_ns"):
            result = self._verify_suffix_and_spot_check(watermark, size)
        METRICS.incr("audit_verify_incremental_runs")
        if result.ok:
            self._seal_watermark(incremental_runs=watermark.incremental_runs + 1)
        return result

    def _verify_suffix_and_spot_check(
        self, watermark: VerifiedWatermark, size: int
    ) -> ChainVerification:
        # 1. The sealed root must still describe the in-memory tree's
        # prefix, and the current tree must extend it (consistency
        # proof) — any in-memory fork from the sealed history fails.
        try:
            if self._tree.root_at(watermark.size) != watermark.merkle_root:
                return ChainVerification(
                    ok=False,
                    events_checked=0,
                    first_bad_sequence=None,
                    problem="in-memory Merkle tree does not reproduce the "
                    "sealed watermark root (history fork)",
                    mode="incremental",
                )
            verify_consistency(
                watermark.merkle_root,
                self._tree.root(),
                watermark.size,
                size,
                self._tree.prove_consistency(watermark.size),
            )
        except Exception as exc:  # noqa: BLE001 — IntegrityError et al.
            return ChainVerification(
                ok=False,
                events_checked=0,
                first_bad_sequence=None,
                problem=f"consistency with the sealed prefix fails: {exc}",
                mode="incremental",
            )
        # 2. Replay only the suffix from the sealed head.
        head = watermark.head
        replayed = 0
        for sequence in range(watermark.size, size):
            try:
                payload = self._journal.read(sequence)
            except Exception as exc:  # noqa: BLE001 — checksum/torn tail
                return ChainVerification(
                    ok=False,
                    events_checked=replayed,
                    first_bad_sequence=sequence,
                    problem=f"event {sequence} unreadable: {exc}",
                    mode="incremental",
                )
            failure, head = self._check_frame(sequence, payload, head)
            if failure is not None:
                return ChainVerification(
                    ok=False,
                    events_checked=replayed,
                    first_bad_sequence=failure.first_bad_sequence,
                    problem=failure.problem,
                    mode="incremental",
                )
            replayed += 1
        METRICS.incr("audit_verify_events_replayed", replayed)
        if head != self._head:
            return ChainVerification(
                ok=False,
                events_checked=replayed,
                first_bad_sequence=size,
                problem="storage does not reproduce the in-memory chain head "
                "(possible truncation or appended forgery)",
                mode="incremental",
            )
        # 3. Randomized spot-check of the sealed prefix: each sampled
        # frame is re-read from the device and must reproduce both the
        # trusted in-memory leaf digest (pins event + prev bytes) and
        # its stored chain digest (pinned by those bytes in turn) — a
        # complete per-frame check without replaying the whole prefix.
        sample_size = min(self._spot_checks, watermark.size)
        sampled = (
            self._rng.sample(range(watermark.size), sample_size)
            if sample_size
            else []
        )
        for sequence in sorted(sampled):
            problem = self._spot_check_frame(sequence)
            if problem is not None:
                return ChainVerification(
                    ok=False,
                    events_checked=replayed,
                    first_bad_sequence=sequence,
                    problem=problem,
                    mode="incremental",
                    spot_checked=sample_size,
                )
        METRICS.incr("audit_verify_spot_checks", sample_size)
        return ChainVerification(
            ok=True,
            events_checked=replayed,
            mode="incremental",
            spot_checked=sample_size,
        )

    def _spot_check_frame(self, sequence: int) -> str | None:
        """Verify one sealed-prefix frame in isolation; returns a
        problem string or None."""
        try:
            payload = self._journal.read(sequence)
            entry = canonical_loads(payload)
            encoded = canonical_bytes(
                {"event": entry["event"], "prev": entry["prev"]}
            )
        except Exception as exc:  # noqa: BLE001
            return f"sealed event {sequence} unreadable: {exc}"
        if leaf_hash(encoded) != self._tree.leaf_digest(sequence):
            return (
                f"sealed event {sequence} does not match its trusted "
                "Merkle leaf (prefix tampering)"
            )
        if entry["chain"] != chain_digest(entry["prev"], encoded):
            return f"stored chain digest wrong at sealed event {sequence}"
        return None

    def _seal_watermark(self, incremental_runs: int) -> None:
        """Record (and persist, when a checkpoint store is attached)
        the just-verified state."""
        self._watermark = VerifiedWatermark(
            size=len(self._events),
            head=self._head,
            merkle_root=self._tree.root(),
            verified_at=self._clock.now(),
            incremental_runs=incremental_runs,
        )
        if self._checkpoints is not None:
            self._checkpoints.seal(self._watermark)

    def _first_journal_corruption(self) -> int | None:
        corrupted = self._journal.scan_corruption()
        return corrupted[0] if corrupted else None

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(
        cls,
        device: BlockDevice,
        clock: Clock | None = None,
        spot_checks: int = 16,
        full_rescan_every: int = 64,
    ) -> "AuditLog":
        """Rebuild an audit log from its device after a restart/crash.

        Replays the journal, re-deriving the hash chain and the Merkle
        tree.  A crash-truncated tail (incomplete final frame) is
        dropped by the journal's frame validation; any *mid-log*
        inconsistency raises :class:`AuditError` — a log that does not
        verify must not be silently adopted as the system of record.
        """
        log = cls.__new__(cls)
        log._journal = Journal.recover(device)
        log._clock = clock or WallClock()
        log._head = GENESIS_DIGEST
        log._events = []
        log._tree = MerkleTree()
        log._pending = None
        log._checkpoints = None  # adopt_checkpoints() re-attaches one
        log._watermark = None
        log._spot_checks = spot_checks
        log._full_rescan_every = full_rescan_every
        log._rng = random.Random()
        for sequence, payload in enumerate(log._journal.read_all()):
            try:
                entry = canonical_loads(payload)
                event = AuditEvent.from_dict(entry["event"])
            except Exception as exc:
                raise AuditError(
                    f"recovery failed: event {sequence} undecodable: {exc}"
                ) from exc
            if event.sequence != sequence or entry["prev"] != log._head:
                raise AuditError(
                    f"recovery failed: chain inconsistent at event {sequence}"
                )
            encoded = canonical_bytes({"event": entry["event"], "prev": log._head})
            log._head = chain_digest(log._head, encoded)
            if entry["chain"] != log._head:
                raise AuditError(
                    f"recovery failed: stored chain digest wrong at event {sequence}"
                )
            log._tree.append(encoded)
            log._events.append(event)
        return log

    # -- third-party event proofs -------------------------------------------

    def prove_event(self, sequence: int, at_size: int | None = None):
        """Produce a Merkle inclusion proof for one event.

        Together with a published anchor (see :mod:`repro.audit.anchors`)
        this lets the hospital disclose a *single* audit event to a
        third party — a court, a patient — with cryptographic proof it
        belongs to the witnessed log, without revealing any other event.
        *at_size* selects the anchored log size the proof must match
        (default: the current size).  Returns ``(event, chain_prev,
        proof)``; verify with :func:`verify_event_proof`.
        """
        event = self.event(sequence)
        size = at_size if at_size is not None else len(self._events)
        if sequence >= size:
            raise AuditError(
                f"event {sequence} is not covered by an anchor at size {size}"
            )
        chain_prev = self.expected_head_for(self._events[:sequence])
        proof = self._tree.prove_inclusion_at(sequence, size)
        return event, chain_prev, proof

    def expected_head_for(self, events: list[AuditEvent]) -> bytes:
        """Recompute the chain head a given event list should produce.

        External auditors use this: given an exported event list and a
        published head digest, the export is authentic iff they match.
        """
        head = GENESIS_DIGEST
        for event in events:
            encoded = canonical_bytes({"event": event.to_dict(), "prev": head})
            head = chain_digest(head, encoded)
        return head


def verify_event_proof(
    event: AuditEvent,
    chain_prev: bytes,
    proof,
    anchored_root: bytes,
) -> None:
    """Third-party verification of a single disclosed audit event.

    *anchored_root* is the Merkle root from a witnessed anchor whose
    ``log_size`` equals ``proof.tree_size``; *chain_prev* is the chain
    head preceding the event (part of the disclosure).  Raises
    :class:`~repro.errors.IntegrityError` if the event is not in the
    anchored log.
    """
    from repro.crypto.merkle import verify_inclusion

    encoded = canonical_bytes({"event": event.to_dict(), "prev": chain_prev})
    verify_inclusion(encoded, proof, anchored_root)
