"""The hash-chained audit log.

Every appended event is serialized canonically, journaled to a block
device (so the adversary sees exactly what persists), and folded into a
running hash chain::

    chain[i] = H(0x01 || chain[i-1] || canonical(event_i || chain_prev))

The chain digest after each event is stored *with* the event, which
lets verification pinpoint the first altered entry rather than only
saying "something is wrong".

Verification modes:

* :meth:`AuditLog.verify_chain` — full rescan from storage; detects
  in-place edits, deletions, insertions, and reordering.
* combined with :mod:`repro.audit.anchors` — detects truncation too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.audit.events import AuditAction, AuditEvent
from repro.crypto.hashing import GENESIS_DIGEST, chain_digest
from repro.crypto.merkle import MerkleTree
from repro.errors import AuditError
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import Journal
from repro.util.clock import Clock, WallClock
from repro.util.encoding import canonical_bytes, canonical_dumps, canonical_loads


@dataclass(frozen=True)
class ChainVerification:
    """Result of a full chain verification."""

    ok: bool
    events_checked: int
    first_bad_sequence: int | None = None
    problem: str = ""

    def __bool__(self) -> bool:
        return self.ok


class AuditLog:
    """Append-only, hash-chained, journal-backed audit log."""

    def __init__(
        self,
        device: BlockDevice | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._journal = Journal(device or MemoryDevice("audit-dev", 1 << 24))
        self._clock = clock or WallClock()
        self._head = GENESIS_DIGEST
        self._events: list[AuditEvent] = []
        self._tree = MerkleTree()
        # Open batch: buffered journal payloads, or None outside a batch.
        self._pending: list[bytes] | None = None

    def __len__(self) -> int:
        return len(self._events)

    @property
    def head_digest(self) -> bytes:
        """The current chain head (commits to the whole history)."""
        return self._head

    @property
    def device(self) -> BlockDevice:
        return self._journal.device

    def merkle_root(self) -> bytes:
        """Merkle root over all event encodings (for anchoring)."""
        return self._tree.root()

    def merkle_tree(self) -> MerkleTree:
        return self._tree

    # -- append ----------------------------------------------------------

    def append(
        self,
        action: AuditAction,
        actor_id: str,
        subject_id: str,
        detail: dict[str, Any] | None = None,
    ) -> AuditEvent:
        """Record an event; returns it with its assigned sequence number.

        Inside an open batch (:meth:`begin_batch`) the chain, Merkle
        tree, and in-memory event list advance immediately but the
        journal write is deferred to :meth:`commit` — one device flush
        covers the whole batch.
        """
        event = AuditEvent(
            sequence=len(self._events),
            timestamp=self._clock.now(),
            action=action,
            actor_id=actor_id,
            subject_id=subject_id,
            detail=detail or {},
        )
        # The chain input and the persisted entry share the event and
        # prev encodings; splicing pre-encoded fragments (keys in sorted
        # order: chain < event < prev) halves the canonical-JSON work
        # while producing bytes identical to canonical_bytes() of the
        # equivalent dicts — verify_chain recomputes and must agree.
        event_json = canonical_dumps(event.to_dict())
        prev_json = canonical_dumps(self._head)
        encoded = f'{{"event":{event_json},"prev":{prev_json}}}'.encode("utf-8")
        new_head = chain_digest(self._head, encoded)
        chain_json = canonical_dumps(new_head)
        persisted = (
            f'{{"chain":{chain_json},"event":{event_json},"prev":{prev_json}}}'
        ).encode("utf-8")
        if self._pending is not None:
            self._pending.append(persisted)
        else:
            self._journal.append(persisted)
        self._tree.append(encoded)
        self._head = new_head
        self._events.append(event)
        return event

    # -- batch commit boundary -----------------------------------------------

    def begin_batch(self) -> None:
        """Start deferring journal writes; pair with :meth:`commit`.

        Chain semantics are untouched — every event still gets its own
        chain digest and Merkle leaf at append time; only the device
        flush is grouped.  Until commit, :meth:`verify_chain` will see
        storage lagging the in-memory head, so callers must commit
        before verifying (the engine wraps batches in try/finally).
        """
        if self._pending is not None:
            raise AuditError("an audit batch is already open")
        self._pending = []

    def commit(self) -> int:
        """Flush buffered events in ONE journal device write; returns
        how many were flushed.  No-op (returns 0) when no batch is open.
        """
        pending, self._pending = self._pending, None
        if not pending:
            return 0
        self._journal.append_many(pending)
        return len(pending)

    def flush_batch(self) -> int:
        """Journal everything buffered so far WITHOUT closing the batch;
        returns how many entries were flushed.

        The anchoring path needs this: an anchor commits a Merkle root
        to an external witness, so every event under that root must be
        durable *before* the anchor exists — otherwise a crash leaves
        the witness attesting to events the device never saw, and honest
        recovery reads as truncation.  No-op outside a batch.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        self._journal.append_many(pending)
        return len(pending)

    @property
    def in_batch(self) -> bool:
        return self._pending is not None

    # -- read -------------------------------------------------------------

    def events(self) -> list[AuditEvent]:
        """All events, in order (from the in-memory view)."""
        return list(self._events)

    def event(self, sequence: int) -> AuditEvent:
        if sequence < 0 or sequence >= len(self._events):
            raise AuditError(f"no audit event with sequence {sequence}")
        return self._events[sequence]

    # -- verification -------------------------------------------------------

    def verify_chain(self) -> ChainVerification:
        """Re-derive the whole chain from persistent storage.

        Reads every journaled entry back from the device (so raw-device
        tampering is caught), recomputes each link, and compares with
        the stored chain digests and the in-memory head.
        """
        head = GENESIS_DIGEST
        try:
            payloads = self._journal.read_all()
        except Exception as exc:  # journal checksum failures included
            return ChainVerification(
                ok=False,
                events_checked=0,
                first_bad_sequence=self._first_journal_corruption(),
                problem=f"journal unreadable: {exc}",
            )
        for sequence, payload in enumerate(payloads):
            try:
                entry = canonical_loads(payload)
                event = AuditEvent.from_dict(entry["event"])
            except Exception as exc:
                return ChainVerification(
                    ok=False,
                    events_checked=sequence,
                    first_bad_sequence=sequence,
                    problem=f"event {sequence} undecodable: {exc}",
                )
            if event.sequence != sequence:
                return ChainVerification(
                    ok=False,
                    events_checked=sequence,
                    first_bad_sequence=sequence,
                    problem=f"event {sequence} carries sequence {event.sequence}",
                )
            if entry["prev"] != head:
                return ChainVerification(
                    ok=False,
                    events_checked=sequence,
                    first_bad_sequence=sequence,
                    problem=f"chain link broken before event {sequence}",
                )
            encoded = canonical_bytes({"event": entry["event"], "prev": head})
            head = chain_digest(head, encoded)
            if entry["chain"] != head:
                return ChainVerification(
                    ok=False,
                    events_checked=sequence,
                    first_bad_sequence=sequence,
                    problem=f"stored chain digest wrong at event {sequence}",
                )
        if head != self._head:
            return ChainVerification(
                ok=False,
                events_checked=len(payloads),
                first_bad_sequence=len(payloads),
                problem="storage does not reproduce the in-memory chain head "
                "(possible truncation or appended forgery)",
            )
        return ChainVerification(ok=True, events_checked=len(payloads))

    def _first_journal_corruption(self) -> int | None:
        corrupted = self._journal.scan_corruption()
        return corrupted[0] if corrupted else None

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(cls, device: BlockDevice, clock: Clock | None = None) -> "AuditLog":
        """Rebuild an audit log from its device after a restart/crash.

        Replays the journal, re-deriving the hash chain and the Merkle
        tree.  A crash-truncated tail (incomplete final frame) is
        dropped by the journal's frame validation; any *mid-log*
        inconsistency raises :class:`AuditError` — a log that does not
        verify must not be silently adopted as the system of record.
        """
        log = cls.__new__(cls)
        log._journal = Journal.recover(device)
        log._clock = clock or WallClock()
        log._head = GENESIS_DIGEST
        log._events = []
        log._tree = MerkleTree()
        log._pending = None
        for sequence, payload in enumerate(log._journal.read_all()):
            try:
                entry = canonical_loads(payload)
                event = AuditEvent.from_dict(entry["event"])
            except Exception as exc:
                raise AuditError(
                    f"recovery failed: event {sequence} undecodable: {exc}"
                ) from exc
            if event.sequence != sequence or entry["prev"] != log._head:
                raise AuditError(
                    f"recovery failed: chain inconsistent at event {sequence}"
                )
            encoded = canonical_bytes({"event": entry["event"], "prev": log._head})
            log._head = chain_digest(log._head, encoded)
            if entry["chain"] != log._head:
                raise AuditError(
                    f"recovery failed: stored chain digest wrong at event {sequence}"
                )
            log._tree.append(encoded)
            log._events.append(event)
        return log

    # -- third-party event proofs -------------------------------------------

    def prove_event(self, sequence: int, at_size: int | None = None):
        """Produce a Merkle inclusion proof for one event.

        Together with a published anchor (see :mod:`repro.audit.anchors`)
        this lets the hospital disclose a *single* audit event to a
        third party — a court, a patient — with cryptographic proof it
        belongs to the witnessed log, without revealing any other event.
        *at_size* selects the anchored log size the proof must match
        (default: the current size).  Returns ``(event, chain_prev,
        proof)``; verify with :func:`verify_event_proof`.
        """
        event = self.event(sequence)
        size = at_size if at_size is not None else len(self._events)
        if sequence >= size:
            raise AuditError(
                f"event {sequence} is not covered by an anchor at size {size}"
            )
        chain_prev = self.expected_head_for(self._events[:sequence])
        proof = self._tree.prove_inclusion_at(sequence, size)
        return event, chain_prev, proof

    def expected_head_for(self, events: list[AuditEvent]) -> bytes:
        """Recompute the chain head a given event list should produce.

        External auditors use this: given an exported event list and a
        published head digest, the export is authentic iff they match.
        """
        head = GENESIS_DIGEST
        for event in events:
            encoded = canonical_bytes({"event": event.to_dict(), "prev": head})
            head = chain_digest(head, encoded)
        return head


def verify_event_proof(
    event: AuditEvent,
    chain_prev: bytes,
    proof,
    anchored_root: bytes,
) -> None:
    """Third-party verification of a single disclosed audit event.

    *anchored_root* is the Merkle root from a witnessed anchor whose
    ``log_size`` equals ``proof.tree_size``; *chain_prev* is the chain
    head preceding the event (part of the disclosure).  Raises
    :class:`~repro.errors.IntegrityError` if the event is not in the
    anchored log.
    """
    from repro.crypto.merkle import verify_inclusion

    encoded = canonical_bytes({"event": event.to_dict(), "prev": chain_prev})
    verify_inclusion(encoded, proof, anchored_root)
