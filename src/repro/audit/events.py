"""Audit event taxonomy.

The action vocabulary covers every operation the regulations require to
be logged: record access and modification (HIPAA Privacy Rule), media
movements (§164.310(d)(2)(iii)), disposal (§164.310(d)(2)(i)), backup
(§164.310(d)(2)(iv)), migrations, and access-control decisions
(including denials and break-glass emergency access — denials matter
because probing is a breach signal).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.util.validation import require_non_empty


class AuditAction(enum.Enum):
    """What happened."""

    # record lifecycle
    RECORD_CREATED = "record_created"
    RECORD_READ = "record_read"
    RECORD_CORRECTED = "record_corrected"
    RECORD_SEARCHED = "record_searched"
    RECORD_DISPOSED = "record_disposed"
    RECORD_EXPORTED = "record_exported"
    # tiering: the demotion marker is the durable commit point for a
    # record's move to the cold tier (recovery replays these, like the
    # migration markers), the recall marker records its return
    RECORD_DEMOTED = "record_demoted"
    RECORD_RECALLED = "record_recalled"
    # access control
    ACCESS_GRANTED = "access_granted"
    ACCESS_DENIED = "access_denied"
    EMERGENCY_ACCESS = "emergency_access"
    CONSENT_CHANGED = "consent_changed"
    # media / hardware accountability
    MEDIA_PROVISIONED = "media_provisioned"
    MEDIA_RETIRED = "media_retired"
    MEDIA_SANITIZED = "media_sanitized"
    MEDIA_DISPOSED = "media_disposed"
    MEDIA_MOVED = "media_moved"
    # data movement
    MIGRATION_STARTED = "migration_started"
    MIGRATION_COMPLETED = "migration_completed"
    MIGRATION_FAILED = "migration_failed"
    BACKUP_CREATED = "backup_created"
    BACKUP_RESTORED = "backup_restored"
    CUSTODY_TRANSFERRED = "custody_transferred"
    # retention
    RETENTION_HOLD_PLACED = "retention_hold_placed"
    RETENTION_HOLD_RELEASED = "retention_hold_released"
    RETENTION_EXPIRED = "retention_expired"
    KEY_SHREDDED = "key_shredded"
    # system
    ANCHOR_PUBLISHED = "anchor_published"
    INTEGRITY_ALERT = "integrity_alert"
    # wire service (the asyncio frontend's own hash chain): one event
    # per API call — including rejections, because probing a network
    # front door is a breach signal just like a local denial
    API_REQUEST = "api_request"
    API_REJECTED = "api_rejected"
    SERVICE_LIFECYCLE = "service_lifecycle"


@dataclass(frozen=True)
class AuditEvent:
    """One immutable audit event.

    ``actor_id`` is the authenticated principal (or ``"system"``);
    ``subject_id`` is what was acted on (record id, medium id, ...);
    ``detail`` carries action-specific canonical data.
    """

    sequence: int
    timestamp: float
    action: AuditAction
    actor_id: str
    subject_id: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_non_empty(self.actor_id, "actor_id")
        require_non_empty(self.subject_id, "subject_id")

    def to_dict(self) -> dict[str, Any]:
        return {
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "action": self.action.value,
            "actor_id": self.actor_id,
            "subject_id": self.subject_id,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AuditEvent":
        return cls(
            sequence=data["sequence"],
            timestamp=data["timestamp"],
            action=AuditAction(data["action"]),
            actor_id=data["actor_id"],
            subject_id=data["subject_id"],
            detail=data["detail"],
        )
