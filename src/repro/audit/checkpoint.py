"""Persisted verification watermarks for the audit log.

A full :meth:`~repro.audit.log.AuditLog.verify_chain` pass is O(archive
lifetime): it re-reads and re-hashes every journaled event.  Over a
30-year log that cost is paid again on *every* forensic query and every
operational health check.  Following the checkpoint idea of history-
tree audit systems (Crosby & Wallach), a successful verification seals
a **verified watermark** — ``(size, head, merkle_root)`` — so the next
verification replays only events past the watermark and ties them to
the sealed prefix with Merkle consistency proofs.

The watermark itself lives on an untrusted device (the raw-device
insider can rewrite anything), so every sealed frame carries an
HMAC-SHA256 tag under a key derived from the HSM-held master key:

* the adversary cannot *forge* a watermark that launders tampering —
  an invalid tag is skipped and verification falls back to an older
  watermark or to a full rescan;
* the adversary can only *destroy* watermarks, which fails safe: less
  sealed prefix means more work re-verified, never less detection;
* a crash that tears a seal write is dropped whole by the journal's
  frame validation, so recovery falls back to full verification rather
  than trusting a torn watermark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.crypto.hmac_utils import constant_time_equal, hmac_sha256
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import Journal
from repro.util.clock import Clock, WallClock
from repro.util.encoding import canonical_bytes, canonical_loads

_TAG_BYTES = 32


@dataclass(frozen=True)
class VerifiedWatermark:
    """State sealed by one successful chain verification.

    ``incremental_runs`` counts incremental verifications since the
    last full rescan — the forced-rescan cadence reads it back after a
    restart so an adversary cannot reset the clock by crashing the
    process.
    """

    size: int
    head: bytes
    merkle_root: bytes
    verified_at: float
    incremental_runs: int = 0

    def to_dict(self) -> dict:
        return {
            "size": self.size,
            "head": self.head,
            "merkle_root": self.merkle_root,
            "verified_at": self.verified_at,
            "incremental_runs": self.incremental_runs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VerifiedWatermark":
        return cls(
            size=data["size"],
            head=data["head"],
            merkle_root=data["merkle_root"],
            verified_at=data["verified_at"],
            incremental_runs=data.get("incremental_runs", 0),
        )

    def bumped(self) -> "VerifiedWatermark":
        """The same watermark after one more incremental run."""
        return replace(self, incremental_runs=self.incremental_runs + 1)


class CheckpointStore:
    """MACed, journal-backed persistence for verified watermarks.

    Frames are ``tag(32) || canonical(watermark)`` appended to a
    dedicated journal.  :meth:`latest` walks frames newest-first and
    returns the first one whose tag verifies — forged or damaged frames
    are skipped, so the worst an adversary (or a crash) achieves is a
    fall-back to an older watermark or to full verification.
    """

    def __init__(
        self,
        device: BlockDevice | None = None,
        key: bytes = b"",
        clock: Clock | None = None,
    ) -> None:
        if not key:
            raise ValueError(
                "CheckpointStore needs a MAC key: an unkeyed watermark on an "
                "untrusted device would let the insider launder tampering"
            )
        self._journal = Journal(device or MemoryDevice("audit-ckpt", 1 << 22))
        self._key = key
        self._clock = clock or WallClock()

    @property
    def device(self) -> BlockDevice:
        return self._journal.device

    def __len__(self) -> int:
        return len(self._journal)

    def seal(self, watermark: VerifiedWatermark) -> None:
        """Persist one watermark as a single journal frame."""
        payload = canonical_bytes(watermark.to_dict())
        self._journal.append(hmac_sha256(self._key, payload) + payload)

    def latest(self) -> VerifiedWatermark | None:
        """The newest watermark whose MAC verifies, else None."""
        for sequence in range(len(self._journal) - 1, -1, -1):
            try:
                frame = self._journal.read(sequence)
            except Exception:  # noqa: BLE001 — damaged frame: keep walking back
                continue
            if len(frame) <= _TAG_BYTES:
                continue
            tag, payload = frame[:_TAG_BYTES], frame[_TAG_BYTES:]
            if not constant_time_equal(hmac_sha256(self._key, payload), tag):
                continue  # forged or bit-rotted: never trusted
            try:
                return VerifiedWatermark.from_dict(canonical_loads(payload))
            except Exception:  # noqa: BLE001
                continue
        return None

    @classmethod
    def recover(
        cls, device: BlockDevice, key: bytes, clock: Clock | None = None
    ) -> "CheckpointStore":
        """Rebuild from a surviving device image.

        :meth:`Journal.recover` drops a crash-torn tail frame whole, so
        a seal interrupted mid-write simply does not exist afterwards —
        the log falls back to the previous watermark, or to a full
        rescan when none survives.
        """
        store = cls.__new__(cls)
        store._journal = Journal.recover(device)
        store._key = key
        store._clock = clock or WallClock()
        return store
