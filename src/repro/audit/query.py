"""Forensic queries over the audit trail.

After a suspected breach, the privacy officer needs answers fast:
who accessed this patient's records, what did this workforce member do
last quarter, were there emergency accesses without follow-up review,
how many denials did each actor accumulate.  :class:`AuditQuery` wraps
an :class:`~repro.audit.log.AuditLog` with those questions.

All queries verify the chain first by default — forensic conclusions
drawn from a tampered log are worse than none.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

from repro.audit.events import AuditAction, AuditEvent
from repro.audit.log import AuditLog
from repro.errors import AuditError

_ACCESS_ACTIONS = frozenset(
    {
        AuditAction.RECORD_READ,
        AuditAction.RECORD_CREATED,
        AuditAction.RECORD_CORRECTED,
        AuditAction.RECORD_SEARCHED,
        AuditAction.RECORD_EXPORTED,
        AuditAction.EMERGENCY_ACCESS,
    }
)


class AuditQuery:
    """Read-only forensic interface over an audit log."""

    def __init__(self, log: AuditLog, verify_first: bool = True) -> None:
        self._log = log
        self._verify_first = verify_first

    def _events(self) -> list[AuditEvent]:
        if self._verify_first:
            verification = self._log.verify_chain()
            if not verification:
                raise AuditError(
                    f"refusing to query a tampered audit log: {verification.problem}"
                )
        return self._log.events()

    def filter(self, predicate: Callable[[AuditEvent], bool]) -> list[AuditEvent]:
        """Generic filtered view."""
        return [event for event in self._events() if predicate(event)]

    def accesses_to(self, subject_id: str) -> list[AuditEvent]:
        """Every access-class event touching *subject_id* (HIPAA
        accounting-of-disclosures)."""
        return self.filter(
            lambda e: e.subject_id == subject_id and e.action in _ACCESS_ACTIONS
        )

    def actions_by(self, actor_id: str) -> list[AuditEvent]:
        """Everything a workforce member did."""
        return self.filter(lambda e: e.actor_id == actor_id)

    def in_window(self, start: float, end: float) -> list[AuditEvent]:
        """Events with start <= timestamp < end."""
        return self.filter(lambda e: start <= e.timestamp < end)

    def by_action(self, action: AuditAction) -> list[AuditEvent]:
        return self.filter(lambda e: e.action is action)

    def emergency_accesses(self) -> list[AuditEvent]:
        """Break-glass events — each one requires after-the-fact review."""
        return self.by_action(AuditAction.EMERGENCY_ACCESS)

    def denial_counts(self) -> dict[str, int]:
        """Denied-access counts per actor; repeated denials signal probing."""
        counts = Counter(
            event.actor_id for event in self.by_action(AuditAction.ACCESS_DENIED)
        )
        return dict(counts)

    def suspicious_actors(self, denial_threshold: int = 5) -> list[str]:
        """Actors whose denial count reaches the threshold."""
        return sorted(
            actor
            for actor, count in self.denial_counts().items()
            if count >= denial_threshold
        )

    def disclosure_accounting(self, patient_record_ids: list[str]) -> list[AuditEvent]:
        """All access events over a patient's record set, time-ordered —
        the report HIPAA lets individuals request."""
        wanted = set(patient_record_ids)
        events = self.filter(
            lambda e: e.subject_id in wanted and e.action in _ACCESS_ACTIONS
        )
        return sorted(events, key=lambda e: e.sequence)
