"""Forensic queries over the audit trail.

After a suspected breach, the privacy officer needs answers fast:
who accessed this patient's records, what did this workforce member do
last quarter, were there emergency accesses without follow-up review,
how many denials did each actor accumulate.  :class:`AuditQuery` wraps
an :class:`~repro.audit.log.AuditLog` with those questions.

All queries verify the chain first by default — forensic conclusions
drawn from a tampered log are worse than none.  Verification is
**proof-carrying and per-session**: the first query of a session runs a
verification (incremental when the log holds a sealed watermark, which
escalates to a full rescan otherwise), and subsequent queries reuse
that result until the log grows.  :meth:`AuditQuery.evidence` exposes
what the session's conclusions rest on, and :meth:`AuditQuery.prove`
turns any returned event into a third-party-checkable Merkle inclusion
proof.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

from repro.audit.events import AuditAction, AuditEvent
from repro.audit.log import AuditLog, ChainVerification
from repro.errors import AuditError

_ACCESS_ACTIONS = frozenset(
    {
        AuditAction.RECORD_READ,
        AuditAction.RECORD_CREATED,
        AuditAction.RECORD_CORRECTED,
        AuditAction.RECORD_SEARCHED,
        AuditAction.RECORD_EXPORTED,
        AuditAction.EMERGENCY_ACCESS,
    }
)


class AuditQuery:
    """Read-only forensic interface over an audit log.

    ``incremental=False`` restores the old behaviour (a full rescan
    before every single query) for callers that want it.
    """

    def __init__(
        self, log: AuditLog, verify_first: bool = True, incremental: bool = True
    ) -> None:
        self._log = log
        self._verify_first = verify_first
        self._incremental = incremental
        self._verification: ChainVerification | None = None
        self._verified_size: int | None = None

    def _events(self) -> list[AuditEvent]:
        if self._verify_first:
            size = len(self._log)
            if self._verification is None or self._verified_size != size:
                verification = self._log.verify_chain(
                    incremental=self._incremental
                )
                if not verification:
                    raise AuditError(
                        "refusing to query a tampered audit log: "
                        f"{verification.problem}"
                    )
                self._verification = verification
                self._verified_size = size
        return self._log.events()

    @property
    def verification(self) -> ChainVerification | None:
        """The verification this session's answers rest on (None until
        the first verified query runs)."""
        return self._verification

    def evidence(self) -> dict:
        """What backs this session's conclusions: the verification mode
        and coverage, plus the chain head and Merkle root the verified
        log commits to.  Attach it to a forensic report so a reviewer
        can see *how* the log was checked, not just that it was."""
        verification = self._verification
        return {
            "verified": verification.ok if verification else False,
            "mode": verification.mode if verification else None,
            "escalated": verification.escalated if verification else False,
            "events_checked": verification.events_checked if verification else 0,
            "spot_checked": verification.spot_checked if verification else 0,
            "log_size": self._verified_size,
            "chain_head": self._log.head_digest,
            "merkle_root": self._log.merkle_root(),
        }

    def prove(self, sequence: int):
        """Merkle inclusion proof for one returned event — lets the
        officer hand a single event to a court or patient with proof it
        belongs to the (anchored) log.  Returns ``(event, chain_prev,
        proof)``; see :func:`repro.audit.log.verify_event_proof`."""
        return self._log.prove_event(sequence)

    def filter(self, predicate: Callable[[AuditEvent], bool]) -> list[AuditEvent]:
        """Generic filtered view."""
        return [event for event in self._events() if predicate(event)]

    def accesses_to(self, subject_id: str) -> list[AuditEvent]:
        """Every access-class event touching *subject_id* (HIPAA
        accounting-of-disclosures)."""
        return self.filter(
            lambda e: e.subject_id == subject_id and e.action in _ACCESS_ACTIONS
        )

    def actions_by(self, actor_id: str) -> list[AuditEvent]:
        """Everything a workforce member did."""
        return self.filter(lambda e: e.actor_id == actor_id)

    def in_window(self, start: float, end: float) -> list[AuditEvent]:
        """Events with start <= timestamp < end."""
        return self.filter(lambda e: start <= e.timestamp < end)

    def by_action(self, action: AuditAction) -> list[AuditEvent]:
        return self.filter(lambda e: e.action is action)

    def emergency_accesses(self) -> list[AuditEvent]:
        """Break-glass events — each one requires after-the-fact review."""
        return self.by_action(AuditAction.EMERGENCY_ACCESS)

    def denial_counts(self) -> dict[str, int]:
        """Denied-access counts per actor; repeated denials signal probing."""
        counts = Counter(
            event.actor_id for event in self.by_action(AuditAction.ACCESS_DENIED)
        )
        return dict(counts)

    def suspicious_actors(self, denial_threshold: int = 5) -> list[str]:
        """Actors whose denial count reaches the threshold."""
        return sorted(
            actor
            for actor, count in self.denial_counts().items()
            if count >= denial_threshold
        )

    def disclosure_accounting(self, patient_record_ids: list[str]) -> list[AuditEvent]:
        """All access events over a patient's record set, time-ordered —
        the report HIPAA lets individuals request."""
        wanted = set(patient_record_ids)
        events = self.filter(
            lambda e: e.subject_id in wanted and e.action in _ACCESS_ACTIONS
        )
        return sorted(events, key=lambda e: e.sequence)
