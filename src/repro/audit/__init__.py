"""Tamper-evident audit trail.

HIPAA requires internal audit procedures, accountability for media
movements, and logging of record access; the paper adds that logging
must itself be *trustworthy* — an insider who can alter the log can
erase the evidence of their tampering.

The design layers three mechanisms:

1. **Hash chain** (:mod:`repro.audit.log`): every event's digest folds
   in its predecessor's digest, so deleting, editing, or reordering any
   event breaks the chain from that point on.  Verification localizes
   the first broken link.
2. **Merkle anchoring** (:mod:`repro.audit.anchors`): the log
   periodically commits its Merkle root to an external witness (a
   regulator, a newspaper, another hospital).  A *truncation* attack —
   chopping the tail and presenting a shorter but internally-consistent
   log — defeats a bare hash chain but not an anchored one: the witness
   holds a root the shortened log cannot reproduce, and consistency
   proofs show each anchor extends the previous one.
3. **Forensic queries** (:mod:`repro.audit.query`): who touched record
   X, everything actor Y did, all emergency accesses — the questions a
   privacy officer asks after a suspected breach.
4. **Verified watermarks** (:mod:`repro.audit.checkpoint`): a MAC-sealed
   checkpoint of the last successful verification, so repeated
   verification replays only the delta past the watermark instead of the
   whole archive (with randomized sealed-prefix spot-checks and a forced
   periodic full rescan preserving tamper detection).
"""

from repro.audit.anchors import AnchorWitness, AuditAnchor, WitnessQuorum
from repro.audit.checkpoint import CheckpointStore, VerifiedWatermark
from repro.audit.events import AuditAction, AuditEvent
from repro.audit.log import AuditLog, ChainVerification
from repro.audit.query import AuditQuery

__all__ = [
    "AnchorWitness",
    "AuditAnchor",
    "WitnessQuorum",
    "AuditAction",
    "AuditEvent",
    "AuditLog",
    "ChainVerification",
    "AuditQuery",
    "CheckpointStore",
    "VerifiedWatermark",
]
