"""Deterministic fault injection for storage experiments.

Three fault families, matching the hazards the regulations anticipate:

* **bit rot** — long-retention media degrade; E7 injects rot over the
  simulated 30 years and the integrity layer must detect it;
* **crash truncation** — the tail of a journal is lost mid-write; the
  journal's entry framing must recover cleanly;
* **site disaster / theft** — a whole device disappears (fire, flood,
  stolen laptop); E9 (backup) and E5 (stolen-media confidentiality)
  depend on it.

All injection is driven by a :class:`DeterministicRng`, so a failing
experiment replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.storage.block import BlockDevice
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class InjectedFault:
    """A record of one injected fault (for experiment reports)."""

    kind: str
    device_id: str
    offset: int
    size: int


class FaultInjector:
    """Applies faults to block devices, deterministically."""

    def __init__(self, rng: DeterministicRng) -> None:
        self._rng = rng
        self._log: list[InjectedFault] = []

    @property
    def log(self) -> list[InjectedFault]:
        return list(self._log)

    def flip_bits(self, device: BlockDevice, count: int = 1) -> list[int]:
        """Flip one random bit in each of *count* random allocated bytes.

        Returns the affected offsets.  Raises if the device has no
        allocated data to corrupt.
        """
        if device.used == 0:
            raise ValidationError(f"device {device.device_id} holds no data to corrupt")
        offsets = []
        for _ in range(count):
            offset = self._rng.randint(0, device.used - 1)
            original = device.raw_read(offset, 1)[0]
            flipped = original ^ (1 << self._rng.randint(0, 7))
            device.raw_write(offset, bytes([flipped]))
            offsets.append(offset)
            self._log.append(InjectedFault("bit_rot", device.device_id, offset, 1))
        return offsets

    def corrupt_range(self, device: BlockDevice, offset: int, size: int) -> None:
        """Overwrite a specific range with deterministic garbage
        (targeted tampering, as an insider would do)."""
        garbage = self._rng.bytes(size)
        device.raw_write(offset, garbage)
        self._log.append(InjectedFault("corrupt_range", device.device_id, offset, size))

    def truncate_tail(self, device: BlockDevice, lost_bytes: int) -> int:
        """Simulate a crash that loses the last *lost_bytes* of the
        allocated region (zeroes them and rolls back the allocator).
        Returns the new used size."""
        lost = min(lost_bytes, device.used)
        start = device.used - lost
        device.raw_write(start, bytes(lost))
        device.truncate_to(start)
        self._log.append(InjectedFault("crash_truncate", device.device_id, start, lost))
        return device.used

    def destroy_device(self, device: BlockDevice) -> None:
        """Site disaster: the device is gone for the software stack."""
        device.detach()
        self._log.append(InjectedFault("destroyed", device.device_id, 0, device.used))

    def steal_device(self, device: BlockDevice) -> bytes:
        """Theft: the device detaches AND the adversary gets its bytes."""
        dump = device.raw_dump()
        device.detach()
        self._log.append(InjectedFault("stolen", device.device_id, 0, len(dump)))
        return dump
