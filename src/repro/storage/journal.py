"""Append-only journal over a block device.

The lowest-level *structured* storage in the system: length-prefixed,
checksummed entries appended to a device.  The WORM store, the audit
log, and the baselines all persist through a journal, so every byte
the software writes is reachable by the adversary's ``raw_read`` — no
hidden in-Python state that the threat model could not see.

Entry framing::

    magic(4) | length(4, big-endian) | crc: sha256[:8] | payload

Recovery: :meth:`Journal.recover` rescans the device from offset 0 and
stops at the first entry whose magic/length/checksum is invalid — a
crash-truncated tail is dropped cleanly, entries before it survive.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.hashing import hash_chunks, sha256
from repro.errors import IntegrityError, StorageError
from repro.storage.block import BlockDevice
from repro.util.metrics import METRICS

_MAGIC = b"CURJ"
_HEADER = struct.Struct(">4sI8s")

HEADER_SIZE = _HEADER.size
"""Bytes of framing before each entry's payload (exposed for layers
that need to compute device offsets of payload content)."""


@dataclass(frozen=True)
class JournalEntry:
    """One committed journal entry."""

    sequence: int
    offset: int
    payload: bytes


@dataclass(frozen=True)
class ScatteredEntry:
    """Metadata for an entry committed from scattered chunks.

    Unlike :class:`JournalEntry` it does not carry the payload bytes —
    materializing them would reintroduce exactly the copy
    :meth:`Journal.append_scattered` exists to avoid.
    """

    sequence: int
    offset: int
    length: int


class Journal:
    """Length-prefixed checksummed append-only log on a device."""

    def __init__(self, device: BlockDevice) -> None:
        self._device = device
        self._entries: list[tuple[int, int]] = []  # (offset, payload_len)
        self._flush_count = 0  # device writes issued (batches count once)

    @property
    def device(self) -> BlockDevice:
        return self._device

    @property
    def flush_count(self) -> int:
        """Device writes this journal has issued; a batched append of N
        entries counts once — the amortization the engine buys."""
        return self._flush_count

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, payload: bytes) -> JournalEntry:
        """Append one entry; returns its metadata."""
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("journal payload must be bytes")
        payload = bytes(payload)
        header = _HEADER.pack(_MAGIC, len(payload), sha256(payload)[:8])
        offset = self._device.allocate(_HEADER.size + len(payload))
        self._device.write(offset, header + payload)
        self._entries.append((offset, len(payload)))
        self._flush_count += 1
        METRICS.incr("journal_flush_count")
        METRICS.incr("journal_entries_appended")
        return JournalEntry(
            sequence=len(self._entries) - 1, offset=offset, payload=payload
        )

    def append_many(self, payloads: list[bytes]) -> list[JournalEntry]:
        """Append several entries under ONE device write.

        Framing is byte-identical to the same sequence of single
        :meth:`append` calls — recovery, verification, and the
        adversary's frame walk cannot tell the difference; only the
        number of device writes (and their cost) changes.
        """
        if not payloads:
            return []
        buffers: list[bytes] = []
        staged: list[tuple[int, bytes]] = []  # (relative offset, payload)
        total = 0
        for payload in payloads:
            if not isinstance(payload, (bytes, bytearray)):
                raise StorageError("journal payload must be bytes")
            payload = bytes(payload)
            staged.append((total, payload))
            buffers.append(_HEADER.pack(_MAGIC, len(payload), sha256(payload)[:8]))
            buffers.append(payload)
            total += _HEADER.size + len(payload)
        base = self._device.allocate(total)
        # One writev-style flush: each preassembled frame buffer goes to
        # the device by reference — the frame run is never joined into a
        # single intermediate bytes object.
        self._device.writev(base, buffers)
        self._flush_count += 1
        METRICS.incr("journal_flush_count")
        METRICS.incr("journal_entries_appended", len(staged))
        entries = []
        for relative, payload in staged:
            self._entries.append((base + relative, len(payload)))
            entries.append(
                JournalEntry(
                    sequence=len(self._entries) - 1,
                    offset=base + relative,
                    payload=payload,
                )
            )
        return entries

    def append_scattered(self, chunks: list[bytes]) -> ScatteredEntry:
        """Append ONE frame whose payload is the concatenation of
        *chunks*, committed without ever joining them.

        Framing is byte-identical to ``append(b"".join(chunks))`` — one
        header, one checksum over the whole payload (computed
        incrementally), one atomic flush — so recovery and the
        adversary's frame walk see the same bytes; only the Python-side
        copies disappear.  This is how the WORM store commits a
        ``put_many`` batch: header chunk plus each object's sealed bytes,
        straight to the device.
        """
        for chunk in chunks:
            if not isinstance(chunk, (bytes, bytearray)):
                raise StorageError("journal payload must be bytes")
        total = sum(len(chunk) for chunk in chunks)
        header = _HEADER.pack(_MAGIC, total, hash_chunks(chunks)[:8])
        offset = self._device.allocate(_HEADER.size + total)
        self._device.writev(offset, [header, *chunks])
        self._entries.append((offset, total))
        self._flush_count += 1
        METRICS.incr("journal_flush_count")
        METRICS.incr("journal_entries_appended")
        return ScatteredEntry(
            sequence=len(self._entries) - 1, offset=offset, length=total
        )

    def read(self, sequence: int) -> bytes:
        """Read one entry's payload, verifying its checksum."""
        if sequence < 0 or sequence >= len(self._entries):
            raise StorageError(f"journal entry {sequence} does not exist")
        offset, payload_len = self._entries[sequence]
        return self._read_at(offset, payload_len)

    def offset_of(self, sequence: int) -> int:
        """Device offset of entry *sequence*'s frame header (layers above
        compute payload extents from it, e.g. for shredding)."""
        if sequence < 0 or sequence >= len(self._entries):
            raise StorageError(f"journal entry {sequence} does not exist")
        return self._entries[sequence][0]

    def reseal(self, sequence: int) -> None:
        """Recompute entry *sequence*'s stored checksum over its CURRENT
        device bytes.

        For exactly one caller: authorized physical destruction.  The
        shredder zeroes an object's extent inside a frame; without a
        reseal, crash recovery would read the hole as accidental damage
        — and since the frame checksum covers the whole payload, a
        strict prefix scan would also drop every innocent neighbour in
        a batch frame plus everything appended later.  Resealing marks
        the hole as intentional so recovery keeps walking.  (The
        checksum guards against accidents, not adversaries — tamper
        detection lives in the keyed/off-device layers above.)
        """
        if sequence < 0 or sequence >= len(self._entries):
            raise StorageError(f"journal entry {sequence} does not exist")
        offset, payload_len = self._entries[sequence]
        payload = self._device.raw_read(offset + _HEADER.size, payload_len)
        self._device.raw_write(
            offset, _HEADER.pack(_MAGIC, payload_len, sha256(payload)[:8])
        )

    def _read_at(self, offset: int, payload_len: int) -> bytes:
        blob = self._device.read(offset, _HEADER.size + payload_len)
        magic, length, checksum = _HEADER.unpack(blob[: _HEADER.size])
        payload = blob[_HEADER.size :]
        if magic != _MAGIC:
            raise IntegrityError(f"journal entry at {offset}: bad magic")
        if length != payload_len:
            raise IntegrityError(f"journal entry at {offset}: length mismatch")
        if sha256(payload)[:8] != checksum:
            raise IntegrityError(f"journal entry at {offset}: checksum mismatch")
        return payload

    def read_all(self) -> list[bytes]:
        """All payloads in order, each checksum-verified."""
        return [self.read(i) for i in range(len(self._entries))]

    def scan_corruption(self) -> list[int]:
        """Return the sequence numbers of entries that fail their checksum.

        Unlike :meth:`read`, does not raise — the integrity experiments
        want the full damage report.
        """
        corrupted = []
        for sequence in range(len(self._entries)):
            try:
                self.read(sequence)
            except IntegrityError:
                corrupted.append(sequence)
        return corrupted

    # ------------------------------------------------------------------
    # The adversary's view.  A knowledgeable insider understands the
    # on-disk frame format (it is not secret), so the threat harness
    # gets explicit helpers: walking frames on a raw device and forging
    # a frame in place with a *recomputed* checksum.  The checksum is an
    # unkeyed CRC-equivalent — it protects against accidents, not
    # adversaries — which is precisely why the layers above need MACs,
    # digests held off-device, and hash chains.
    # ------------------------------------------------------------------

    @staticmethod
    def iter_device_frames(device: BlockDevice):
        """Yield ``(offset, payload)`` for each frame on the raw device,
        stopping at the first invalid frame (adversary's scan)."""
        offset = 0
        end = device.used
        while offset + _HEADER.size <= end:
            header = device.raw_read(offset, _HEADER.size)
            magic, length, checksum = _HEADER.unpack(header)
            if magic != _MAGIC or offset + _HEADER.size + length > end:
                return
            payload = device.raw_read(offset + _HEADER.size, length)
            yield offset, payload
            offset += _HEADER.size + length

    @staticmethod
    def walk_frames(device: BlockDevice, end: int | None = None):
        """Lenient raw-device frame walk: yield ``(offset, payload,
        checksum_ok)`` for every frame whose header (magic + in-bounds
        length) is intact, *continuing past* frames whose payload fails
        its checksum.

        This is the recovery primitive for journals that legitimately
        contain destroyed frames mid-log (e.g. the key-escrow journal
        after a shred physically overwrites a wrapped key): a strict
        prefix scan (:meth:`recover`) would declare everything after the
        first hole dead, while this walk skips the hole and keeps going.
        The walk stops at the first unparseable header — a crash-torn
        tail or the unwritten region.
        """
        offset = 0
        limit = device.used if end is None else end
        while offset + _HEADER.size <= limit:
            header = device.raw_read(offset, _HEADER.size)
            magic, length, checksum = _HEADER.unpack(header)
            if magic != _MAGIC or offset + _HEADER.size + length > limit:
                return
            payload = device.raw_read(offset + _HEADER.size, length)
            yield offset, payload, sha256(payload)[:8] == checksum
            offset += _HEADER.size + length

    @staticmethod
    def forge_frame(device: BlockDevice, offset: int, payload: bytes) -> None:
        """Rewrite the frame at *offset* with *payload* (same length) and
        a freshly computed checksum — the smart insider's tamper."""
        header = device.raw_read(offset, _HEADER.size)
        magic, length, _ = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise StorageError(f"no journal frame at offset {offset}")
        if len(payload) != length:
            raise StorageError(
                f"forged payload must keep the frame length ({length} bytes)"
            )
        new_header = _HEADER.pack(_MAGIC, length, sha256(payload)[:8])
        device.raw_write(offset, new_header + payload)

    @classmethod
    def recover(cls, device: BlockDevice) -> "Journal":
        """Rebuild the entry table by scanning the device from offset 0.

        Stops at the first frame that fails validation (crash tail).
        The device's allocator is reset to the end of the last valid
        entry so subsequent appends continue from there.
        """
        journal = cls.__new__(cls)
        journal._device = device
        journal._entries = []
        journal._flush_count = 0
        offset = 0
        end = device.used
        while offset + _HEADER.size <= end:
            header = device.read(offset, _HEADER.size)
            magic, length, checksum = _HEADER.unpack(header)
            if magic != _MAGIC or offset + _HEADER.size + length > end:
                break
            payload = device.read(offset + _HEADER.size, length)
            if sha256(payload)[:8] != checksum:
                break
            journal._entries.append((offset, length))
            offset += _HEADER.size + length
        device.truncate_to(offset)
        return journal
