"""Media lifecycle: the HIPAA §164.310(d)(2) disposal and re-use rules.

HIPAA requires covered entities to (i) have final-disposition policies
for media holding EPHI and (ii) remove EPHI from media before re-use.
A :class:`Medium` wraps a block device with a state machine enforcing
those rules:

::

    ACTIVE ──retire──▶ RETIRED ──sanitize──▶ SANITIZED ──recommission──▶ ACTIVE
                          │                       │
                          └──────dispose──────────┴──▶ DISPOSED (terminal)

* Writing is only allowed in ``ACTIVE``.
* ``sanitize()`` overwrites the allocated region with zero bytes
  (configurable pass count) and resets the allocator; re-use without
  sanitization is a :class:`MediaLifecycleError`.
* ``dispose()`` detaches the device.  A *negligent* disposal (skipping
  sanitization) is possible via ``dispose(sanitize_first=False)`` so
  experiments can measure what a dumpster-diving adversary recovers.

A :class:`MediaPool` manages a fleet of media with manufacture dates
and service-life limits, which the 30-year retention experiment (E7)
uses to force periodic migrations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MediaLifecycleError
from repro.storage.block import BlockDevice, MemoryDevice
from repro.util.clock import Clock, SECONDS_PER_YEAR, WallClock


class MediaState(enum.Enum):
    """Compliance lifecycle states for a storage medium."""

    ACTIVE = "active"
    RETIRED = "retired"
    SANITIZED = "sanitized"
    DISPOSED = "disposed"


@dataclass(frozen=True)
class MediaEvent:
    """One lifecycle transition, for the accountability log."""

    medium_id: str
    transition: str
    timestamp: float
    detail: str = ""


class Medium:
    """A block device under lifecycle control."""

    def __init__(
        self,
        device: BlockDevice,
        clock: Clock | None = None,
        media_type: str = "magnetic",
        manufactured_at: float | None = None,
        service_life_years: float = 5.0,
    ) -> None:
        self.device = device
        self.media_type = media_type
        self._clock = clock or WallClock()
        self.manufactured_at = (
            manufactured_at if manufactured_at is not None else self._clock.now()
        )
        self.service_life_years = service_life_years
        self._state = MediaState.ACTIVE
        self._history: list[MediaEvent] = [
            MediaEvent(device.device_id, "commissioned", self._clock.now())
        ]

    @property
    def medium_id(self) -> str:
        return self.device.device_id

    @property
    def state(self) -> MediaState:
        return self._state

    @property
    def history(self) -> list[MediaEvent]:
        """Lifecycle transitions (HIPAA accountability record)."""
        return list(self._history)

    def _record(self, transition: str, detail: str = "") -> None:
        self._history.append(
            MediaEvent(self.medium_id, transition, self._clock.now(), detail)
        )

    # -- age / wear ------------------------------------------------------

    def age_years(self) -> float:
        """Age since manufacture, in years."""
        return (self._clock.now() - self.manufactured_at) / SECONDS_PER_YEAR

    def past_service_life(self) -> bool:
        """Whether the medium has outlived its rated service life."""
        return self.age_years() > self.service_life_years

    # -- lifecycle transitions --------------------------------------------

    def require_active(self) -> None:
        """Raise unless the medium is writable/active."""
        if self._state is not MediaState.ACTIVE:
            raise MediaLifecycleError(
                f"medium {self.medium_id} is {self._state.value}, not active"
            )

    def retire(self, reason: str = "") -> None:
        """Take the medium out of active service (no more writes)."""
        if self._state is not MediaState.ACTIVE:
            raise MediaLifecycleError(
                f"cannot retire medium {self.medium_id} in state {self._state.value}"
            )
        self._state = MediaState.RETIRED
        self.device.set_write_protected(True)
        self._record("retired", reason)

    def sanitize(self, passes: int = 1) -> int:
        """Overwrite all allocated bytes; returns bytes wiped per pass.

        Only retired media can be sanitized (sanitizing active media
        would destroy live records).
        """
        if self._state is not MediaState.RETIRED:
            raise MediaLifecycleError(
                f"cannot sanitize medium {self.medium_id} in state {self._state.value}"
            )
        if passes < 1:
            raise MediaLifecycleError("sanitization needs at least one pass")
        wiped = self.device.used
        zeros = bytes(min(wiped, 1 << 16))
        for _ in range(passes):
            offset = 0
            while offset < wiped:
                chunk = min(len(zeros), wiped - offset)
                self.device.raw_write(offset, zeros[:chunk])
                offset += chunk
        self._state = MediaState.SANITIZED
        self._record("sanitized", f"passes={passes} bytes={wiped}")
        return wiped

    def recommission(self) -> None:
        """Return sanitized media to active service (the re-use rule)."""
        if self._state is not MediaState.SANITIZED:
            raise MediaLifecycleError(
                f"media re-use requires sanitization first; "
                f"medium {self.medium_id} is {self._state.value}"
            )
        # Reset the allocator: the medium presents as empty.
        self.device.reset_allocation(0)
        self.device.set_write_protected(False)
        self._state = MediaState.ACTIVE
        self._record("recommissioned")

    def dispose(self, sanitize_first: bool = True) -> None:
        """Final disposition.  With ``sanitize_first=False`` this models
        the negligent path the regulations forbid; the threat experiments
        use it to demonstrate recoverable residue."""
        if self._state is MediaState.DISPOSED:
            raise MediaLifecycleError(f"medium {self.medium_id} already disposed")
        if sanitize_first and self._state is not MediaState.SANITIZED:
            if self._state is MediaState.ACTIVE:
                self.retire("disposal")
            if self._state is MediaState.RETIRED:
                self.sanitize()
        self._state = MediaState.DISPOSED
        self.device.detach()
        self._record("disposed", "sanitized" if sanitize_first else "NEGLIGENT")

    def forensic_scan(self) -> bytes:
        """What an adversary with the physical medium can read.

        Available in every state — physical possession beats software
        controls.  (A detached device still yields its bytes.)
        """
        return self.device.raw_dump()


class MediaPool:
    """A fleet of media with automated aging-based replacement.

    ``provision()`` mints new media; ``due_for_replacement()`` lists
    media past service life, which the lifecycle orchestrator migrates
    off and retires.  Every provisioning and disposal is recorded so the
    pool can produce the HIPAA accountability report of hardware
    movements.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        default_capacity: int = 1 << 22,
        media_type: str = "magnetic",
        service_life_years: float = 5.0,
    ) -> None:
        self._clock = clock or WallClock()
        self._default_capacity = default_capacity
        self._media_type = media_type
        self._service_life_years = service_life_years
        self._media: dict[str, Medium] = {}
        self._counter = 0

    def provision(self, capacity: int | None = None) -> Medium:
        """Manufacture and commission a new medium."""
        self._counter += 1
        device = MemoryDevice(
            f"med-{self._counter:04d}", capacity or self._default_capacity
        )
        medium = Medium(
            device,
            clock=self._clock,
            media_type=self._media_type,
            service_life_years=self._service_life_years,
        )
        self._media[medium.medium_id] = medium
        return medium

    def adopt(self, device: BlockDevice) -> Medium:
        """Commission a medium around an *existing* device (the crash-
        recovery path: the image survived, the Medium object did not).
        The adopted medium joins the pool's accountability record."""
        if device.device_id in self._media:
            raise MediaLifecycleError(
                f"medium {device.device_id} is already in the pool"
            )
        medium = Medium(
            device,
            clock=self._clock,
            media_type=self._media_type,
            service_life_years=self._service_life_years,
        )
        self._media[medium.medium_id] = medium
        return medium

    def get(self, medium_id: str) -> Medium:
        if medium_id not in self._media:
            raise MediaLifecycleError(f"unknown medium {medium_id}")
        return self._media[medium_id]

    def active_media(self) -> list[Medium]:
        return [m for m in self._media.values() if m.state is MediaState.ACTIVE]

    def due_for_replacement(self) -> list[Medium]:
        """Active media past their rated service life."""
        return [m for m in self.active_media() if m.past_service_life()]

    def accountability_report(self) -> list[MediaEvent]:
        """All lifecycle events across the fleet, time-ordered —
        the §164.310(d)(2)(iii) record of hardware movements."""
        events = [event for medium in self._media.values() for event in medium.history]
        return sorted(events, key=lambda e: (e.timestamp, e.medium_id))

    def __len__(self) -> int:
        return len(self._media)
