"""Byte-addressable block devices.

A :class:`BlockDevice` is a flat byte array with explicit capacity,
allocate/read/write primitives, and I/O counters.  Two implementations:

* :class:`MemoryDevice` — a bytearray; fast, used by tests, benchmarks
  and the simulated media pool.
* :class:`FileBackedDevice` — bytes on disk; used by examples that want
  state to survive the process.

Both expose :meth:`raw_read`/:meth:`raw_write`, deliberately
*unchecked* primitives that model an insider with direct disk access
(the paper's key adversary).  The software stack above always goes
through :meth:`read`/:meth:`write`, which honor the device's
write-protection flag; ``raw_write`` does not — tamper-evidence, not
tamper-prevention, is what a hash chain provides, and the experiments
make that distinction measurable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import CrashError, DeviceError


@dataclass
class DeviceStats:
    """I/O counters, used by the performance experiments."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    raw_reads: int = 0
    raw_writes: int = 0

    def snapshot(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "raw_reads": self.raw_reads,
            "raw_writes": self.raw_writes,
        }


class BlockDevice:
    """Abstract flat-address-space device."""

    def __init__(self, device_id: str, capacity: int) -> None:
        if capacity <= 0:
            raise DeviceError("capacity must be positive")
        self.device_id = device_id
        self.capacity = capacity
        self.stats = DeviceStats()
        self._write_protected = False
        self._next_offset = 0
        self._detached = False
        self._write_hook = None

    # -- state flags ---------------------------------------------------

    @property
    def write_protected(self) -> bool:
        return self._write_protected

    def set_write_protected(self, value: bool) -> None:
        """Software write-protect latch (honored by write(), not raw_write())."""
        self._write_protected = bool(value)

    @property
    def detached(self) -> bool:
        """A detached (stolen/lost/destroyed) device rejects all software I/O."""
        return self._detached

    def detach(self) -> None:
        self._detached = True

    # -- allocation ----------------------------------------------------

    @property
    def used(self) -> int:
        """Bytes allocated so far."""
        return self._next_offset

    @property
    def free(self) -> int:
        return self.capacity - self._next_offset

    def allocate(self, size: int) -> int:
        """Reserve *size* bytes; returns the start offset."""
        if size < 0:
            raise DeviceError("allocation size must be non-negative")
        if self._next_offset + size > self.capacity:
            raise DeviceError(
                f"device {self.device_id} full: need {size}, free {self.free}"
            )
        offset = self._next_offset
        self._next_offset += size
        return offset

    def truncate_to(self, offset: int) -> None:
        """Roll the allocator back to *offset* (recovery/fault-injection
        API: the owner of the device declares everything past *offset*
        dead).  Bytes beyond are untouched — only allocation moves."""
        if offset < 0 or offset > self.capacity:
            raise DeviceError(
                f"truncate_to({offset}) out of range on {self.device_id} "
                f"(capacity {self.capacity})"
            )
        self._next_offset = offset

    def reset_allocation(self, offset: int = 0) -> None:
        """Reposition the allocator to *offset* in either direction.

        ``reset_allocation(0)`` presents the device as empty (media
        re-use); ``reset_allocation(capacity)`` marks the whole device
        allocated, which is how recovery adopts a raw image whose true
        extent is unknown until a scan finds the valid tail.
        """
        if offset < 0 or offset > self.capacity:
            raise DeviceError(
                f"reset_allocation({offset}) out of range on {self.device_id} "
                f"(capacity {self.capacity})"
            )
        self._next_offset = offset

    # -- fault injection -------------------------------------------------

    def install_write_hook(self, hook) -> None:
        """Interpose *hook* on every media commit (checked and raw).

        The hook is called as ``hook(device, offset, data)`` after all
        validity checks pass and immediately before the bytes reach the
        medium; it returns the bytes to actually commit (normally
        *data*, possibly a torn prefix) or raises to abort the write
        with nothing committed.  This is the seam the crash-consistency
        sweep uses (:mod:`repro.verify.crashpoint`); production code
        never installs hooks.
        """
        self._write_hook = hook

    def clear_write_hook(self) -> None:
        self._write_hook = None

    def _commit(self, offset: int, data: bytes) -> int:
        """Run the write hook (if any), then store; returns bytes stored.

        A hook that raises :class:`~repro.errors.CrashError` kills the
        write — but if the error carries ``partial`` bytes, that prefix
        reaches the medium first: the torn write a power loss leaves
        behind.
        """
        if self._write_hook is not None:
            try:
                data = self._write_hook(self, offset, data)
            except CrashError as crash:
                if crash.partial:
                    self._store(offset, crash.partial)
                raise
        self._store(offset, data)
        return len(data)

    # -- checked I/O (the software stack's path) ------------------------

    def write(self, offset: int, data: bytes) -> None:
        """Write through the software path; honors write protection."""
        self._check_attached()
        if self._write_protected:
            raise DeviceError(f"device {self.device_id} is write-protected")
        self._check_bounds(offset, len(data))
        stored = self._commit(offset, data)
        self.stats.writes += 1
        self.stats.bytes_written += stored

    def writev(self, offset: int, buffers: list[bytes]) -> None:
        """Scatter write: commit *buffers* contiguously from *offset*
        under ONE software write, without joining them first.

        Semantically identical to ``write(offset, b"".join(buffers))`` —
        same bounds/protection checks, same single entry in the I/O
        stats — but the fast path hands each buffer to the medium
        directly, so a batched journal flush never materializes the
        whole frame run in memory.  When a fault-injection write hook is
        installed the buffers ARE joined and routed through the ordinary
        commit path: the crash sweep must keep seeing one tearable write
        per flush.
        """
        self._check_attached()
        if self._write_protected:
            raise DeviceError(f"device {self.device_id} is write-protected")
        total = sum(len(buffer) for buffer in buffers)
        self._check_bounds(offset, total)
        if self._write_hook is not None:
            stored = self._commit(offset, b"".join(buffers))
        else:
            self._storev(offset, buffers)
            stored = total
        self.stats.writes += 1
        self.stats.bytes_written += stored

    def read(self, offset: int, size: int) -> bytes:
        """Read through the software path."""
        self._check_attached()
        self._check_bounds(offset, size)
        data = self._load(offset, size)
        self.stats.reads += 1
        self.stats.bytes_read += size
        return data

    # -- raw I/O (the adversary's path) ---------------------------------

    def raw_read(self, offset: int, size: int) -> bytes:
        """Direct media access, bypassing the software stack.

        Works even on a detached device — a thief holding the physical
        medium can always read its bytes.  Confidentiality on stolen
        media therefore comes only from encryption, never from the
        access-control layer above; experiment E5 measures exactly this.
        """
        self._check_bounds(offset, size)
        data = self._load(offset, size)
        self.stats.raw_reads += 1
        return data

    def raw_write(self, offset: int, data: bytes) -> None:
        """Direct media tampering: bypasses write protection.

        Still subject to the write hook: the crash sweep must be able to
        kill the process model mid-shred or mid-reseal, and those paths
        commit through ``raw_write``.
        """
        self._check_bounds(offset, len(data))
        self._commit(offset, data)
        self.stats.raw_writes += 1

    def raw_dump(self) -> bytes:
        """The full allocated region — what a forensic scan of the medium sees."""
        self.stats.raw_reads += 1
        return self._load(0, self._next_offset)

    # -- plumbing --------------------------------------------------------

    def _check_attached(self) -> None:
        if self._detached:
            raise DeviceError(f"device {self.device_id} is detached")

    def _check_bounds(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.capacity:
            raise DeviceError(
                f"I/O out of bounds on {self.device_id}: "
                f"offset={offset} size={size} capacity={self.capacity}"
            )

    def _store(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def _storev(self, offset: int, buffers: list[bytes]) -> None:
        """Scatter-store fallback: one :meth:`_store` per buffer.
        Subclasses with real file handles override this to keep the
        whole run under a single descriptor operation."""
        for buffer in buffers:
            self._store(offset, buffer)
            offset += len(buffer)

    def _load(self, offset: int, size: int) -> bytes:
        raise NotImplementedError


class MemoryDevice(BlockDevice):
    """In-memory device over a bytearray."""

    def __init__(self, device_id: str, capacity: int) -> None:
        super().__init__(device_id, capacity)
        self._buffer = bytearray(capacity)

    def _store(self, offset: int, data: bytes) -> None:
        self._buffer[offset : offset + len(data)] = data

    def _load(self, offset: int, size: int) -> bytes:
        return bytes(self._buffer[offset : offset + size])


class FileBackedDevice(BlockDevice):
    """Device backed by a file on the host filesystem."""

    def __init__(self, device_id: str, capacity: int, path: str) -> None:
        super().__init__(device_id, capacity)
        self._path = path
        if not os.path.exists(path):
            with open(path, "wb") as handle:
                handle.truncate(capacity)
        else:
            actual = os.path.getsize(path)
            if actual != capacity:
                raise DeviceError(
                    f"backing file {path} is {actual} bytes, expected {capacity}"
                )

    @property
    def path(self) -> str:
        return self._path

    def _store(self, offset: int, data: bytes) -> None:
        with open(self._path, "r+b") as handle:
            handle.seek(offset)
            handle.write(data)

    def _storev(self, offset: int, buffers: list[bytes]) -> None:
        with open(self._path, "r+b") as handle:
            handle.seek(offset)
            for buffer in buffers:
                handle.write(buffer)

    def _load(self, offset: int, size: int) -> bytes:
        with open(self._path, "rb") as handle:
            handle.seek(offset)
            data = handle.read(size)
        if len(data) != size:
            raise DeviceError(f"short read from backing file {self._path}")
        return data
