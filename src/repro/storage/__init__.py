"""Simulated storage substrate.

The paper's requirements are about storage *semantics* — write-once
behaviour, sanitization before media re-use, migration across hardware
generations, survival of site disasters.  This package provides the
simulated hardware those semantics run on:

* :mod:`repro.storage.block` — byte-addressable block devices, either
  in-memory or file-backed, with raw read/write counters.
* :mod:`repro.storage.media` — media with a compliance lifecycle
  (``ACTIVE`` → ``RETIRED`` → ``SANITIZED`` → reusable / ``DISPOSED``),
  enforcing HIPAA §164.310(d)(2)(i-ii).
* :mod:`repro.storage.failures` — deterministic fault injection: bit
  rot, crash truncation, whole-device theft/loss.
* :mod:`repro.storage.journal` — an append-only record journal over a
  block device, the lowest layer the WORM store builds on.

Crucially, devices expose :meth:`~repro.storage.block.BlockDevice.raw_read`
to adversaries: the insider threat model gets the same bytes the
software stack stores, which is how the experiments show that
access-control-only solutions fail the paper's insider requirement.
"""

from repro.storage.block import BlockDevice, DeviceStats, FileBackedDevice, MemoryDevice
from repro.storage.failures import FaultInjector
from repro.storage.journal import Journal, JournalEntry
from repro.storage.media import MediaState, Medium, MediaPool

__all__ = [
    "BlockDevice",
    "DeviceStats",
    "FileBackedDevice",
    "MemoryDevice",
    "FaultInjector",
    "Journal",
    "JournalEntry",
    "MediaState",
    "Medium",
    "MediaPool",
]
