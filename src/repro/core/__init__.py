"""Curator — the hybrid compliant health-record store.

The paper's conclusion calls for "a hybrid model suited for trustworthy
regulatory-compliant health-care record storage" combining the
strengths of the surveyed systems.  :class:`CuratorStore` is that
hybrid:

===========================  =================================================
Requirement                  Mechanism
===========================  =================================================
Confidentiality (outsider)   per-record AEAD encryption; keys wrapped under an
                             HSM-held master key
Confidentiality (insider)    trapdoor index + ciphertext-only devices; raw
                             device access yields nothing decryptable
Access control               RBAC + purposes + treating relationship + consent
                             + break-glass, every decision audited
Integrity                    AEAD tags, content digests, hash-linked version
                             chains
Corrections                  append-only version chains over WORM objects
Trustworthy index            encrypted, padded, MAC'd posting lists with
                             secure deletion
Trustworthy audit            hash-chained log, Merkle-anchored to an external
                             witness
Retention                    per-record-type terms from the regulation
                             schedules, enforced by the WORM layer
Secure deletion              disposition workflow -> key shredding + extent
                             overwrite + index forgetting + coordinated
                             backup-key shredding
Verifiable migration         signed Merkle manifests, media refresh workflow
Provenance                   signed custody chains + provenance DAG
Backup                       encrypted off-site snapshots, verified restore
===========================  =================================================
"""

from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.core.lifecycle import ArchiveLifecycle

__all__ = ["CuratorConfig", "CuratorStore", "ArchiveLifecycle"]
