"""Actor attribution for the engine's public API.

Every PHI-touching operation on :class:`~repro.core.engine.CuratorStore`
takes a keyword-only ``actor_id`` naming the principal the operation is
performed *as* — the identity that authorization decides on and the
audit trail attributes to.  The old surface let several operations run
unattributed (``dispose()``, ``search(term)`` defaulting to
``"system"``), which both breaks the attribution model (every PHI
operation must carry an accountable principal) and blocks a generic
multi-shard router from dispatching the whole API uniformly.

The defaults are gone from the engine.  For one release, legacy call
shapes keep working behind the :func:`attributed` decorator:

* an omitted ``actor_id`` falls back to the ``"system"`` principal and
  emits a :class:`DeprecationWarning`;
* an actor (or other tail argument) passed *positionally* where the new
  signature is keyword-only is mapped onto its keyword and warned about
  the same way.

New code — and everything inside this repository — passes ``actor_id``
by keyword; the shims exist only so external callers get one release of
warnings instead of an immediate ``TypeError``.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Any, Callable


class _Unattributed:
    """Sentinel marking an ``actor_id`` the caller never supplied."""

    def __repr__(self) -> str:  # readable in signatures and tracebacks
        return "<unattributed>"


UNATTRIBUTED = _Unattributed()

FALLBACK_ACTOR = "system"
"""The principal legacy unattributed calls are attributed to."""


def attributed(*legacy_tail: str) -> Callable:
    """Decorate a method whose ``actor_id`` became keyword-only.

    ``legacy_tail`` names, in order, the parameters the *old* signature
    accepted positionally after the still-positional ones (e.g. the old
    ``read(record_id, actor_id, purpose)``).  The wrapper:

    1. maps deprecated positional tail arguments onto their keywords
       (with a :class:`DeprecationWarning`);
    2. defaults a missing/``UNATTRIBUTED`` ``actor_id`` to
       :data:`FALLBACK_ACTOR` (with a :class:`DeprecationWarning`);
    3. calls the wrapped method, which can assume ``actor_id`` is a
       real string.

    The wrapped method must declare ``actor_id`` keyword-only with
    default :data:`UNATTRIBUTED`.
    """

    def decorate(method: Callable) -> Callable:
        signature = inspect.signature(method)
        positional = [
            name
            for name, parameter in signature.parameters.items()
            if parameter.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        ]
        max_positional = len(positional)  # includes self

        @functools.wraps(method)
        def wrapper(*args: Any, **kwargs: Any):
            if len(args) > max_positional:
                extra = args[max_positional:]
                args = args[:max_positional]
                if len(extra) > len(legacy_tail):
                    raise TypeError(
                        f"{method.__qualname__}() takes at most "
                        f"{max_positional - 1} positional arguments plus the "
                        f"deprecated {legacy_tail} tail; got "
                        f"{len(extra) - len(legacy_tail)} extra"
                    )
                for name, value in zip(legacy_tail, extra):
                    if name in kwargs:
                        raise TypeError(
                            f"{method.__qualname__}() got multiple values "
                            f"for argument {name!r}"
                        )
                    kwargs[name] = value
                warnings.warn(
                    f"passing {', '.join(legacy_tail[: len(extra)])} "
                    f"positionally to {method.__qualname__}() is deprecated; "
                    f"pass keyword arguments",
                    DeprecationWarning,
                    stacklevel=2,
                )
            if isinstance(kwargs.get("actor_id", UNATTRIBUTED), _Unattributed):
                kwargs["actor_id"] = FALLBACK_ACTOR
                warnings.warn(
                    f"calling {method.__qualname__}() without actor_id is "
                    f"deprecated; every PHI operation must name the acting "
                    f"principal (falling back to {FALLBACK_ACTOR!r})",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return method(*args, **kwargs)

        return wrapper

    return decorate
