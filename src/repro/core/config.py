"""Configuration for a Curator deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.retention.policy import STANDARD_POLICY, RetentionPolicy
from repro.util.clock import Clock, WallClock


@dataclass
class CuratorConfig:
    """Everything a :class:`~repro.core.engine.CuratorStore` needs.

    ``master_key`` models key material held in an HSM: the engine uses
    it but never writes it to any device, and
    :meth:`~repro.core.engine.CuratorStore.insider_keys` returns {}.
    """

    master_key: bytes
    site_id: str = "hospital-A"
    clock: Clock = field(default_factory=WallClock)
    retention_policy: RetentionPolicy = field(default_factory=lambda: STANDARD_POLICY)
    device_capacity: int = 1 << 24
    shredder_passes: int = 3
    anchor_every_events: int = 64
    witness_count: int = 1  # >1 builds a witness quorum (majority threshold)
    signature_bits: int = 768  # simulation-scale; see crypto.rsa docs
    auto_register_authors: bool = True
    read_cache_size: int = 128  # decrypted-read LRU entries; 0 disables
    # Incremental-verification knobs (see DESIGN.md "Verification cost
    # model"): sealed-prefix spot-check sample per incremental audit
    # verify, forced full-rescan cadence, and the rotating clean-object
    # sample per incremental integrity pass.
    audit_spot_checks: int = 16
    audit_full_rescan_every: int = 64
    integrity_clean_sample: int = 8
    # Cold-tier knobs: capacity of the dedicated cold device, how many
    # verified member plaintexts the ColdStore may cache (0 disables),
    # and the rotating clean-member sample per incremental cold verify.
    cold_device_capacity: int = 1 << 24
    cold_cache_size: int = 16
    cold_clean_sample: int = 8
    # An HSM-held anchor-signing keypair shared across engines.  None
    # means each engine generates its own (the single-site default); a
    # cluster passes one keypair so all shards sign anchors under the
    # same site identity without paying N keygens.
    signing_keypair: object | None = None
    # The compiled policy ruleset the engine decides with.  None means
    # compile the default ruleset from the RBAC tables at engine
    # construction; a cluster compiles once and shares the tuple across
    # every shard (rules are immutable — each engine binds its own
    # consent/break-glass registries as the environment).
    policy_rules: tuple | None = None

    def __post_init__(self) -> None:
        if len(self.master_key) != 32:
            raise ConfigurationError("master_key must be 32 bytes")
        if not self.site_id:
            raise ConfigurationError("site_id must not be empty")
        if self.anchor_every_events < 1:
            raise ConfigurationError("anchor_every_events must be >= 1")
        if self.witness_count < 1:
            raise ConfigurationError("witness_count must be >= 1")
        if self.read_cache_size < 0:
            raise ConfigurationError("read_cache_size must be >= 0")
        if self.audit_spot_checks < 0:
            raise ConfigurationError("audit_spot_checks must be >= 0")
        if self.audit_full_rescan_every < 1:
            raise ConfigurationError("audit_full_rescan_every must be >= 1")
        if self.integrity_clean_sample < 0:
            raise ConfigurationError("integrity_clean_sample must be >= 0")
        if self.cold_device_capacity < 1:
            raise ConfigurationError("cold_device_capacity must be >= 1")
        if self.cold_cache_size < 0:
            raise ConfigurationError("cold_cache_size must be >= 0")
        if self.cold_clean_sample < 0:
            raise ConfigurationError("cold_clean_sample must be >= 0")
