"""Long-horizon archive lifecycle orchestration.

Drives a :class:`~repro.core.engine.CuratorStore` through simulated
decades: media age out and trigger verified refresh migrations, backups
run on schedule, retention sweeps feed the disposition workflow.  This
is the machinery of experiment E7 (30-year retention) packaged as an
operations API a deployment would actually run from cron.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.archive import DemotionPolicy
from repro.core.engine import CuratorStore
from repro.util.clock import SECONDS_PER_YEAR, SimulatedClock


@dataclass
class LifecycleReport:
    """What happened during one simulated horizon."""

    years_simulated: float = 0.0
    media_refreshes: int = 0
    backups_taken: int = 0
    records_disposed: int = 0
    disposal_certificates: int = 0
    integrity_checks_passed: int = 0
    integrity_failures: list[str] = field(default_factory=list)
    records_demoted: int = 0
    segments_written: int = 0


class ArchiveLifecycle:
    """Scheduled operations over a Curator archive."""

    def __init__(
        self,
        store: CuratorStore,
        clock: SimulatedClock,
        media_refresh_years: float = 5.0,
        backup_every_years: float = 1.0,
        demotion_policy: DemotionPolicy | None = None,
    ) -> None:
        self._store = store
        self._clock = clock
        self._refresh_years = media_refresh_years
        self._backup_years = backup_every_years
        self._demotion_policy = demotion_policy

    def run_years(
        self,
        years: float,
        step_years: float = 0.5,
        dispose_expired: bool = True,
    ) -> LifecycleReport:
        """Advance simulated time, running scheduled operations.

        Each step: advance the clock, back up if due, refresh media if
        the active medium is past service life, demote records the
        tiering policy says have gone cold, verify integrity, and
        (optionally) dispose records past retention.
        """
        report = LifecycleReport()
        elapsed = 0.0
        next_backup = self._backup_years
        while elapsed < years:
            step = min(step_years, years - elapsed)
            self._clock.advance(step * SECONDS_PER_YEAR)
            elapsed += step
            if elapsed >= next_backup:
                self._store.create_backup(actor_id="archive-lifecycle")
                report.backups_taken += 1
                next_backup += self._backup_years
            if self._store.medium.age_years() > self._refresh_years:
                self._store.refresh_media()
                report.media_refreshes += 1
            if self._demotion_policy is not None:
                segments_before = self._store.tier_stats()["cold_segments"]
                demoted = self._store.demotion_sweep(
                    self._demotion_policy, actor_id="archive-lifecycle"
                )
                report.records_demoted += len(demoted)
                report.segments_written += (
                    self._store.tier_stats()["cold_segments"] - segments_before
                )
            integrity = self._store.verify_integrity()
            if integrity.violations:
                report.integrity_failures.extend(integrity.violations)
            else:
                report.integrity_checks_passed += 1
            if dispose_expired:
                for record_id in self._store.retention_sweep():
                    certificates = self._store.dispose(
                        record_id, actor_id="archive-lifecycle"
                    )
                    report.records_disposed += 1
                    report.disposal_certificates += len(certificates)
        report.years_simulated = elapsed
        return report
