"""The Curator storage engine.

Composition (bottom-up): a media pool provides the active device; a
WORM store holds one write-once object per *record version*, each AEAD-
encrypted under its own per-record key; a trustworthy index covers the
current versions; every operation (including denials) lands in the
hash-chained audit log, periodically anchored to an external witness;
custody chains record origin and transfers; retention terms from the
regulation schedules gate disposal, which runs the identify→approve→
execute workflow and ends in key shredding + extent overwrite + index
forgetting.

Trust model: the engine process and the master key (HSM) are trusted;
every byte on every device is not — the insider adversary reads and
writes devices at will, and all guarantees are stated against that.

The engine implements the common
:class:`~repro.baselines.interface.StorageModel` interface so the E1
harness evaluates it exactly as it evaluates the baselines, plus the
richer native API (versions, break-glass, disposition, backup, media
refresh) the examples and experiments use.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.access.breakglass import BreakGlassController
from repro.access.policies import ConsentRegistry, minimum_necessary_view
from repro.access.principals import User
from repro.access.rbac import Permission, Purpose, Role
from repro.archive import (
    ColdStore,
    DemotionPolicy,
    cold_associated_data,
    compress_member,
    decompress_member,
)
from repro.audit.anchors import AnchorWitness, WitnessQuorum, publish_anchor
from repro.audit.checkpoint import CheckpointStore
from repro.audit.events import AuditAction, AuditEvent
from repro.audit.log import AuditLog
from repro.audit.query import AuditQuery
from repro.backup.manager import BackupManager, RestoreReport
from repro.backup.vault import BackupVault
from repro.baselines.interface import StorageModel, VerificationReport
from repro.core.config import CuratorConfig
from repro.crypto.aead import AeadCiphertext
from repro.crypto.aead import encrypt_many as aead_encrypt_many
from repro.crypto.keys import KeyHandle, KeyStore
from repro.crypto.ed25519 import purge_ed25519_memo
from repro.crypto.signatures import Signer, TrustStore, purge_signature_memo
from repro.crypto.hashing import sha256
from repro.errors import (
    AccessDeniedError,
    IntegrityError,
    MigrationError,
    RecordError,
    RecordNotFoundError,
)
from repro.index.secure_deletion import SecureDeletionIndex
from repro.index.trustworthy import TrustworthyIndex
from repro.crypto.kdf import derive_key
from repro.migration.bundle import AttachmentBundle, PatientBundle, RecordBundle
from repro.migration.engine import MigrationEngine
from repro.migration.manifest import build_entries_manifest
from repro.policy import Decision, PolicyContext, PolicyEngine, PolicyEnv
from repro.policy.compiler import compile_default_ruleset, default_purpose_for
from repro.provenance.chain import CustodyRegistry
from repro.provenance.graph import ProvenanceGraph
from repro.records.model import HealthRecord
from repro.records.phi import deidentify
from repro.records.versioning import RecordVersion, VersionChain
from repro.retention.disposition import DispositionCertificate, DispositionWorkflow
from repro.retention.shredder import SecureShredder
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.media import MediaPool, Medium
from repro.util.encoding import canonical_bytes, canonical_loads
from repro.util.metrics import METRICS
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore

#: WORM object ids under this prefix hold a migrated patient's imported
#: audit-chain segment (plaintext, like the audit device itself) so the
#: accounting-of-disclosures history survives an engine restart.
_SEGMENT_PREFIX = "~segment/"


def _version_object_id(record_id: str, version: int) -> str:
    return f"{record_id}@v{version}"


def _record_id_of(object_id: str) -> str:
    """The owning record of any WORM object id (version or attachment
    chunk: ``rec@vN`` / ``rec#att/<attachment>/chunk-N``)."""
    if "#att/" in object_id:
        return object_id.split("#att/")[0]
    return object_id.split("@v")[0]


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`CuratorStore.recover_from_devices` rebuilt.

    ``disposed`` are records whose data key was shredded before the
    crash — cryptographically deleted, correctly unrecoverable.
    ``damaged`` are records whose key survives but whose versions no
    longer decrypt/verify (torn or tampered data).  ``orphaned`` are
    WORM objects the directory cannot serve: version objects with no
    escrowed key, and attachment chunks whose in-memory manifest died
    with the process (their bytes stay disposition-managed)."""

    records_recovered: int
    versions_recovered: int
    audit_events: int
    disposed: tuple[str, ...] = ()
    damaged: tuple[str, ...] = ()
    orphaned: tuple[str, ...] = ()
    #: Records whose audit log carries a migration export marker with no
    #: later import: their custody moved to another shard, so the
    #: recovered bytes stay tombstoned rather than resurrecting a second
    #: home for the patient.
    migrated: tuple[str, ...] = ()
    #: Records whose demotion marker says the cold tier is authoritative
    #: and whose cold member verified at recovery.
    cold_records: tuple[str, ...] = ()


class CuratorStore(StorageModel):
    """The hybrid compliant store (see package docstring)."""

    model_name = "curator"

    def __init__(self, config: CuratorConfig) -> None:
        self._config = config
        self._clock = config.clock
        # crypto / keys — the keystore escrows every wrapped key to its
        # own device so a restarted engine can rebuild the key hierarchy
        # from devices + the HSM-held master key (see recover_from_devices)
        self._keystore = KeyStore(
            config.master_key,
            clock=self._clock,
            device=MemoryDevice("curator-keys", config.device_capacity),
        )
        self._signer = Signer(
            config.site_id,
            keypair=config.signing_keypair,
            bits=config.signature_bits,
        )
        self._trust = TrustStore()
        self._trust.add(self._signer.verifier())
        # media + worm
        self._media_pool = MediaPool(
            clock=self._clock, default_capacity=config.device_capacity
        )
        self._medium: Medium = self._media_pool.provision()
        self._worm = WormStore(device=self._medium.device, clock=self._clock)
        # index
        index_key = derive_key(config.master_key, "curator/index")
        self._index = SecureDeletionIndex(
            TrustworthyIndex(index_key, device=MemoryDevice("curator-idx", config.device_capacity))
        )
        # audit — the checkpoint store persists verified watermarks on
        # its own device, MAC-sealed under a key derived from the HSM-
        # held master key (forge-proof against the raw-device insider)
        self._checkpoints = CheckpointStore(
            device=MemoryDevice("curator-ckpt", config.device_capacity),
            key=derive_key(config.master_key, "curator/audit-checkpoint"),
            clock=self._clock,
        )
        self._audit = AuditLog(
            device=MemoryDevice("curator-audit", config.device_capacity),
            clock=self._clock,
            checkpoints=self._checkpoints,
            spot_checks=config.audit_spot_checks,
            full_rescan_every=config.audit_full_rescan_every,
        )
        self._witnesses = [
            AnchorWitness(self._signer.verifier())
            for _ in range(config.witness_count)
        ]
        self._witness = self._witnesses[0]
        self._quorum = (
            WitnessQuorum(self._witnesses, threshold=config.witness_count // 2 + 1)
            if config.witness_count > 1
            else None
        )
        # access control — one declarative policy engine decides every
        # allow-or-deny (RBAC, consent, treating relationship, break-
        # glass) with an explainable trace; the registries below only
        # answer facts for its conditions
        self._users: dict[str, User] = {}
        self._consent = ConsentRegistry()
        self._breakglass = BreakGlassController(clock=self._clock)
        self._policy = PolicyEngine(
            config.policy_rules or compile_default_ruleset(),
            env=PolicyEnv(
                consent=self._consent,
                breakglass=self._breakglass,
                clock=self._clock,
            ),
        )
        # provenance
        self._custody = CustodyRegistry(self._trust)
        self._provenance = ProvenanceGraph()
        self._provenance.add_custodian(config.site_id)
        # retention / disposal — destruction decisions purge the policy
        # decision cache (a shredded record's cached allows must die
        # with it)
        self._shredder = SecureShredder(self._keystore, config.shredder_passes)
        self._shredder.bind_policy(self._policy)
        # Derived-material memos die with every shred too: the verifier's
        # aggregated-signature root memo and the ed25519 key-expansion
        # memo both regenerate from material a destruction may cover.
        self._shredder.bind_cache(purge_signature_memo)
        self._shredder.bind_cache(purge_ed25519_memo)
        self._disposition = DispositionWorkflow(self._worm, self._shredder, clock=self._clock)
        # backup
        self._vault = BackupVault(f"{config.site_id}-offsite")
        self._backup = BackupManager(self._vault, clock=self._clock)
        # record directory (trusted controller metadata, off-device)
        self._chains: dict[str, VersionChain] = {}
        self._keys: dict[str, KeyHandle] = {}
        self._attachments: dict[str, dict[str, Any]] = {}
        self._disposed: set[str] = set()
        # Audit-chain segments imported with migrated patients: the
        # events predate this shard's own log but still belong in the
        # patient's accounting of disclosures.  Each maps patient_id ->
        # {"events": [...], "delta": [...], "attestation", "source"};
        # the durable copy lives in WORM objects under _SEGMENT_PREFIX.
        self._foreign_segments: dict[str, dict[str, Any]] = {}
        self._segment_objects: dict[str, list[str]] = {}
        self._authenticator = None
        # Decrypted-and-verified current versions (record_id -> (version
        # number, record)).  Authorization and audit always run; only
        # the WORM fetch + AEAD decrypt are skipped on a hit, and every
        # path that changes or destroys a record's current version
        # purges its entry.
        self._read_cache: OrderedDict[str, tuple[int, HealthRecord]] = OrderedDict()
        # Records touched since the last full verify_integrity — the
        # incremental integrity path re-chains these plus a rotating
        # sample of clean records.
        self._dirty_records: set[str] = set()
        self._integrity_cursor = 0
        # cold tier: compacted segments on their own device.  Decrypted
        # member plaintexts cached there die with every shred, like the
        # hot read cache and the crypto memos.
        self._cold = ColdStore(
            device=MemoryDevice("curator-cold", config.cold_device_capacity),
            clock=self._clock,
            cache_size=config.cold_cache_size,
        )
        self._shredder.bind_cache(self._cold.purge_cache)
        # Records whose authoritative copy is cold (warm extents are
        # expatriated tombstones until recall re-admits them).
        self._cold_records: set[str] = set()
        # Last authorized touch per record — what the demotion policy's
        # idleness rule evaluates.  Honestly process-memory: a recovered
        # engine starts everything idle.
        self._last_access: dict[str, float] = {}
        # Populated only on engines built by recover_from_devices().
        self.recovery_report: RecoveryReport | None = None

    # ------------------------------------------------------------------
    # principals
    # ------------------------------------------------------------------

    def register_user(self, user: User) -> None:
        """Enroll a workforce member."""
        self._users[user.user_id] = user

    def principal(self, actor_id: str) -> User | None:
        """The enrolled workforce member behind *actor_id* (``None`` if
        unknown here) — lets a frontend replicate enrollment."""
        return self._resolve_user(actor_id)

    def _resolve_user(self, actor_id: str) -> User | None:
        if actor_id == "system":
            from repro.access.principals import SYSTEM_USER

            return SYSTEM_USER
        return self._users.get(actor_id)

    def _auto_register_author(self, author_id: str, patient_id: str) -> None:
        """Documenting care establishes the treating relationship: the
        application layer enrolls the author as a clinician treating the
        record's patient (config-gated)."""
        if not self._config.auto_register_authors:
            return
        existing = self._users.get(author_id)
        if existing is None:
            self._users[author_id] = User.make(
                author_id, author_id, [Role.PHYSICIAN], treating=[patient_id]
            )
        elif patient_id not in existing.treating:
            self._users[author_id] = User.make(
                author_id,
                existing.name,
                set(existing.roles),
                existing.department,
                set(existing.treating) | {patient_id},
            )

    def _authorize(
        self,
        actor_id: str,
        permission: Permission,
        patient_id: str,
        purpose: Purpose,
        subject_id: str,
    ) -> User:
        """Decide + audit.  One call into the declarative policy engine
        decides the whole composite (system override, RBAC, consent
        binding, break-glass fallback); the decision trace — every rule
        consulted and the deciding rule — lands in the audit chain on
        every outcome.  Denials are breach signals: they are logged as
        structured ``ACCESS_DENIED`` events *before* the typed
        exception is raised."""
        user = self._resolve_user(actor_id)
        if user is None:
            self._audit.append(
                AuditAction.ACCESS_DENIED,
                actor_id,
                subject_id,
                {"reason": "unknown principal", "permission": permission.value},
            )
            raise AccessDeniedError(f"unknown principal {actor_id!r}")
        decision = self._policy.decide(
            user,
            permission,
            subject_id,
            PolicyContext(
                purpose=purpose,
                patient_id=patient_id,
                own_record=(user.user_id == patient_id),
            ),
        )
        if decision.allowed and decision.emergency:
            self._audit.append(
                AuditAction.EMERGENCY_ACCESS, actor_id, subject_id,
                {"permission": permission.value, "rule_id": decision.rule_id,
                 "trace": decision.trace_dicts()},
            )
            return user
        if not decision.allowed:
            self._audit.append(
                AuditAction.ACCESS_DENIED, actor_id, subject_id,
                {"reason": decision.reason, "permission": permission.value,
                 "rule_id": decision.rule_id, "trace": decision.trace_dicts()},
            )
            raise decision.exception()
        self._audit.append(
            AuditAction.ACCESS_GRANTED, actor_id, subject_id,
            {"rule": decision.reason, "permission": permission.value,
             "rule_id": decision.rule_id, "trace": decision.trace_dicts()},
        )
        return user

    @property
    def policy(self) -> PolicyEngine:
        """The engine's policy evaluator (the single decision path)."""
        return self._policy

    def explain_access(
        self,
        actor_id: str,
        permission: Permission,
        record_id: str = "",
        purpose: Purpose | None = None,
    ) -> Decision:
        """Evaluate (without auditing, without raising) what would
        happen if *actor_id* attempted *permission* — the ops surface
        behind ``repro policy explain``."""
        user = self._resolve_user(actor_id)
        if user is None:
            return Decision(
                allowed=False,
                rule_id="default:deny",
                reason=f"unknown principal {actor_id!r}",
                action=permission.value,
                resource=record_id,
            )
        patient_id = ""
        if record_id and record_id in self._chains:
            patient_id = self._chains[record_id].latest().record.patient_id
        return self._policy.decide(
            user,
            permission,
            record_id,
            PolicyContext(
                purpose=purpose or self._default_purpose(actor_id),
                patient_id=patient_id,
                own_record=(user.user_id == patient_id and patient_id != ""),
            ),
        )

    @property
    def authenticator(self):
        """The deployment's authentication broker (lazily created)."""
        if self._authenticator is None:
            from repro.access.sessions import Authenticator

            self._authenticator = Authenticator(clock=self._clock)
        return self._authenticator

    def enroll_user(self, user: User) -> bytes:
        """Register a workforce member AND enroll them for
        challenge-response authentication; returns their token secret."""
        self.register_user(user)
        return self.authenticator.enroll(user.user_id)

    def read_with_session(self, session, record_id: str) -> HealthRecord:
        """Session-authenticated read: validate the presented session
        (auditing failures), then read as the authenticated user."""
        try:
            user_id = self.authenticator.validate(session)
        except AccessDeniedError as exc:
            self._audit.append(
                AuditAction.ACCESS_DENIED,
                getattr(session, "user_id", "unknown"),
                record_id,
                {"reason": f"session rejected: {exc}"},
            )
            raise
        return self.read(record_id, actor_id=user_id)

    def break_glass(self, actor_id: str, patient_id: str, justification: str):
        """Emergency access: grant + mandatory audit event."""
        user = self._resolve_user(actor_id)
        if user is None:
            raise AccessDeniedError(f"unknown principal {actor_id!r}")
        grant = self._breakglass.invoke(user, patient_id, justification)
        self._audit.append(
            AuditAction.EMERGENCY_ACCESS, actor_id, patient_id,
            {"grant_id": grant.grant_id, "justification": justification},
        )
        return grant

    def revoke_break_glass(self, grant_id: str):
        """Revoke an emergency grant and drop any cached plaintext the
        grantee's reads pinned in memory — after revocation, reaching a
        record again must run the full decrypt-under-authorization path.
        """
        grant = self._breakglass.revoke(grant_id)
        for record_id in self.records_of_patient(grant.patient_id):
            self._read_cache.pop(record_id, None)
        self._audit.append(
            AuditAction.EMERGENCY_ACCESS, grant.user_id, grant.patient_id,
            {"grant_id": grant.grant_id, "revoked": True},
        )
        return grant

    @property
    def breakglass(self) -> BreakGlassController:
        return self._breakglass

    @property
    def consent(self) -> ConsentRegistry:
        return self._consent

    # ------------------------------------------------------------------
    # version persistence plumbing
    # ------------------------------------------------------------------

    def _seal_version(self, version: RecordVersion, handle: KeyHandle) -> bytes:
        object_id = _version_object_id(version.record.record_id, version.version_number)
        cipher = self._keystore.cipher_for(handle)
        box = cipher.encrypt(
            canonical_bytes(version.to_dict()),
            associated_data=object_id.encode("utf-8"),
        )
        return box.to_bytes()

    def _seal_versions(
        self, pairs: list[tuple[RecordVersion, KeyHandle]]
    ) -> list[bytes]:
        """Seal many versions in one vectorized AEAD pass — each under
        its own data key, with byte-format identical to
        :meth:`_seal_version` (fresh random nonce, same associated
        data)."""
        items = []
        for version, handle in pairs:
            object_id = _version_object_id(
                version.record.record_id, version.version_number
            )
            items.append(
                (
                    self._keystore.cipher_for(handle),
                    canonical_bytes(version.to_dict()),
                    object_id.encode("utf-8"),
                )
            )
        return [box.to_bytes() for box in aead_encrypt_many(items)]

    def _open_version(self, record_id: str, version_number: int) -> RecordVersion:
        if record_id in self._cold_records:
            # Read-through recall: the cold member is verified, its
            # versions repatriated to warm WORM extents, and the read
            # below proceeds against the warm tier.
            self._recall(record_id)
        object_id = _version_object_id(record_id, version_number)
        handle = self._keys[record_id]
        blob = self._worm.get(object_id)
        cipher = self._keystore.cipher_for(handle)
        plaintext = cipher.decrypt(
            AeadCiphertext.from_bytes(blob),
            associated_data=object_id.encode("utf-8"),
        )
        return RecordVersion.from_dict(canonical_loads(plaintext))

    def _put_version(self, version: RecordVersion, handle: KeyHandle) -> None:
        record = version.record
        object_id = _version_object_id(record.record_id, version.version_number)
        term = self._config.retention_policy.term_for(
            record.record_type, self._clock.now()
        )
        meta = self._worm.put(object_id, self._seal_version(version, handle), retention=term)
        self._disposition.register_key_handle(object_id, handle)
        self._provenance.add_object(object_id)
        self._provenance.record_custody(
            object_id, self._config.site_id, start=self._clock.now()
        )
        if version.version_number > 0:
            self._provenance.record_derivation(
                object_id,
                _version_object_id(record.record_id, version.version_number - 1),
                reason=version.reason,
            )
        self._custody.record_origin(
            object_id,
            self._signer,
            meta.content_digest,
            self._clock.now(),
            reason=version.reason,
        )
        self._maybe_anchor()

    def _maybe_anchor(self) -> None:
        latest = self._witness.latest()
        unanchored = len(self._audit) - (latest.log_size if latest else 0)
        if unanchored >= self._config.anchor_every_events:
            # The anchor commits every event under its Merkle root to an
            # external witness, so events buffered in an open audit batch
            # must hit the device first — otherwise a crash would leave
            # the witness attesting to events storage never saw, and an
            # honest recovery would read as truncation.
            self._audit.flush_batch()
            if self._quorum is not None:
                anchor = self._quorum.publish(self._audit, self._signer, self._clock.now())
            else:
                anchor = publish_anchor(self._audit, self._signer, self._clock.now())
                self._witness.receive(anchor, self._audit)
            self._audit.append(
                AuditAction.ANCHOR_PUBLISHED, "system", "audit-log",
                {"size": anchor.log_size, "witnesses": len(self._witnesses)},
            )

    def _chain_for(self, record_id: str) -> VersionChain:
        chain = self._chains.get(record_id)
        if chain is None:
            raise RecordNotFoundError(f"no record {record_id}")
        if record_id in self._disposed:
            raise RecordNotFoundError(f"record {record_id} was disposed")
        return chain

    # ------------------------------------------------------------------
    # cold tier: demotion, recall, member plumbing
    # ------------------------------------------------------------------

    def _member_plaintext(self, record_id: str, versions: list[RecordVersion]) -> bytes:
        return canonical_bytes(
            {
                "record_id": record_id,
                "versions": [version.to_dict() for version in versions],
            }
        )

    def _open_cold_versions(
        self, record_id: str, *, use_cache: bool = True
    ) -> list[RecordVersion]:
        """Decrypt, decompress, and proof-check a cold member WITHOUT
        repatriating it (verification must not recall the archive)."""
        plaintext = self._cold.cached_plaintext(record_id) if use_cache else None
        if plaintext is None:
            segment = self._cold.segment_of(record_id)
            sealed = self._cold.read_sealed(record_id)
            # the sealed bytes must chain back to the trusted Merkle
            # root before any of them are decrypted
            self._cold.verify_sealed(record_id, sealed)
            cipher = self._keystore.cipher_for(self._keys[record_id])
            compressed = cipher.decrypt(
                AeadCiphertext.from_bytes(sealed),
                associated_data=cold_associated_data(
                    segment.segment_id, record_id
                ),
            )
            plaintext = decompress_member(compressed)
            self._cold.cache_plaintext(record_id, plaintext)
        payload = canonical_loads(plaintext)
        if payload.get("record_id") != record_id:
            raise IntegrityError(
                f"cold member for {record_id} carries the wrong record"
            )
        return [RecordVersion.from_dict(data) for data in payload["versions"]]

    def _stored_versions(self, record_id: str) -> list[RecordVersion]:
        """Every version of a record from its authoritative tier,
        decrypted and digest-checked (non-mutating)."""
        if record_id in self._cold_records:
            return self._open_cold_versions(record_id)
        chain = self._chains[record_id]
        return [self._open_version(record_id, n) for n in range(len(chain))]

    def _version_term(self, version: RecordVersion) -> RetentionTerm:
        return self._config.retention_policy.term_for(
            version.record.record_type, version.created_at
        )

    def _recall(self, record_id: str, *, actor_id: str = "system") -> None:
        """Repatriate a cold record to the warm tier: verified member
        read (sealed digest + inclusion proof + chain re-link), then
        each version re-sealed into the WORM store under its original
        retention term.  The RECORD_RECALLED marker lands *after* the
        warm write: a crash between leaves the cold member
        authoritative and recovery simply re-expatriates the partial
        warm copy."""
        with METRICS.timer("tier_recall_ns"):
            segment = self._cold.segment_of(record_id)
            # never recall from the plaintext cache: what repatriates to
            # the warm tier must be the device bytes, freshly verified
            # against the trusted manifest and Merkle root
            versions = self._open_cold_versions(record_id, use_cache=False)
            VersionChain.from_versions(record_id, versions)
            handle = self._keys[record_id]
            sealed = self._seal_versions([(v, handle) for v in versions])
            for version, blob in zip(versions, sealed):
                object_id = _version_object_id(record_id, version.version_number)
                self._worm.put(object_id, blob, retention=self._version_term(version))
                self._disposition.register_key_handle(object_id, handle)
            self._cold_records.discard(record_id)
            self._cold.mark_repatriated(record_id)
            # fresh device bytes: re-verify on the next incremental pass
            self._dirty_records.add(record_id)
            self._audit.append(
                AuditAction.RECORD_RECALLED, actor_id, record_id,
                {"segment": segment.segment_id, "versions": len(versions)},
            )
            self._maybe_anchor()
        METRICS.incr("tier_cold_recalls")
        METRICS.incr("tier_recalled_versions", len(versions))

    def demote_records(
        self, record_ids: list[str], *, actor_id: str = "archive-tiering"
    ) -> list[str]:
        """Compact *record_ids* into one cold segment.

        Commit protocol: the warm copies are chain-verified first (a
        segment must never launder tampered data into a fresh trust
        root), the segment frame is written, then per record a
        RECORD_DEMOTED marker — the durable commit point recovery
        replays — and only then are the warm extents expatriated.
        Records under litigation hold, already cold, or disposed are
        skipped."""
        eligible: list[str] = []
        for record_id in record_ids:
            if (
                record_id not in self._chains
                or record_id in self._disposed
                or record_id in self._cold_records
            ):
                continue
            chain = self._chains[record_id]
            if any(
                self._worm.retention.holds_on(_version_object_id(record_id, n))
                for n in range(len(chain))
            ):
                continue
            eligible.append(record_id)
        if not eligible:
            return []
        segment_id = self._cold.next_segment_id()
        staged: list[tuple[str, int, float, tuple]] = []
        seal_items = []
        for record_id in eligible:
            chain = self._chains[record_id]
            versions = [self._open_version(record_id, n) for n in range(len(chain))]
            VersionChain.from_versions(record_id, versions)
            plaintext = self._member_plaintext(record_id, versions)
            # one provenance entry per version, in order — the version
            # object ids are derivable so only the warm tier's original
            # digests and write times are carried
            provenance = []
            expires_at = 0.0
            for n, version in enumerate(versions):
                meta = self._worm.metadata(_version_object_id(record_id, n))
                provenance.append(
                    {
                        "content_digest": meta.content_digest,
                        "written_at": meta.written_at,
                    }
                )
                expires_at = max(expires_at, self._version_term(version).expires_at)
            seal_items.append(
                (
                    self._keystore.cipher_for(self._keys[record_id]),
                    compress_member(plaintext),
                    cold_associated_data(segment_id, record_id),
                )
            )
            staged.append(
                (record_id, len(versions), expires_at, tuple(provenance))
            )
        boxes = aead_encrypt_many(seal_items)
        members = [
            (record_id, box.to_bytes(), version_count, expires_at, provenance)
            for (record_id, version_count, expires_at, provenance), box
            in zip(staged, boxes)
        ]
        segment = self._cold.write_segment(segment_id, members)
        root_hex = segment.manifest.merkle_root.hex()[:16]
        for record_id, version_count, _, _ in staged:
            # marker first (the commit point), then tombstone the warm
            # extents — a crash in between is healed by recovery's
            # marker replay re-expatriating them
            self._audit.append(
                AuditAction.RECORD_DEMOTED, actor_id, record_id,
                {
                    "segment": segment_id,
                    "versions": version_count,
                    "root": root_hex,
                },
            )
            for n in range(version_count):
                self._worm.expatriate(_version_object_id(record_id, n))
            self._cold_records.add(record_id)
            self._read_cache.pop(record_id, None)
        self._maybe_anchor()
        METRICS.incr("tier_demotions", len(staged))
        return [record_id for record_id, *_ in staged]

    def demotion_candidates(self, policy: DemotionPolicy) -> list[str]:
        """Live warm records the policy says belong in the cold tier."""
        now = self._clock.now()
        candidates = []
        for record_id in self.record_ids():
            if record_id in self._cold_records:
                continue
            chain = self._chains[record_id]
            latest = chain.latest()
            if any(
                self._worm.retention.holds_on(_version_object_id(record_id, n))
                for n in range(len(chain))
            ):
                continue
            if policy.eligible(
                now=now,
                created_at=latest.created_at,
                last_access=self._last_access.get(record_id, latest.created_at),
            ):
                candidates.append(record_id)
        return candidates

    def demotion_sweep(
        self,
        policy: DemotionPolicy | None = None,
        *,
        actor_id: str = "archive-tiering",
    ) -> list[str]:
        """Evaluate the demotion policy and compact every eligible
        record into cold segments (one per ``max_segment_records``)."""
        policy = policy or DemotionPolicy()
        demoted: list[str] = []
        for batch in policy.batches(self.demotion_candidates(policy)):
            demoted += self.demote_records(batch, actor_id=actor_id)
        return demoted

    @property
    def cold(self) -> ColdStore:
        return self._cold

    def cold_record_ids(self) -> list[str]:
        return sorted(self._cold_records)

    def tier_stats(self) -> dict[str, int]:
        """Per-tier occupancy and on-device footprint."""
        live = set(self.record_ids())
        return {
            "hot_records": len(self._read_cache),
            "warm_records": len(live - self._cold_records),
            "cold_records": len(self._cold_records),
            "cold_segments": self._cold.segment_count,
            "warm_bytes": self._worm.device.used,
            "cold_bytes": self._cold.device.used,
        }

    # ------------------------------------------------------------------
    # StorageModel interface
    # ------------------------------------------------------------------

    def store(self, record: HealthRecord, author_id: str) -> None:
        if record.record_id in self._chains:
            raise RecordError(f"record {record.record_id} already exists")
        self._auto_register_author(author_id, record.patient_id)
        handle = self._keystore.create_key(label=record.record_id)
        self._keys[record.record_id] = handle
        chain = VersionChain(record.record_id)
        version = chain.append_initial(record, author_id, self._clock.now())
        self._put_version(version, handle)
        self._chains[record.record_id] = chain
        self._dirty_records.add(record.record_id)
        self._last_access[record.record_id] = self._clock.now()
        self._index.add_document(record.record_id, record.searchable_text())
        self._audit.append(
            AuditAction.RECORD_CREATED, author_id, record.record_id,
            {"type": record.record_type.value, "patient": record.patient_id},
        )

    def store_many(self, records: list[HealthRecord], author_id: str) -> int:
        """Batched ingest: same records, same audit chain, same index
        state as N :meth:`store` calls — but journal writes and index
        posting-list commits are amortized over the batch.

        Per record the chain digest, Merkle leaf, custody signature,
        and anchor cadence are computed exactly as in the single path
        (RECORD_CREATED events are byte-identical); what is batched is
        purely I/O: the audit journal flushes once (``begin_batch`` /
        ``commit``) and the index re-encrypts each affected posting
        list once for the whole batch.  Validation is all-or-nothing
        before any state changes.
        """
        seen: set[str] = set()
        for record in records:
            if record.record_id in self._chains:
                raise RecordError(f"record {record.record_id} already exists")
            if record.record_id in seen:
                raise RecordError(f"record {record.record_id} duplicated in batch")
            seen.add(record.record_id)
        if not records:
            return 0
        documents: list[tuple[str, str]] = []
        self._audit.begin_batch()
        try:
            staged = []
            handles = self._keystore.create_keys(
                [record.record_id for record in records]
            )
            for record, handle in zip(records, handles):
                self._auto_register_author(author_id, record.patient_id)
                self._keys[record.record_id] = handle
                chain = VersionChain(record.record_id)
                version = chain.append_initial(record, author_id, self._clock.now())
                staged.append((record, chain, version, handle))
            sealed = self._seal_versions(
                [(version, handle) for _, _, version, handle in staged]
            )
            items: list[tuple[str, bytes, Any]] = [
                (
                    _version_object_id(record.record_id, 0),
                    blob,
                    self._config.retention_policy.term_for(
                        record.record_type, self._clock.now()
                    ),
                )
                for (record, _, _, _), blob in zip(staged, sealed)
            ]
            # ONE journal frame for the whole batch: a crash that tears
            # this write drops every record in the batch at recovery —
            # there is no surviving prefix, so the acknowledgement below
            # is all-or-nothing at the durability layer too.
            metas = self._worm.put_many(items)
            # ONE aggregated custody signature for the batch: each
            # origin event carries the shared batch-root signature plus
            # its own inclusion proof, so per-record tamper detection is
            # exactly what N record_origin calls would give.
            origin_groups: dict[str, list[tuple[str, bytes]]] = {}
            for (record, chain, version, handle), meta in zip(staged, metas):
                origin_groups.setdefault(version.reason, []).append(
                    (meta.object_id, meta.content_digest)
                )
            for reason, entries in origin_groups.items():
                self._custody.record_origins(
                    entries, self._signer, self._clock.now(), reason=reason
                )
            for (record, chain, version, handle), meta in zip(staged, metas):
                object_id = meta.object_id
                self._disposition.register_key_handle(object_id, handle)
                self._provenance.add_object(object_id)
                self._provenance.record_custody(
                    object_id, self._config.site_id, start=self._clock.now()
                )
                self._maybe_anchor()
                self._chains[record.record_id] = chain
                self._dirty_records.add(record.record_id)
                self._last_access[record.record_id] = self._clock.now()
                documents.append((record.record_id, record.searchable_text()))
                self._audit.append(
                    AuditAction.RECORD_CREATED, author_id, record.record_id,
                    {"type": record.record_type.value, "patient": record.patient_id},
                )
            self._index.add_documents(documents)
        finally:
            self._audit.commit()
        METRICS.incr("store_many_batches")
        METRICS.incr("store_many_records", len(records))
        return len(records)

    def _default_purpose(self, actor_id: str) -> Purpose:
        """Infer the purpose of use from the actor's primary role when
        the caller does not state one (the table lives beside the rule
        compiler in :mod:`repro.policy.compiler`)."""
        user = self._resolve_user(actor_id)
        if user is None:
            return Purpose.TREATMENT
        return default_purpose_for(user)

    def read(
        self,
        record_id: str,
        *,
        actor_id: str,
        purpose: Purpose | None = None,
    ) -> HealthRecord:
        chain = self._chain_for(record_id)
        patient_id = chain.latest().record.patient_id
        self._authorize(
            actor_id,
            Permission.READ_RECORD,
            patient_id,
            purpose or self._default_purpose(actor_id),
            record_id,
        )
        current = len(chain) - 1
        cached = self._read_cache.get(record_id)
        if cached is not None and cached[0] == current:
            self._read_cache.move_to_end(record_id)
            METRICS.incr("read_cache_hits")
            METRICS.incr("tier_hot_hits")
            record = cached[1]
        else:
            METRICS.incr("read_cache_misses")
            if record_id in self._cold_records:
                METRICS.incr("tier_cold_reads")
            else:
                METRICS.incr("tier_warm_reads")
            record = self._open_version(record_id, current).record
            if self._config.read_cache_size > 0:
                self._read_cache[record_id] = (current, record)
                if len(self._read_cache) > self._config.read_cache_size:
                    self._read_cache.popitem(last=False)
        self._last_access[record_id] = self._clock.now()
        self._audit.append(
            AuditAction.RECORD_READ, actor_id, record_id,
            {"version": current},
        )
        self._maybe_anchor()
        return record

    def read_view(self, record_id: str, actor_id: str) -> dict[str, Any]:
        """Read with the minimum-necessary projection for the actor's role."""
        record = self.read(record_id, actor_id=actor_id)
        user = self._resolve_user(actor_id)
        assert user is not None  # read() would have raised
        role = next(iter(sorted(user.roles, key=lambda r: r.value)))
        return minimum_necessary_view(record, role)

    def read_version(
        self, record_id: str, version: int, *, actor_id: str
    ) -> HealthRecord:
        """Read one historical version, under the same authorization as
        :meth:`read` and attributed to the same kind of accountable
        principal."""
        chain = self._chain_for(record_id)
        if version < 0 or version >= len(chain):
            raise RecordError(f"record {record_id} has no version {version}")
        patient_id = chain.latest().record.patient_id
        self._authorize(
            actor_id,
            Permission.READ_RECORD,
            patient_id,
            self._default_purpose(actor_id),
            record_id,
        )
        stored = self._open_version(record_id, version)
        self._last_access[record_id] = self._clock.now()
        self._audit.append(
            AuditAction.RECORD_READ, actor_id, record_id, {"version": version}
        )
        return stored.record

    def correct(self, corrected: HealthRecord, author_id: str, reason: str) -> None:
        chain = self._chain_for(corrected.record_id)
        patient_id = chain.latest().record.patient_id
        self._authorize(
            author_id,
            Permission.CORRECT_RECORD,
            patient_id,
            Purpose.TREATMENT,
            corrected.record_id,
        )
        if corrected.record_id in self._cold_records:
            # a correction makes the record active again: recall first,
            # so every version lives in one tier
            self._recall(corrected.record_id)
        version = chain.append_correction(corrected, author_id, reason, self._clock.now())
        self._put_version(version, self._keys[corrected.record_id])
        self._dirty_records.add(corrected.record_id)
        self._last_access[corrected.record_id] = self._clock.now()
        # The cached entry is now a superseded version — purge it.
        self._read_cache.pop(corrected.record_id, None)
        # Re-index: the record's current text changes; old terms must not
        # linger (secure deletion of the prior posting entries).
        self._index.delete_document(corrected.record_id)
        self._index.add_document(corrected.record_id, corrected.searchable_text())
        self._audit.append(
            AuditAction.RECORD_CORRECTED, author_id, corrected.record_id,
            {"version": version.version_number, "reason": reason,
             "previous_digest": version.previous_digest},
        )

    def search(self, term: str, *, actor_id: str) -> list[str]:
        # Audit the keyed trapdoor, never the plaintext term: the audit
        # log persists to a device, and a cleartext term there would be
        # exactly the "Cancer" leak the trustworthy index closes.  The
        # privacy officer can recompute the trapdoor to match queries.
        commitment = self._index.index.trapdoor(term)[:16]
        subject = f"search:{commitment}"
        self._authorize(
            actor_id, Permission.SEARCH_RECORDS, "", Purpose.TREATMENT, subject
        )
        hits = self._index.search(term)
        self._audit.append(
            AuditAction.RECORD_SEARCHED, actor_id, subject, {"hits": len(hits)}
        )
        self._maybe_anchor()
        return [record_id for record_id in hits if record_id not in self._disposed]

    def dispose(
        self, record_id: str, *, actor_id: str
    ) -> list[DispositionCertificate]:
        """Full compliant disposal of every version of a record,
        attributed to the workforce member who approved it.  A cold
        record is recalled first so the identify→approve→execute
        workflow (and its certificates) runs against warm extents, then
        its cold residue — every segment extent the member ever
        occupied, plus the member cache — is scrubbed."""
        chain = self._chain_for(record_id)
        if record_id in self._cold_records:
            self._recall(record_id, actor_id=actor_id)
        now = self._clock.now()
        object_ids = [
            _version_object_id(record_id, n) for n in range(len(chain))
        ]
        # attachment chunks share the record's fate
        attachment_prefix = f"{record_id}#att/"
        object_ids += [
            object_id
            for object_id in self._worm.object_ids()
            if object_id.startswith(attachment_prefix)
        ]
        # every version and chunk must be past retention and hold-free
        for object_id in object_ids:
            self._worm.retention.check_deletable(object_id, now)
        for object_id in object_ids:
            if object_id.startswith(attachment_prefix):
                self._disposition.register_key_handle(object_id, self._keys[record_id])
        self._disposition.identify()
        certificates = []
        for object_id in object_ids:
            if object_id in self._disposition.pending():
                self._disposition.approve(object_id, actor_id)
                certificates.append(self._disposition.execute(object_id))
        # index must forget the record, verifiably — and so must the
        # read cache: a disposed record served from memory would defeat
        # the key shredding below.
        self._read_cache.pop(record_id, None)
        self._index.delete_document(record_id)
        # coordinated cryptographic deletion in backups
        handle = self._keys[record_id]
        if not self._vault.destroyed:
            self._vault.shred_key(handle.key_id)
        # cold residue: the key shredding above already killed any
        # sealed member cryptographically; zero the extents too (and the
        # bind_cache hook purged the decrypted member cache with it)
        cold_extents = self._cold.scrub_record(
            record_id, passes=self._config.shredder_passes
        )
        self._disposed.add(record_id)
        self._dirty_records.discard(record_id)
        self._last_access.pop(record_id, None)
        self._audit.append(
            AuditAction.RECORD_DISPOSED, actor_id, record_id,
            {
                "versions": len(object_ids),
                "certificates": len(certificates),
                "cold_extents": len(cold_extents),
            },
        )
        return certificates

    def export_deidentified(
        self, record_id: str, *, actor_id: str
    ) -> HealthRecord:
        """Research export: Safe-Harbor de-identification, audited."""
        chain = self._chain_for(record_id)
        patient_id = chain.latest().record.patient_id
        self._authorize(
            actor_id,
            Permission.EXPORT_DEIDENTIFIED,
            patient_id,
            Purpose.RESEARCH,
            record_id,
        )
        record = self._open_version(record_id, len(chain) - 1).record
        deid = deidentify(record, pseudonym=f"case-{abs(hash(patient_id)) % 10_000:04d}")
        self._audit.append(AuditAction.RECORD_EXPORTED, actor_id, record_id, {})
        return deid

    def record_ids(self) -> list[str]:
        return sorted(set(self._chains) - self._disposed)

    def version_count(self, record_id: str) -> int:
        return len(self._chain_for(record_id))

    # ------------------------------------------------------------------
    # harness surfaces
    # ------------------------------------------------------------------

    def devices(self) -> list[BlockDevice]:
        devices = [self._worm.device, self._index.index.device, self._audit.device]
        if self._keystore.device is not None:
            devices.append(self._keystore.device)
        devices.append(self._checkpoints.device)
        devices.append(self._cold.device)
        return devices

    def _check_record_chain(self, record_id: str) -> bool:
        """Decrypt + re-chain every version of one record, from whichever
        tier holds it (cold members are checked in place, not recalled)."""
        try:
            stored = self._stored_versions(record_id)
            VersionChain.from_versions(record_id, stored)
            return True
        except Exception:  # noqa: BLE001 — any failure implicates the record
            return False

    def verify_integrity(self, incremental: bool = False) -> VerificationReport:
        """Integrity verdict; ``report.violations`` carries the record
        ids implicated by any failure (plus ``"<index>"`` when the
        posting lists fail authentication).

        Full mode digest-checks every version object, verifies every
        chain's hash linkage, and authenticates every posting list.
        ``incremental=True`` checks only objects/records touched since
        the last full pass, plus a rotating sample of clean ones
        (``config.integrity_clean_sample`` per pass) so silent bit-rot
        in already-verified data is still revisited on a bounded cycle.
        """
        failures: set[str] = set()
        coverage = ""
        if incremental:
            with METRICS.timer("engine_integrity_incremental_ns"):
                for object_id in self._worm.verify_dirty(
                    clean_sample=self._config.integrity_clean_sample
                ):
                    failures.add(_record_id_of(object_id))
                failures.update(
                    self._cold.verify_dirty(
                        clean_sample=self._config.cold_clean_sample
                    )
                )
                live = self.record_ids()
                dirty = [r for r in live if r in self._dirty_records]
                clean = [r for r in live if r not in self._dirty_records]
                to_check = list(dirty)
                if clean and self._config.integrity_clean_sample > 0:
                    count = min(self._config.integrity_clean_sample, len(clean))
                    to_check += [
                        clean[(self._integrity_cursor + step) % len(clean)]
                        for step in range(count)
                    ]
                    self._integrity_cursor = (
                        self._integrity_cursor + count
                    ) % len(clean)
                for record_id in to_check:
                    if self._check_record_chain(record_id):
                        self._dirty_records.discard(record_id)
                    else:
                        failures.add(record_id)
                        self._dirty_records.add(record_id)
                METRICS.incr("engine_integrity_records_checked", len(to_check))
                coverage = (
                    f"{len(dirty)} dirty + {len(to_check) - len(dirty)} "
                    f"sampled record(s)"
                )
            METRICS.incr("engine_integrity_incremental_runs")
        else:
            with METRICS.timer("engine_integrity_full_ns"):
                for object_id in self._worm.verify_all():
                    failures.add(_record_id_of(object_id))
                failures.update(self._cold.verify_all())
                for record_id in self.record_ids():
                    if not self._check_record_chain(record_id):
                        failures.add(record_id)
                METRICS.incr(
                    "engine_integrity_records_checked", len(self.record_ids())
                )
                coverage = (
                    f"all {len(self.record_ids())} record(s), every worm object"
                )
            METRICS.incr("engine_integrity_full_runs")
            # A clean full pass verified everything; failures stay dirty.
            self._dirty_records = {r for r in failures if r in self._chains}
            self._integrity_cursor = 0
        if self._index.index.verify():
            failures.add("<index>")
        return VerificationReport.from_violations(
            sorted(failures),
            mode="incremental" if incremental else "full",
            coverage=coverage,
        )

    def audit_events(self) -> list[dict[str, Any]]:
        return [event.to_dict() for event in self._audit.events()]

    def audit_devices(self) -> list[BlockDevice]:
        return [self._audit.device]

    def verify_audit_trail(self, incremental: bool = False) -> VerificationReport:
        violations: list[str] = []
        chain = self._audit.verify_chain(incremental=incremental)
        if not chain:
            violations.append("audit-chain")
        try:
            if self._quorum is not None:
                self._quorum.check_log(self._audit)
            else:
                self._witness.check_log(self._audit)
        except Exception:
            violations.append("audit-anchors")
        return VerificationReport.from_violations(
            violations,
            mode=chain.mode if incremental else "full",
            coverage=f"{len(self._audit)} event(s), "
            f"{len(self._witnesses)} witness(es)",
        )

    def audit_query(self) -> AuditQuery:
        """Forensic query interface (verifies the chain first)."""
        return AuditQuery(self._audit)

    # ------------------------------------------------------------------
    # binary attachments (imaging, scanned documents)
    # ------------------------------------------------------------------

    def attach(
        self,
        record_id: str,
        attachment_id: str,
        data: bytes,
        *,
        actor_id: str,
        content_type: str = "application/octet-stream",
    ):
        """Attach a binary payload (e.g. imaging) to a record.

        Chunks are AEAD-encrypted under the record's data key and stored
        as WORM objects carrying the record's retention term, so the
        attachment inherits retention, integrity, and key-shredding
        disposal from its record.
        """
        from repro.records.attachments import store_attachment

        chain = self._chain_for(record_id)
        record_type = chain.latest().record.record_type
        term = self._config.retention_policy.term_for(record_type, self._clock.now())
        cipher = self._keystore.cipher_for(self._keys[record_id])

        def put(chunk_id: str, blob: bytes) -> None:
            self._worm.put(f"{record_id}#att/{chunk_id}", blob, retention=term)

        manifest = store_attachment(
            attachment_id, data, cipher, put, content_type=content_type
        )
        self._attachments.setdefault(record_id, {})[attachment_id] = manifest
        self._audit.append(
            AuditAction.RECORD_CREATED,
            actor_id,
            f"{record_id}#att/{attachment_id}",
            {"bytes": len(data), "chunks": len(manifest.chunk_ids),
             "content_type": content_type},
        )
        return manifest

    def read_attachment(
        self, record_id: str, attachment_id: str, *, actor_id: str
    ) -> bytes:
        """Read an attachment with full authorization + verification."""
        from repro.records.attachments import load_attachment

        chain = self._chain_for(record_id)
        patient_id = chain.latest().record.patient_id
        self._authorize(
            actor_id,
            Permission.READ_RECORD,
            patient_id,
            self._default_purpose(actor_id),
            f"{record_id}#att/{attachment_id}",
        )
        manifest = self._attachments.get(record_id, {}).get(attachment_id)
        if manifest is None:
            raise RecordNotFoundError(
                f"record {record_id} has no attachment {attachment_id}"
            )
        cipher = self._keystore.cipher_for(self._keys[record_id])
        data = load_attachment(
            manifest, cipher, lambda cid: self._worm.get(f"{record_id}#att/{cid}")
        )
        self._audit.append(
            AuditAction.RECORD_READ, actor_id, f"{record_id}#att/{attachment_id}", {}
        )
        return data

    def attachments_of(self, record_id: str) -> list[str]:
        """Attachment ids carried by a record."""
        self._chain_for(record_id)
        return sorted(self._attachments.get(record_id, {}))

    def records_of_patient(self, patient_id: str) -> list[str]:
        """Live record ids belonging to one patient."""
        return sorted(
            record_id
            for record_id in self.record_ids()
            if self._chains[record_id].latest().record.patient_id == patient_id
        )

    def records_in_window(self, start: float, end: float) -> list[str]:
        """Live records created in ``[start, end)`` — the time-range
        query audits and chart reviews need."""
        return sorted(
            record_id
            for record_id in self.record_ids()
            if start <= self._chains[record_id].version(0).record.created_at < end
        )

    def accounting_of_disclosures(
        self, patient_id: str, *, actor_id: str
    ):
        """The HIPAA accounting-of-disclosures report for one patient:
        every access-class event over their record set, from a verified
        audit trail.  The request itself is authorized and audited."""
        self._authorize(
            actor_id,
            Permission.READ_AUDIT_TRAIL,
            patient_id,
            self._default_purpose(actor_id),
            f"disclosures:{patient_id}",
        )
        record_ids = self.records_of_patient(patient_id)
        local = self.audit_query().disclosure_accounting(record_ids)
        foreign = self._foreign_segments.get(patient_id)
        if foreign is None:
            return local
        # the patient migrated here: access events that predate this
        # shard's log arrived as the imported audit-chain segment and
        # belong in the same accounting
        from repro.audit.query import _ACCESS_ACTIONS

        wanted = set(record_ids)
        imported = [
            event
            for event in (
                AuditEvent.from_dict(d)
                for d in (*foreign["events"], *foreign["delta"])
            )
            if event.subject_id in wanted and event.action in _ACCESS_ACTIONS
        ]
        return sorted(
            [*local, *imported], key=lambda e: (e.timestamp, e.sequence)
        )

    def prove_audit_event(self, sequence: int):
        """Third-party-verifiable disclosure of one audit event.

        Publishes a fresh anchor if the event is not yet covered by one,
        then returns ``(event, chain_prev, proof, anchor)``; a verifier
        needs only the witnessed anchor (see
        :func:`repro.audit.log.verify_event_proof`).
        """
        latest = self._witness.latest()
        if latest is None or latest.log_size <= sequence:
            anchor = publish_anchor(self._audit, self._signer, self._clock.now())
            self._witness.receive(anchor, self._audit)
            latest = anchor
        event, chain_prev, proof = self._audit.prove_event(
            sequence, at_size=latest.log_size
        )
        return event, chain_prev, proof, latest

    # ------------------------------------------------------------------
    # patient migration (online cluster rebalancing)
    # ------------------------------------------------------------------

    def patient_ids(self) -> list[str]:
        """Every patient with at least one live record on this engine."""
        return sorted(
            {
                self._chains[record_id].latest().record.patient_id
                for record_id in self.record_ids()
            }
        )

    def _segment_events_for(
        self, patient_id: str, record_ids: list[str]
    ) -> list[dict]:
        """The patient's audit-chain segment as event dicts: every local
        event whose subject is one of the patient's records (or their
        attachments), preceded by any segment an earlier move brought
        here — so custody chains across repeated moves."""
        wanted = set(record_ids)

        def belongs(event: AuditEvent) -> bool:
            if event.subject_id in wanted:
                return True
            head, sep, _ = event.subject_id.partition("#att/")
            return bool(sep) and head in wanted

        events: list[dict] = []
        foreign = self._foreign_segments.get(patient_id)
        if foreign is not None:
            events.extend(foreign["events"])
            events.extend(foreign["delta"])
        events.extend(
            event.to_dict() for event in self._audit.events() if belongs(event)
        )
        return events

    def export_patient_history(
        self, patient_id: str, *, actor_id: str = "system"
    ) -> PatientBundle:
        """Package one patient's full history for migration to another
        shard: version plaintexts, attachments, retention terms and
        holds, the audit-chain segment, a signed Merkle manifest over
        the plaintext digests, and a chain-continuity attestation.

        Read-only apart from the ``MIGRATION_STARTED`` audit event:
        every version is decrypted straight off the WORM store and
        checked against its chain digest before it is allowed into the
        bundle (the first read of the double-read cutover)."""
        record_ids = self.records_of_patient(patient_id)
        if not record_ids:
            raise RecordNotFoundError(
                f"no live records for patient {patient_id}"
            )
        from repro.records.attachments import load_attachment

        entries: list[tuple[str, bytes]] = []
        records: list[RecordBundle] = []
        for record_id in record_ids:
            chain = self._chains[record_id]
            versions: list[dict] = []
            terms: list[tuple[str, float, float]] = []
            holds: list[tuple[str, tuple[str, ...]]] = []
            for n in range(len(chain)):
                object_id = _version_object_id(record_id, n)
                stored = self._open_version(record_id, n)
                if stored.digest() != chain.version(n).digest():
                    raise IntegrityError(
                        f"version {object_id} does not match its chain; "
                        "refusing to export a tampered history"
                    )
                version_dict = stored.to_dict()
                versions.append(version_dict)
                entries.append(
                    (object_id, sha256(canonical_bytes(version_dict)))
                )
                term = self._worm.retention.term_for(object_id)
                terms.append((object_id, term.start, term.duration_seconds))
                held = self._worm.retention.holds_on(object_id)
                if held:
                    holds.append((object_id, tuple(sorted(held))))
            attachments: list[AttachmentBundle] = []
            cipher = self._keystore.cipher_for(self._keys[record_id])
            for attachment_id in sorted(self._attachments.get(record_id, {})):
                manifest = self._attachments[record_id][attachment_id]
                data = load_attachment(
                    manifest,
                    cipher,
                    lambda cid: self._worm.get(f"{record_id}#att/{cid}"),
                )
                first_chunk = f"{record_id}#att/{manifest.chunk_ids[0]}"
                term = self._worm.retention.term_for(first_chunk)
                attachments.append(
                    AttachmentBundle(
                        attachment_id=attachment_id,
                        content_type=manifest.content_type,
                        data=data,
                        term=(term.start, term.duration_seconds),
                    )
                )
                entries.append(
                    (f"{record_id}#att/{attachment_id}", sha256(data))
                )
            records.append(
                RecordBundle(
                    record_id=record_id,
                    versions=tuple(versions),
                    terms=tuple(terms),
                    holds=tuple(holds),
                    attachments=tuple(attachments),
                )
            )
        segment = self._segment_events_for(patient_id, record_ids)
        now = self._clock.now()
        manifest = build_entries_manifest(entries, self._signer, now)
        attestation = self._signer.sign(
            {
                "kind": "segment-attestation",
                "patient": patient_id,
                "source": self._config.site_id,
                "segment_digest": sha256(canonical_bytes(segment)),
                "events": len(segment),
                "chain_head": self._audit.head_digest,
                "log_size": len(self._audit),
                "exported_at": now,
            }
        )
        self._audit.append(
            AuditAction.MIGRATION_STARTED,
            actor_id,
            patient_id,
            {
                "migration": "export",
                "patient": patient_id,
                "records": list(record_ids),
                "objects": len(entries),
            },
        )
        METRICS.incr("patient_exports")
        return PatientBundle(
            patient_id=patient_id,
            source_id=self._config.site_id,
            exported_at=now,
            records=tuple(records),
            segment=tuple(segment),
            attestation=attestation,
            manifest=manifest,
        )

    def import_patient_history(
        self, bundle: PatientBundle, *, actor_id: str = "system"
    ) -> tuple[tuple[str, bytes], ...]:
        """Adopt a migrated patient: re-seal every version and
        attachment under this shard's keys, restore the original
        retention terms and holds, archive the imported audit-chain
        segment, and append the durable ``MIGRATION_COMPLETED`` import
        marker.

        The whole patient lands in ONE WORM batch frame alongside the
        segment archive, so a crash mid-import leaves *nothing* of the
        patient here — there is no partially-imported state to salvage.
        Returns the destination's freshly recomputed plaintext digests
        (the second read of the double-read cutover)."""
        from repro.records.attachments import store_attachment

        patient_id = bundle.patient_id
        for record_bundle in bundle.records:
            if (
                record_bundle.record_id in self._chains
                or record_bundle.record_id in self._disposed
            ):
                raise MigrationError(
                    f"record {record_bundle.record_id} already exists on "
                    "this shard; refusing a dual-home import"
                )
        if patient_id in self._foreign_segments:
            raise MigrationError(
                f"patient {patient_id} already has an imported segment here"
            )
        expected = dict(bundle.manifest.entries)
        staged_chains: dict[str, VersionChain] = {}
        for record_bundle in bundle.records:
            versions = [
                RecordVersion.from_dict(d) for d in record_bundle.versions
            ]
            for version in versions:
                object_id = _version_object_id(
                    record_bundle.record_id, version.version_number
                )
                digest = sha256(canonical_bytes(version.to_dict()))
                if expected.get(object_id) != digest:
                    raise MigrationError(
                        f"bundle version {object_id} does not match its "
                        "manifest entry"
                    )
            # from_versions re-verifies the hash linkage end to end
            staged_chains[record_bundle.record_id] = VersionChain.from_versions(
                record_bundle.record_id, versions
            )
        record_order = [rb.record_id for rb in bundle.records]
        handles = dict(
            zip(record_order, self._keystore.create_keys(record_order))
        )
        sealed_pairs: list[tuple[RecordVersion, KeyHandle]] = []
        for record_bundle in bundle.records:
            chain = staged_chains[record_bundle.record_id]
            for n in range(len(chain)):
                sealed_pairs.append(
                    (chain.version(n), handles[record_bundle.record_id])
                )
        sealed = iter(self._seal_versions(sealed_pairs))
        original_terms = {
            object_id: RetentionTerm(start, duration)
            for record_bundle in bundle.records
            for object_id, start, duration in record_bundle.terms
        }
        items: list[tuple[str, bytes, Any]] = []
        for record_bundle in bundle.records:
            for n in range(len(staged_chains[record_bundle.record_id])):
                object_id = _version_object_id(record_bundle.record_id, n)
                items.append((object_id, next(sealed), original_terms[object_id]))
        # attachments: chunk + seal in memory so the chunks ride the
        # same all-or-nothing batch frame as the versions
        attachment_manifests: dict[str, dict[str, Any]] = {}
        for record_bundle in bundle.records:
            cipher = self._keystore.cipher_for(handles[record_bundle.record_id])
            for attachment in record_bundle.attachments:
                chunks: list[tuple[str, bytes]] = []
                manifest = store_attachment(
                    attachment.attachment_id,
                    attachment.data,
                    cipher,
                    lambda cid, blob: chunks.append((cid, blob)),
                    content_type=attachment.content_type,
                )
                term = RetentionTerm(attachment.term[0], attachment.term[1])
                for chunk_id, blob in chunks:
                    items.append(
                        (f"{record_bundle.record_id}#att/{chunk_id}", blob, term)
                    )
                attachment_manifests.setdefault(record_bundle.record_id, {})[
                    attachment.attachment_id
                ] = manifest
        segment = [dict(event) for event in bundle.segment]
        segment_object_id = (
            f"{_SEGMENT_PREFIX}{patient_id}/{bundle.exported_at:.6f}"
        )
        items.append(
            (
                segment_object_id,
                canonical_bytes(
                    {
                        "patient": patient_id,
                        "source": bundle.source_id,
                        "events": segment,
                        "attestation": bundle.attestation.to_dict(),
                    }
                ),
                None,
            )
        )
        self._audit.begin_batch()
        try:
            metas = self._worm.put_many(items)
            self._custody.record_origins(
                [
                    (meta.object_id, meta.content_digest)
                    for meta in metas
                    if not meta.object_id.startswith(_SEGMENT_PREFIX)
                ],
                self._signer,
                self._clock.now(),
                reason=f"migrated from {bundle.source_id}",
            )
            documents: list[tuple[str, str]] = []
            for record_bundle in bundle.records:
                record_id = record_bundle.record_id
                handle = handles[record_id]
                chain = staged_chains[record_id]
                self._keys[record_id] = handle
                self._chains[record_id] = chain
                for n in range(len(chain)):
                    object_id = _version_object_id(record_id, n)
                    self._disposition.register_key_handle(object_id, handle)
                    self._provenance.add_object(object_id)
                    self._provenance.record_custody(
                        object_id, self._config.site_id, start=self._clock.now()
                    )
                    # re-establish the treating relationship the record
                    # documents, so policy decisions survive the move
                    self._auto_register_author(
                        chain.version(n).author_id, patient_id
                    )
                for attachment in record_bundle.attachments:
                    manifest = attachment_manifests[record_id][
                        attachment.attachment_id
                    ]
                    for chunk_id in manifest.chunk_ids:
                        self._disposition.register_key_handle(
                            f"{record_id}#att/{chunk_id}", handle
                        )
                if record_id in attachment_manifests:
                    self._attachments[record_id] = attachment_manifests[record_id]
                for object_id, hold_ids in record_bundle.holds:
                    for hold_id in hold_ids:
                        self._worm.retention.place_hold(object_id, hold_id)
                self._dirty_records.add(record_id)
                documents.append(
                    (record_id, chain.latest().record.searchable_text())
                )
            self._index.add_documents(documents)
            self._foreign_segments[patient_id] = {
                "events": segment,
                "delta": [],
                "attestation": bundle.attestation,
                "source": bundle.source_id,
            }
            self._segment_objects.setdefault(patient_id, []).append(
                segment_object_id
            )
            self._audit.append(
                AuditAction.MIGRATION_COMPLETED,
                actor_id,
                patient_id,
                {
                    "migration": "import",
                    "patient": patient_id,
                    "source": bundle.source_id,
                    "records": record_order,
                },
            )
        finally:
            self._audit.commit()
        METRICS.incr("patient_imports")
        return self.patient_history_digests(patient_id)

    def patient_history_digests(
        self, patient_id: str
    ) -> tuple[tuple[str, bytes], ...]:
        """Freshly recomputed plaintext digests of every extent of one
        patient's history, decrypted straight off the WORM store — the
        verification primitive behind the double-read cutover.  The
        shape matches :class:`~repro.migration.manifest.MigrationManifest`
        entries exactly."""
        from repro.records.attachments import load_attachment

        entries: list[tuple[str, bytes]] = []
        for record_id in self.records_of_patient(patient_id):
            chain = self._chains[record_id]
            for n in range(len(chain)):
                stored = self._open_version(record_id, n)
                entries.append(
                    (
                        _version_object_id(record_id, n),
                        sha256(canonical_bytes(stored.to_dict())),
                    )
                )
            cipher = self._keystore.cipher_for(self._keys[record_id])
            for attachment_id in sorted(self._attachments.get(record_id, {})):
                manifest = self._attachments[record_id][attachment_id]
                data = load_attachment(
                    manifest,
                    cipher,
                    lambda cid: self._worm.get(f"{record_id}#att/{cid}"),
                )
                entries.append(
                    (f"{record_id}#att/{attachment_id}", sha256(data))
                )
        return tuple(sorted(entries))

    def export_audit_delta(
        self, patient_id: str, *, since: int
    ) -> list[dict]:
        """Audit events about the patient's records appended after log
        size *since* — the tail the cutover syncs to the destination so
        reads served mid-move still reach the accounting."""
        record_ids = self.records_of_patient(patient_id)
        wanted = set(record_ids)

        def belongs(event: AuditEvent) -> bool:
            if event.subject_id in wanted:
                return True
            head, sep, _ = event.subject_id.partition("#att/")
            return bool(sep) and head in wanted

        return [
            event.to_dict()
            for event in self._audit.events()[since:]
            if belongs(event)
        ]

    def adopt_audit_delta(self, patient_id: str, events: list[dict]) -> int:
        """Append cutover-tail events to an imported segment (and its
        durable WORM archive)."""
        if patient_id not in self._foreign_segments:
            raise MigrationError(
                f"patient {patient_id} has no imported segment here"
            )
        events = [dict(event) for event in events]
        if not events:
            return 0
        self._foreign_segments[patient_id]["delta"].extend(events)
        delta_object_id = (
            f"{_SEGMENT_PREFIX}{patient_id}/delta/{self._clock.now():.6f}"
        )
        self._worm.put(
            delta_object_id,
            canonical_bytes({"patient": patient_id, "events": events}),
        )
        self._segment_objects.setdefault(patient_id, []).append(delta_object_id)
        return len(events)

    def imported_segment(self, patient_id: str) -> tuple[dict, ...]:
        """The audit segment (snapshot + cutover delta) that migrated in
        with *patient_id* (empty if the patient never moved here)."""
        foreign = self._foreign_segments.get(patient_id)
        if foreign is None:
            return ()
        return tuple(foreign["events"]) + tuple(foreign["delta"])

    def imported_segment_snapshot(self, patient_id: str) -> tuple[dict, ...]:
        """Just the export-time snapshot of the imported segment — the
        portion the source's chain-continuity attestation signs."""
        foreign = self._foreign_segments.get(patient_id)
        if foreign is None:
            return ()
        return tuple(foreign["events"])

    def segment_attestation(self, patient_id: str):
        """The source-signed chain-continuity attestation that arrived
        with *patient_id*'s segment (``None`` if never migrated here)."""
        foreign = self._foreign_segments.get(patient_id)
        return None if foreign is None else foreign["attestation"]

    def export_consent_directives(self, patient_id: str) -> tuple:
        """The patient's consent directives, for transfer at cutover
        (consent must give one answer no matter where the patient
        lives)."""
        return tuple(self._consent.directives_for(patient_id))

    def adopt_consent_directives(self, patient_id: str, directives) -> int:
        """Adopt consent directives migrated in with a patient; skips
        directive ids this registry already knows."""
        known = {
            directive.directive_id
            for directive in self._consent.directives_for(patient_id)
        }
        adopted = 0
        for directive in directives:
            if directive.directive_id in known:
                continue
            self._consent.add_directive(patient_id, directive)
            adopted += 1
        return adopted

    def retire_patient(
        self,
        patient_id: str,
        *,
        actor_id: str = "system",
        destination_id: str = "",
    ) -> tuple[str, ...]:
        """Drop this shard's copy of a patient whose custody moved away.

        The durable ``CUSTODY_TRANSFERRED`` export marker hits the audit
        device *first*: recovery replays the log, so once the marker is
        down the records below can never resurrect as a second home.
        The WORM extents are expatriated (tombstoned without a retention
        check — the data lives on at the destination under its original
        terms), not destroyed."""
        record_ids = self.records_of_patient(patient_id)
        if not record_ids:
            raise RecordNotFoundError(
                f"no live records for patient {patient_id}"
            )
        self._audit.append(
            AuditAction.CUSTODY_TRANSFERRED,
            actor_id,
            patient_id,
            {
                "migration": "export",
                "patient": patient_id,
                "records": list(record_ids),
                "destination": destination_id,
            },
        )
        for record_id in record_ids:
            chain = self._chains.pop(record_id)
            for n in range(len(chain)):
                object_id = _version_object_id(record_id, n)
                self._worm.expatriate(object_id)
                self._custody.expatriate(object_id)
            for manifest in self._attachments.pop(record_id, {}).values():
                for chunk_id in manifest.chunk_ids:
                    chunk_object_id = f"{record_id}#att/{chunk_id}"
                    self._worm.expatriate(chunk_object_id)
                    self._custody.expatriate(chunk_object_id)
            self._keys.pop(record_id, None)
            self._read_cache.pop(record_id, None)
            self._dirty_records.discard(record_id)
            self._index.delete_document(record_id)
        self._foreign_segments.pop(patient_id, None)
        for object_id in self._segment_objects.pop(patient_id, []):
            self._worm.expatriate(object_id)
        METRICS.incr("patient_retires")
        return tuple(record_ids)

    def declared_features(self) -> frozenset[str]:
        return frozenset(
            {
                "correct",
                "dispose",
                "search",
                "audit",
                "access_control",
                "integrity",
                "retention",
                "encryption",
                "migration_verifiable",
                "provenance",
                "backup",
            }
        )

    def insider_keys(self) -> dict[str, bytes]:
        """Key material lives in the keystore under the HSM-held master
        key; nothing is available from the software configuration."""
        return {}

    # ------------------------------------------------------------------
    # operations: backup, media refresh, retention sweeps
    # ------------------------------------------------------------------

    def create_backup(
        self, *, incremental: bool = False, actor_id: str
    ):
        """Snapshot the WORM store + wrapped keys to the off-site vault,
        attributed to the operator who ran it."""
        handles = {
            object_id: self._keys[_record_id_of(object_id)]
            for object_id in self._worm.object_ids()
        }
        if incremental:
            snapshot = self._backup.create_incremental(self._worm, self._keystore, handles)
        else:
            snapshot = self._backup.create_full(self._worm, self._keystore, handles)
        self._audit.append(
            AuditAction.BACKUP_CREATED, actor_id, snapshot.snapshot_id,
            {"objects": len(snapshot.objects), "kind": snapshot.kind},
        )
        return snapshot

    def restore_from_backup(
        self, snapshot_id: str, *, actor_id: str
    ) -> RestoreReport:
        """Disaster recovery: rebuild the WORM store from the vault."""
        medium = self._media_pool.provision()
        new_worm = WormStore(device=medium.device, clock=self._clock)
        report = self._backup.restore(snapshot_id, new_worm, None)
        if not report.verified:
            raise IntegrityError(
                f"restore failed verification: {report.mismatched}"
            )
        # Reattach retention terms (restore writes zero-duration terms;
        # extend-only semantics let us rebuild the real ones from the
        # surviving controller metadata) and disposition plumbing.
        for object_id in new_worm.object_ids():
            record_id = _record_id_of(object_id)
            handle = self._keys.get(record_id)
            if handle is not None:
                self._disposition.register_key_handle(object_id, handle)
            chain = self._chains.get(record_id)
            if chain is not None:
                if "#att/" in object_id:
                    # attachments carry the latest version's record type
                    # from their creation; rebuild from the chain head
                    reference = chain.latest()
                else:
                    reference = chain.version(int(object_id.partition("@v")[2]))
                term = self._config.retention_policy.term_for(
                    reference.record.record_type, reference.created_at
                )
                if term.expires_at > new_worm.retention.term_for(object_id).expires_at:
                    new_worm.retention.extend_term(object_id, term.expires_at)
        self._worm = new_worm
        self._medium = medium
        self._disposition = DispositionWorkflow(
            self._worm, self._shredder, clock=self._clock
        )
        # A restore rewrites the whole archive: every record is dirty
        # until the next integrity pass re-verifies it.
        self._dirty_records = set(self._chains) - self._disposed
        self._audit.append(
            AuditAction.BACKUP_RESTORED, actor_id, snapshot_id,
            {"objects": report.objects_restored},
        )
        return report

    @classmethod
    def recover_from_devices(
        cls,
        config: CuratorConfig,
        *,
        worm_device: BlockDevice,
        key_device: BlockDevice,
        audit_device: BlockDevice,
        checkpoint_device: BlockDevice | None = None,
        cold_device: BlockDevice | None = None,
        witnesses: list[AnchorWitness] | None = None,
        signer: Signer | None = None,
    ) -> "CuratorStore":
        """Restart the engine from surviving device images after a crash.

        Trust model of the restart: devices survive (that is what they
        are for); the HSM-held material — master key and, optionally,
        the anchor-signing key — survives; external anchor witnesses
        survive.  Everything in process memory is gone.

        What is rebuilt, and from where:

        * **keys** — replayed from the escrow journal (wrapped under the
          master key); physically-destroyed frames recover as shredded;
        * **records** — the WORM frame walk drops a torn frame whole
          (so a torn ``store_many`` batch has no surviving prefix) but
          salvages frames broken by an interrupted authorized shred;
          versions decrypt under the recovered keys and re-chain;
        * **audit** — the hash chain replays from its journal and must
          verify (a log that does not verify raises
          :class:`~repro.errors.AuditError` rather than being adopted);
        * **index** — derived data: re-posted from the decrypted current
          versions, so it is consistent with surviving records by
          construction;
        * **retention** — terms re-derived from each version's record
          type and creation time under the configured policy.

        In-memory-only state is honestly lost: attachment manifests
        (chunks become ``orphaned`` in the report), the provenance/
        custody narrative, enrolled users, break-glass grants, consent
        directives, and the off-site vault binding.
        """
        store = cls(config)
        # keys: replay the escrow under the HSM-held master key
        store._keystore = KeyStore.recover(
            config.master_key, key_device, clock=store._clock
        )
        store._shredder = SecureShredder(store._keystore, config.shredder_passes)
        store._shredder.bind_cache(purge_signature_memo)
        store._shredder.bind_cache(purge_ed25519_memo)
        # worm: adopt the surviving medium into a fresh pool
        store._media_pool = MediaPool(
            clock=store._clock, default_capacity=config.device_capacity
        )
        store._medium = store._media_pool.adopt(worm_device)
        # The key escrow knows which records were lawfully destroyed; a
        # broken WORM frame containing one of their objects is a shred
        # interrupted before its reseal (a certified hole), not a torn
        # write — worm recovery completes the reseal and keeps the
        # frame's surviving neighbours instead of dropping the batch.
        labels = store._keystore.labelled_handles()

        def _certified_hole(object_ids: list[str]) -> bool:
            for object_id in object_ids:
                handle = labels.get(_record_id_of(object_id))
                if handle is not None and store._keystore.is_shredded(handle):
                    return True
            return False

        store._worm = WormStore.recover(
            worm_device, clock=store._clock, salvage_check=_certified_hole
        )
        store._disposition = DispositionWorkflow(
            store._worm, store._shredder, clock=store._clock
        )
        # audit: replay + verify the hash chain
        store._audit = AuditLog.recover(
            audit_device,
            clock=store._clock,
            spot_checks=config.audit_spot_checks,
            full_rescan_every=config.audit_full_rescan_every,
        )
        # verified watermarks: recover the MAC-sealed checkpoint journal
        # (a seal torn by the crash is dropped whole, so verification
        # falls back to an older watermark or a full rescan — never a
        # torn one); without a surviving image, start a fresh store
        if checkpoint_device is not None:
            store._checkpoints = CheckpointStore.recover(
                checkpoint_device,
                key=derive_key(config.master_key, "curator/audit-checkpoint"),
                clock=store._clock,
            )
        store._audit.adopt_checkpoints(store._checkpoints)
        # external infrastructure that survives a process crash
        if signer is not None:
            store._signer = signer
            store._trust.add(signer.verifier())
        if witnesses:
            store._witnesses = list(witnesses)
            store._witness = store._witnesses[0]
            store._quorum = (
                WitnessQuorum(
                    store._witnesses, threshold=len(store._witnesses) // 2 + 1
                )
                if len(store._witnesses) > 1
                else None
            )
        # migration markers: the recovered audit log says which records
        # moved away (CUSTODY_TRANSFERRED export) and which arrived
        # (MIGRATION_COMPLETED import).  Replayed in sequence order they
        # yield the set this shard no longer owns — whose recovered
        # bytes must stay tombstoned, because WORM tombstones are
        # process memory and a naive replay would resurrect a second
        # home for every migrated patient.
        moved_records: set[str] = set()
        moved_patients: set[str] = set()
        # Demotion markers replay the same way: a RECORD_DEMOTED with no
        # later RECORD_RECALLED means the cold member is authoritative
        # and the recovered warm bytes must stay tombstoned.
        demoted_records: set[str] = set()
        for event in store._audit.events():
            detail = event.detail or {}
            if (
                event.action is AuditAction.CUSTODY_TRANSFERRED
                and detail.get("migration") == "export"
            ):
                moved_records.update(detail.get("records") or [])
                moved_patients.add(detail.get("patient") or event.subject_id)
            elif (
                event.action is AuditAction.MIGRATION_COMPLETED
                and detail.get("migration") == "import"
            ):
                moved_records.difference_update(detail.get("records") or [])
                moved_patients.discard(detail.get("patient") or event.subject_id)
            elif event.action is AuditAction.RECORD_DEMOTED:
                demoted_records.add(event.subject_id)
            elif event.action is AuditAction.RECORD_RECALLED:
                demoted_records.discard(event.subject_id)
        # record directory: decrypt WORM versions under recovered keys
        version_ids: dict[str, dict[int, str]] = {}
        chunk_ids: list[str] = []
        segment_ids: list[str] = []
        for object_id in store._worm.object_ids():
            if object_id.startswith(_SEGMENT_PREFIX):
                segment_ids.append(object_id)
                continue
            if "#att/" in object_id:
                chunk_ids.append(object_id)
                continue
            record_id, _, tail = object_id.partition("@v")
            version_ids.setdefault(record_id, {})[int(tail)] = object_id
        disposed: list[str] = []
        damaged: list[str] = []
        orphaned: list[str] = []
        migrated: list[str] = []
        documents: list[tuple[str, str]] = []
        versions_recovered = 0
        for record_id in sorted(version_ids):
            numbered = version_ids[record_id]
            if record_id in moved_records:
                # custody moved to another shard: keep the extents
                # tombstoned, never serve them from here again
                for n in sorted(numbered):
                    store._worm.expatriate(numbered[n])
                migrated.append(record_id)
                continue
            handle = labels.get(record_id)
            if handle is None:
                orphaned.extend(numbered[n] for n in sorted(numbered))
                continue
            store._keys[record_id] = handle
            if store._keystore.is_shredded(handle):
                # Cryptographic deletion did its job: the ciphertext may
                # survive but the record is gone — record the disposal
                # and restore the tombstones (the shredder zeroed the
                # extents, so these objects must never be served again).
                store._disposed.add(record_id)
                disposed.append(record_id)
                for n in sorted(numbered):
                    try:
                        store._worm.delete(numbered[n])
                    except Exception:  # noqa: BLE001 — hold/missing: leave as-is
                        pass
                continue
            try:
                stored = [
                    store._open_version(record_id, n) for n in sorted(numbered)
                ]
                chain = VersionChain.from_versions(record_id, stored)
            except Exception:  # noqa: BLE001 — torn/tampered data
                damaged.append(record_id)
                continue
            store._chains[record_id] = chain
            versions_recovered += len(stored)
            documents.append((record_id, chain.latest().record.searchable_text()))
            for n in sorted(numbered):
                object_id = numbered[n]
                store._disposition.register_key_handle(object_id, handle)
                store._provenance.add_object(object_id)
                reference = chain.version(n)
                term = config.retention_policy.term_for(
                    reference.record.record_type, reference.created_at
                )
                if (
                    term.expires_at
                    > store._worm.retention.term_for(object_id).expires_at
                ):
                    store._worm.retention.extend_term(object_id, term.expires_at)
        # attachment chunks: bytes + keys survive but the manifests were
        # process memory — keep them disposition-managed, report the loss
        for object_id in chunk_ids:
            record_id = _record_id_of(object_id)
            if record_id in moved_records:
                store._worm.expatriate(object_id)
                continue
            handle = store._keys.get(record_id)
            if handle is not None:
                store._disposition.register_key_handle(object_id, handle)
                chain = store._chains.get(record_id)
                if chain is not None:
                    reference = chain.latest()
                    term = config.retention_policy.term_for(
                        reference.record.record_type, reference.created_at
                    )
                    if (
                        term.expires_at
                        > store._worm.retention.term_for(object_id).expires_at
                    ):
                        store._worm.retention.extend_term(object_id, term.expires_at)
            orphaned.append(object_id)
        # imported audit segments: the durable WORM archives written at
        # import time restore the accounting-of-disclosures history of
        # migrated-in patients; segments of patients who have since
        # moved on stay tombstoned with their records
        for object_id in segment_ids:
            try:
                payload = canonical_loads(store._worm.get(object_id))
                patient_id = payload["patient"]
            except Exception:  # noqa: BLE001 — torn/tampered archive
                orphaned.append(object_id)
                continue
            if patient_id in moved_patients:
                store._worm.expatriate(object_id)
                continue
            entry = store._foreign_segments.setdefault(
                patient_id,
                {"events": [], "delta": [], "attestation": None, "source": ""},
            )
            if "/delta/" in object_id:
                entry["delta"].extend(payload["events"])
            else:
                entry["events"] = list(payload["events"])
                entry["source"] = payload.get("source", "")
                attestation = payload.get("attestation")
                if attestation is not None:
                    from repro.crypto.signatures import SignedPayload

                    entry["attestation"] = SignedPayload.from_dict(attestation)
            store._segment_objects.setdefault(patient_id, []).append(object_id)
        # cold tier: adopt the surviving cold device, then place each
        # recovered member by the audit trail's verdict — demoted and
        # not since recalled means cold is authoritative (warm copies
        # re-tombstoned), anything else was repatriated before the
        # crash, and a shredded key marks certified scrub holes.
        # Without a surviving cold device, demoted records honestly
        # recover warm from their surviving (pre-demotion) extents.
        if cold_device is not None:
            store._cold = ColdStore.recover(
                cold_device, clock=store._clock,
                cache_size=config.cold_cache_size,
            )
            store._shredder.bind_cache(store._cold.purge_cache)
        for record_id in store._cold.record_ids():
            if record_id in store._disposed:
                store._cold.mark_scrubbed(record_id)
                continue
            if record_id not in demoted_records or record_id in moved_records:
                store._cold.mark_repatriated(record_id)
                continue
            handle = labels.get(record_id)
            if handle is None:
                orphaned.append(record_id)
                store._cold.mark_repatriated(record_id)
                continue
            store._keys.setdefault(record_id, handle)
            try:
                stored_versions = store._open_cold_versions(record_id)
                chain = VersionChain.from_versions(record_id, stored_versions)
            except Exception:  # noqa: BLE001 — torn/tampered cold member
                if record_id not in store._chains:
                    damaged.append(record_id)
                # with an intact warm copy the record falls back warm
                store._cold.mark_repatriated(record_id)
                continue
            if record_id not in store._chains:
                # the warm copy died with the crash; the cold member
                # alone restores the record
                store._chains[record_id] = chain
                versions_recovered += len(stored_versions)
                documents.append(
                    (record_id, chain.latest().record.searchable_text())
                )
                if record_id in damaged:
                    damaged.remove(record_id)
            for n in range(len(chain)):
                object_id = _version_object_id(record_id, n)
                if object_id in store._worm:
                    store._worm.expatriate(object_id)
            store._cold_records.add(record_id)
        # index: derived data, re-posted from the recovered records
        store._index.add_documents(documents)
        # Everything recovered came off an untrusted device: dirty until
        # the next integrity pass clears it.
        store._dirty_records = set(store._chains)
        store.recovery_report = RecoveryReport(
            records_recovered=len(store._chains),
            versions_recovered=versions_recovered,
            audit_events=len(store._audit),
            disposed=tuple(disposed),
            damaged=tuple(damaged),
            orphaned=tuple(orphaned),
            migrated=tuple(migrated),
            cold_records=tuple(sorted(store._cold_records)),
        )
        return store

    @property
    def vault(self) -> BackupVault:
        return self._vault

    def refresh_media(self) -> Medium:
        """Migrate the archive to a fresh medium (aging hardware), with
        manifest verification, then sanitize and retire the old one."""
        old_medium = self._medium
        new_medium = self._media_pool.provision()
        destination = WormStore(device=new_medium.device, clock=self._clock)
        engine = MigrationEngine(self._trust, clock=self._clock, custody=None)
        result = engine.migrate(
            self._worm, destination, self._signer, self._config.site_id
        )
        if not result.ok:
            self._audit.append(
                AuditAction.MIGRATION_FAILED, "system", new_medium.medium_id,
                {"missing": list(result.missing), "corrupted": list(result.corrupted)},
            )
            raise IntegrityError(
                f"media refresh failed verification: missing={result.missing} "
                f"corrupted={result.corrupted}"
            )
        self._worm = destination
        self._medium = new_medium
        self._disposition = DispositionWorkflow(
            self._worm, self._shredder, clock=self._clock
        )
        for object_id in self._worm.object_ids():
            handle = self._keys.get(_record_id_of(object_id))
            if handle is not None:
                self._disposition.register_key_handle(object_id, handle)
        old_medium.dispose(sanitize_first=True)
        # The archive now lives on fresh media: re-verify everything.
        self._dirty_records = set(self._chains) - self._disposed
        self._audit.append(
            AuditAction.MIGRATION_COMPLETED, "system", new_medium.medium_id,
            {"from": old_medium.medium_id, "objects": result.copied},
        )
        self._audit.append(
            AuditAction.MEDIA_DISPOSED, "system", old_medium.medium_id, {}
        )
        return new_medium

    def retention_sweep(self) -> list[str]:
        """Records whose every version is past retention (disposal queue)."""
        now = self._clock.now()
        due = []
        for record_id in self.record_ids():
            if record_id in self._cold_records:
                # the manifest carries the latest expiry across the
                # member's versions; holds cannot exist on cold records
                # (place_hold recalls first, demotion skips held ones)
                if self._cold.member(record_id).expires_at <= now:
                    due.append(record_id)
                continue
            chain = self._chains[record_id]
            object_ids = [_version_object_id(record_id, n) for n in range(len(chain))]
            if all(
                self._worm.retention.is_deletable(object_id, now)
                for object_id in object_ids
            ):
                due.append(record_id)
        return due

    @property
    def medium(self) -> Medium:
        return self._medium

    @property
    def media_pool(self) -> MediaPool:
        return self._media_pool

    @property
    def worm(self) -> WormStore:
        return self._worm

    @property
    def custody(self) -> CustodyRegistry:
        return self._custody

    @property
    def provenance(self) -> ProvenanceGraph:
        return self._provenance

    @property
    def audit_log(self) -> AuditLog:
        return self._audit

    @property
    def checkpoints(self) -> CheckpointStore:
        """The MAC-sealed watermark store backing incremental verify."""
        return self._checkpoints

    def dirty_record_ids(self) -> list[str]:
        """Records awaiting re-verification by the incremental
        integrity path."""
        return sorted(self._dirty_records)

    @property
    def witness(self) -> AnchorWitness:
        return self._witness

    @property
    def signer(self) -> Signer:
        return self._signer

    def place_hold(
        self, record_id: str, hold_id: str, *, actor_id: str
    ) -> None:
        """Litigation hold across every version of a record.  A cold
        record is recalled first — holds freeze a record in the warm
        tier for fast legal access, and the demotion policy skips held
        records until the hold lifts."""
        chain = self._chain_for(record_id)
        if record_id in self._cold_records:
            self._recall(record_id, actor_id=actor_id)
        for n in range(len(chain)):
            self._worm.retention.place_hold(_version_object_id(record_id, n), hold_id)
        self._audit.append(
            AuditAction.RETENTION_HOLD_PLACED, actor_id, record_id, {"hold": hold_id}
        )

    def release_hold(
        self, record_id: str, hold_id: str, *, actor_id: str
    ) -> None:
        chain = self._chain_for(record_id)
        for n in range(len(chain)):
            self._worm.retention.release_hold(_version_object_id(record_id, n), hold_id)
        self._audit.append(
            AuditAction.RETENTION_HOLD_RELEASED, actor_id, record_id, {"hold": hold_id}
        )
