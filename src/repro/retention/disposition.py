"""The end-of-life disposition workflow.

HIPAA §164.310(d)(2)(i) requires *policies and procedures* for final
disposition — not just the ability to delete.  The workflow here:

1. ``identify()`` — sweep the WORM store's retention state for records
   past their term with no litigation hold;
2. ``approve(record_id, approver)`` — a human (records manager) signs
   off; records under review cannot be destroyed;
3. ``execute(record_id)`` — tombstone in the store, shred key + extents
   via :class:`~repro.retention.shredder.SecureShredder`, emit a
   :class:`DispositionCertificate`.

Skipping a step raises :class:`~repro.errors.DispositionError`.  The
engine layer audits each transition.

Whether a step may proceed is decided by the disposition ruleset
(:func:`repro.policy.compiler.disposition_ruleset`): the workflow
measures ticket facts, the policy engine decides, and the *allow
decision itself* is the destruction authorization handed to the
shredder and the WORM tombstone — a forgeable boolean no longer exists
anywhere on the destruction path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.keys import KeyHandle
from repro.errors import DispositionError
from repro.policy.compiler import disposition_ruleset
from repro.policy.engine import PolicyEngine, PolicyEnv
from repro.policy.model import DESTRUCTION_ACTION, Decision, PolicyContext
from repro.retention.shredder import SecureShredder, ShredReport
from repro.util.clock import Clock, WallClock
from repro.worm.store import WormStore


class DispositionState(enum.Enum):
    IDENTIFIED = "identified"
    APPROVED = "approved"
    DESTROYED = "destroyed"


@dataclass(frozen=True)
class DispositionCertificate:
    """The durable proof a record was lawfully destroyed."""

    object_id: str
    identified_at: float
    approved_at: float
    approved_by: str
    destroyed_at: float
    shred_report: ShredReport


@dataclass
class _Ticket:
    object_id: str
    state: DispositionState
    identified_at: float
    approved_at: float | None = None
    approved_by: str = ""


class DispositionWorkflow:
    """Identify → approve → execute, with no shortcuts."""

    def __init__(
        self,
        store: WormStore,
        shredder: SecureShredder,
        clock: Clock | None = None,
        key_handle_for: dict[str, KeyHandle] | None = None,
    ) -> None:
        self._store = store
        self._shredder = shredder
        self._clock = clock or WallClock()
        self._key_handles = key_handle_for if key_handle_for is not None else {}
        self._tickets: dict[str, _Ticket] = {}
        self._certificates: dict[str, DispositionCertificate] = {}
        self._policy = PolicyEngine(
            disposition_ruleset(),
            env=PolicyEnv(retention=store.retention, clock=self._clock),
        )

    def _decide(self, actor: str, action: str, object_id: str, **facts) -> Decision:
        """One policy decision over measured ticket facts; raises the
        typed denial (DispositionError / RetentionError) on deny."""
        return self._policy.decide(
            actor, action, object_id, PolicyContext(facts=facts)
        ).require()

    def register_key_handle(self, object_id: str, handle: KeyHandle) -> None:
        """Associate a data key with an object (done at write time)."""
        self._key_handles[object_id] = handle

    # -- step 1: identify ----------------------------------------------------

    def identify(self) -> list[str]:
        """Sweep for destroyable records; opens tickets for new ones."""
        now = self._clock.now()
        newly = []
        for object_id in self._store.retention.expired_objects(now):
            if object_id in self._tickets or object_id in self._certificates:
                continue
            if object_id not in self._store:
                continue  # already tombstoned outside the workflow
            self._tickets[object_id] = _Ticket(
                object_id=object_id,
                state=DispositionState.IDENTIFIED,
                identified_at=now,
            )
            newly.append(object_id)
        return newly

    def pending(self) -> list[str]:
        """Tickets awaiting approval."""
        return sorted(
            object_id
            for object_id, ticket in self._tickets.items()
            if ticket.state is DispositionState.IDENTIFIED
        )

    # -- step 2: approve ------------------------------------------------------

    def approve(self, object_id: str, approver: str) -> None:
        ticket = self._tickets.get(object_id)
        self._decide(
            approver or "anonymous",
            "approve_disposition",
            object_id,
            ticket_missing=ticket is None,
            ticket_not_awaiting=(
                ticket is not None and ticket.state is not DispositionState.IDENTIFIED
            ),
            ticket_state=ticket.state.value if ticket is not None else "absent",
            approver_named=bool(approver),
        )
        ticket.state = DispositionState.APPROVED
        ticket.approved_at = self._clock.now()
        ticket.approved_by = approver

    # -- step 3: execute ---------------------------------------------------------

    def execute(self, object_id: str) -> DispositionCertificate:
        """Destroy the record and certify it."""
        ticket = self._tickets.get(object_id)
        # One decision covers the whole execution: ticket lifecycle
        # facts plus the live retention re-check (a hold may have
        # landed between approval and execution).  The allow decision
        # is the destruction authorization the tombstone and the
        # shredder both verify.
        authorization = self._decide(
            ticket.approved_by if ticket is not None else "anonymous",
            DESTRUCTION_ACTION,
            object_id,
            ticket_missing=ticket is None,
            ticket_not_approved=(
                ticket is not None and ticket.state is not DispositionState.APPROVED
            ),
            ticket_state=ticket.state.value if ticket is not None else "absent",
        )
        offset, size = self._store.physical_extent(object_id)
        self._store.delete(object_id, authorization=authorization)
        report = self._shredder.shred(
            object_id=object_id,
            key_handle=self._key_handles.get(object_id),
            extents=[(self._store.device, offset, size)],
            authorization=authorization,
        )
        # Certified destruction re-seals the containing journal frame so
        # crash recovery reads the zeroed extent as an intentional hole,
        # not a torn write (which would discard batch neighbours).
        self._store.reseal_shredded(object_id)
        ticket.state = DispositionState.DESTROYED
        certificate = DispositionCertificate(
            object_id=object_id,
            identified_at=ticket.identified_at,
            approved_at=ticket.approved_at or 0.0,
            approved_by=ticket.approved_by,
            destroyed_at=self._clock.now(),
            shred_report=report,
        )
        self._certificates[object_id] = certificate
        del self._tickets[object_id]
        return certificate

    def certificate_for(self, object_id: str) -> DispositionCertificate:
        certificate = self._certificates.get(object_id)
        if certificate is None:
            raise DispositionError(f"no disposition certificate for {object_id}")
        return certificate

    def certificates(self) -> list[DispositionCertificate]:
        return [self._certificates[k] for k in sorted(self._certificates)]

    def run_full_cycle(self, approver: str) -> list[DispositionCertificate]:
        """Convenience: identify, approve, and execute everything due."""
        self.identify()
        issued = []
        for object_id in self.pending():
            self.approve(object_id, approver)
            issued.append(self.execute(object_id))
        return issued
