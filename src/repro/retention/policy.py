"""Retention schedules derived from the regulations in the paper.

Durations (the ones the paper cites, plus standard HIPAA figures):

* OSHA 29 CFR 1910.1020(d)(1)(ii): employee exposure records and
  employee medical records — **30 years** (exposure: +30 after last
  exposure; we model the flat 30 the paper quotes).
* HIPAA administrative documentation (§164.316(b)(2)(i)) — 6 years.
* Common US state minimums for adult clinical records — 7 years
  (used here for encounters/observations/notes).
* EU 95/46/EC / UK DPA 1998 — no fixed number; they mandate *disposal
  after the retention period* and accuracy during it.  We model them as
  constraints (disposal-required, correction-required) rather than
  durations.

A record's effective duration is the **maximum** over matching rules —
keeping a record longer than one regulation requires is fine as long as
another requires it; deleting earlier than any rule allows is the
violation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RetentionError
from repro.records.model import RecordType
from repro.util.clock import SECONDS_PER_YEAR
from repro.worm.retention_lock import RetentionTerm


@dataclass(frozen=True)
class RetentionRule:
    """One (regulation, record type) -> duration rule."""

    regulation: str
    record_type: RecordType
    duration_years: float
    citation: str = ""

    def __post_init__(self) -> None:
        if self.duration_years < 0:
            raise RetentionError("retention duration must be non-negative")


class RetentionPolicy:
    """A set of rules and the effective-duration computation."""

    def __init__(self, rules: list[RetentionRule] | None = None) -> None:
        self._rules: list[RetentionRule] = list(rules or [])

    def add_rule(self, rule: RetentionRule) -> None:
        self._rules.append(rule)

    @property
    def rules(self) -> list[RetentionRule]:
        return list(self._rules)

    def rules_for(self, record_type: RecordType) -> list[RetentionRule]:
        return [rule for rule in self._rules if rule.record_type is record_type]

    def duration_years_for(self, record_type: RecordType) -> float:
        """Effective duration: the maximum over applicable rules."""
        matching = self.rules_for(record_type)
        if not matching:
            raise RetentionError(
                f"no retention rule covers record type {record_type.value}"
            )
        return max(rule.duration_years for rule in matching)

    def term_for(self, record_type: RecordType, start: float) -> RetentionTerm:
        """The WORM retention term a record of this type gets at write time."""
        years = self.duration_years_for(record_type)
        return RetentionTerm(start=start, duration_seconds=years * SECONDS_PER_YEAR)

    def governing_rule(self, record_type: RecordType) -> RetentionRule:
        """The rule that sets the effective duration (ties: first added)."""
        matching = self.rules_for(record_type)
        if not matching:
            raise RetentionError(
                f"no retention rule covers record type {record_type.value}"
            )
        return max(matching, key=lambda rule: rule.duration_years)


def _standard_rules() -> list[RetentionRule]:
    return [
        RetentionRule(
            "OSHA", RecordType.EXPOSURE_RECORD, 30.0, "29 CFR 1910.1020(d)(1)(ii)"
        ),
        RetentionRule(
            "OSHA", RecordType.PATIENT_DEMOGRAPHICS, 30.0, "29 CFR 1910.1020(d)(1)(i)"
        ),
        RetentionRule("HIPAA", RecordType.PATIENT_DEMOGRAPHICS, 6.0, "45 CFR 164.316(b)(2)(i)"),
        RetentionRule("STATE", RecordType.ENCOUNTER, 7.0, "state minimum (adult records)"),
        RetentionRule("STATE", RecordType.OBSERVATION, 7.0, "state minimum (adult records)"),
        RetentionRule("STATE", RecordType.CLINICAL_NOTE, 7.0, "state minimum (adult records)"),
        RetentionRule("HIPAA", RecordType.INSURANCE_CLAIM, 6.0, "45 CFR 164.316(b)(2)(i)"),
    ]


STANDARD_POLICY = RetentionPolicy(_standard_rules())
"""The default schedule Curator ships with (see module docstring)."""
