"""Secure destruction of stored data.

Two independent mechanisms, applied together:

1. **Key shredding** — the record's data key is destroyed in the
   :class:`~repro.crypto.keys.KeyStore`.  From that instant the
   ciphertext is computationally unreadable everywhere it exists,
   including backups the shredder cannot reach (their wrapped key is
   what got destroyed).
2. **Extent overwrite** — the record's bytes on the primary device are
   overwritten with zeros (configurable passes).  Defense in depth:
   even the ciphertext disappears, so future cryptanalytic surprises or
   key-escrow compromises cannot resurrect the record from this medium.

The shredder never decides *whether* destruction is lawful — that's the
disposition workflow's job; it refuses to run unless handed an *allow*
:class:`~repro.policy.model.Decision` made for the destruction action
and covering the object (the old ``authorized=True`` boolean could be
forged by any call site without leaving a decision trail), keeping the
two concerns impossible to shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.crypto.keys import KeyHandle, KeyStore
from repro.errors import DispositionError
from repro.policy.model import Decision, ensure_destruction_authorized
from repro.storage.block import BlockDevice


@dataclass(frozen=True)
class ShredReport:
    """Evidence of one physical+cryptographic destruction."""

    object_id: str
    key_shredded: bool
    key_shredded_at: float | None
    extents_overwritten: int
    bytes_overwritten: int
    overwrite_passes: int


class SecureShredder:
    """Destroys record data under disposition authority."""

    def __init__(self, keystore: KeyStore, overwrite_passes: int = 3) -> None:
        if overwrite_passes < 1:
            raise DispositionError("at least one overwrite pass is required")
        self._keystore = keystore
        self._passes = overwrite_passes
        self._policies: list[Any] = []
        self._cache_purges: list[Callable[[], Any]] = []

    def bind_policy(self, engine: Any) -> None:
        """Register a policy engine whose decision cache is purged after
        every successful shred (a destroyed record's cached allows must
        not outlive it)."""
        self._policies.append(engine)

    def bind_cache(self, purge: Callable[[], Any]) -> None:
        """Register a derived-material cache to purge after every
        successful shred.

        Every memo that holds (or can regenerate) material derived from
        destroyed data — aggregated-signature root memos, ed25519 key
        expansions, keystream prefixes — must be registered here, so a
        shred empties them all without any call site having to remember
        each cache individually."""
        self._cache_purges.append(purge)

    def shred(
        self,
        object_id: str,
        key_handle: KeyHandle | None,
        extents: list[tuple[BlockDevice, int, int]],
        authorization: Decision | None = None,
    ) -> ShredReport:
        """Destroy one object's key and bytes.

        *extents* is a list of (device, offset, size) ranges holding the
        object's ciphertext.  *authorization* must be an allow
        :class:`~repro.policy.model.Decision` for the destruction
        action covering this object — callers obtain it from the
        disposition workflow; passing ``None`` (or a denial, or a
        decision about anything else) raises, which keeps ad-hoc
        destruction out of the codebase.
        """
        ensure_destruction_authorized(authorization, object_id)
        shredded_at = None
        if key_handle is not None:
            shredded_at = self._keystore.shred(key_handle)
            # Belt and braces: shred() already purges the cipher memo
            # and cached keystream, but destruction must never depend on
            # one call site remembering to — invalidate explicitly.
            self._keystore.invalidate_cached(key_handle)
        bytes_overwritten = 0
        for device, offset, size in extents:
            zeros = bytes(size)
            for _ in range(self._passes):
                device.raw_write(offset, zeros)
            bytes_overwritten += size
        for engine in self._policies:
            engine.purge_decisions()
        for purge in self._cache_purges:
            purge()
        return ShredReport(
            object_id=object_id,
            key_shredded=key_handle is not None,
            key_shredded_at=shredded_at,
            extents_overwritten=len(extents),
            bytes_overwritten=bytes_overwritten,
            overwrite_passes=self._passes,
        )

    def verify_destroyed(
        self,
        key_handle: KeyHandle | None,
        extents: list[tuple[BlockDevice, int, int]],
    ) -> bool:
        """Post-destruction audit: key gone AND extents zeroed."""
        if key_handle is not None and not self._keystore.is_shredded(key_handle):
            return False
        for device, offset, size in extents:
            if any(device.raw_read(offset, size)):
                return False
        return True
