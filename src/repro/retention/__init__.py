"""Retention schedules, end-of-life disposition, and secure shredding.

The regulations surveyed in the paper disagree on durations but agree
on structure: records must be kept *at least* N years (30 for OSHA
exposure/medical records, 6 for HIPAA documentation, EU/UK leave it to
member-state schedules), must remain intact for that whole period, and
then must be *disposed of trustworthily*.

* :mod:`repro.retention.policy` — machine-readable schedules mapping
  (regulation, record type) to durations; the effective retention of a
  record is the maximum over all applicable rules.
* :mod:`repro.retention.disposition` — the end-of-life workflow:
  identify expired records → (optional) review → destroy → certify.
  Every step is auditable; destruction without a certificate is a bug.
* :mod:`repro.retention.shredder` — destruction itself: shred the
  record's data key (cryptographic deletion) *and* overwrite its device
  extents (defense in depth on media that will be reused/disposed).
"""

from repro.retention.disposition import DispositionCertificate, DispositionWorkflow
from repro.retention.policy import RetentionPolicy, RetentionRule, STANDARD_POLICY
from repro.retention.shredder import SecureShredder, ShredReport

__all__ = [
    "DispositionCertificate",
    "DispositionWorkflow",
    "RetentionPolicy",
    "RetentionRule",
    "STANDARD_POLICY",
    "SecureShredder",
    "ShredReport",
]
