"""The compliance checker: behavioural evaluation of storage models.

Runs the threat/probe harness against a model factory, then folds the
per-requirement verdicts into per-regulation findings.  This is the
code path behind both experiment E1 (the requirements matrix) and the
"would this deployment pass an audit" reports in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.compliance.regulations import REGULATIONS, Regulation
from repro.compliance.requirements import Requirement

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.threats.harness import ModelFactory, RequirementVerdict


@dataclass(frozen=True)
class RegulationFinding:
    """One regulation's outcome for one model."""

    regulation: str
    failed_clauses: tuple[str, ...]
    passed_clauses: tuple[str, ...]

    @property
    def compliant(self) -> bool:
        return not self.failed_clauses


@dataclass
class ModelEvaluation:
    """Everything the checker learned about one model."""

    model_name: str
    verdicts: dict[Requirement, RequirementVerdict]
    findings: list[RegulationFinding] = field(default_factory=list)

    @property
    def requirements_passed(self) -> int:
        return sum(1 for verdict in self.verdicts.values() if verdict.passed)

    @property
    def requirements_total(self) -> int:
        return len(self.verdicts)

    @property
    def fully_compliant(self) -> bool:
        return all(verdict.passed for verdict in self.verdicts.values())

    def failed_requirements(self) -> list[Requirement]:
        return [req for req, verdict in self.verdicts.items() if not verdict.passed]


class ComplianceChecker:
    """Evaluates storage models against the requirement taxonomy."""

    def __init__(self, regulations: tuple[Regulation, ...] = REGULATIONS) -> None:
        self._regulations = regulations

    def evaluate_model(
        self, model_name: str, factory: "ModelFactory", seed: int = 1234
    ) -> ModelEvaluation:
        """Probe one model and derive regulation findings."""
        from repro.threats.harness import ThreatHarness

        verdicts = ThreatHarness(factory, seed=seed).evaluate()
        evaluation = ModelEvaluation(model_name=model_name, verdicts=verdicts)
        for regulation in self._regulations:
            failed, passed = [], []
            for clause in regulation.clauses:
                clause_ok = all(
                    verdicts[req].passed for req in clause.implies if req in verdicts
                )
                (passed if clause_ok else failed).append(clause.citation)
            evaluation.findings.append(
                RegulationFinding(
                    regulation=regulation.name,
                    failed_clauses=tuple(failed),
                    passed_clauses=tuple(passed),
                )
            )
        return evaluation

    def evaluate_all(
        self, factories: dict[str, "ModelFactory"], seed: int = 1234
    ) -> list[ModelEvaluation]:
        """Evaluate every model (E1's full matrix)."""
        return [
            self.evaluate_model(name, factory, seed=seed)
            for name, factory in factories.items()
        ]
