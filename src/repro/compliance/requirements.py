"""The Section-3 requirement taxonomy, made machine-readable.

Each requirement is one row of the E1 matrix.  The split of the paper's
prose requirements into testable entries:

* *Confidentiality and Access Control* splits into outsider
  confidentiality (stolen media), insider confidentiality (index/device
  leakage is the measurable case), and enforced access control.
* *Integrity* → tamper evidence against the smart insider.
* *Availability and Performance* → efficient mutation (corrections),
  plus the trustworthy-index requirement (timely search that does not
  leak).
* *Logging, Audit Trails, and Provenance* → trustworthy (tamper-evident,
  complete) audit; custody provenance.
* *Long Retention and Secure Migration* → guaranteed retention;
  verifiable migration.
* *Secure deletion / media sanitization* (from §2's HIPAA disposal and
  media re-use clauses) → residue-free disposal.
* *Backup* → off-site exact-copy recovery.

Cost (§3) is a quantitative trade-off, not a pass/fail property — it is
measured by E10 rather than scored here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Requirement(enum.Enum):
    """Testable requirements for compliant health-record storage."""

    CONFIDENTIALITY_OUTSIDER = "confidentiality_outsider"
    CONFIDENTIALITY_INSIDER = "confidentiality_insider"
    ACCESS_CONTROL = "access_control"
    INTEGRITY_TAMPER_EVIDENCE = "integrity_tamper_evidence"
    CORRECTIONS_WITH_HISTORY = "corrections_with_history"
    TRUSTWORTHY_INDEX = "trustworthy_index"
    TRUSTWORTHY_AUDIT = "trustworthy_audit"
    ACCESS_ACCOUNTABILITY = "access_accountability"
    GUARANTEED_RETENTION = "guaranteed_retention"
    SECURE_DELETION = "secure_deletion"
    VERIFIABLE_MIGRATION = "verifiable_migration"
    PROVENANCE_CUSTODY = "provenance_custody"
    BACKUP_RECOVERY = "backup_recovery"


@dataclass(frozen=True)
class RequirementDetail:
    """Provenance of a requirement: where the paper/regulations say so."""

    requirement: Requirement
    title: str
    paper_section: str
    regulation_basis: tuple[str, ...]


REQUIREMENT_DETAILS: dict[Requirement, RequirementDetail] = {
    Requirement.CONFIDENTIALITY_OUTSIDER: RequirementDetail(
        Requirement.CONFIDENTIALITY_OUTSIDER,
        "Confidentiality against media theft (encryption at rest)",
        "§3 Confidentiality",
        ("HIPAA §164.306(a)(1)", "EU 95/46/EC Art. 17", "UK DPA 1998"),
    ),
    Requirement.CONFIDENTIALITY_INSIDER: RequirementDetail(
        Requirement.CONFIDENTIALITY_INSIDER,
        "Confidentiality against malicious insiders",
        "§3 Confidentiality / §4 (encryption does not stop insiders)",
        ("HIPAA §164.306(a)(2)",),
    ),
    Requirement.ACCESS_CONTROL: RequirementDetail(
        Requirement.ACCESS_CONTROL,
        "Access limited to authorized individuals",
        "§2.1 Security / §3 Confidentiality and Access Control",
        ("HIPAA §164.306(a)(3-4)", "EU 95/46/EC Art. 17"),
    ),
    Requirement.INTEGRITY_TAMPER_EVIDENCE: RequirementDetail(
        Requirement.INTEGRITY_TAMPER_EVIDENCE,
        "Tampering by insiders must be identified",
        "§3 Integrity",
        ("HIPAA §164.306(a)(1)", "EU 95/46/EC Art. 6 (accuracy)"),
    ),
    Requirement.CORRECTIONS_WITH_HISTORY: RequirementDetail(
        Requirement.CORRECTIONS_WITH_HISTORY,
        "Corrections possible, with prior versions preserved",
        "§2.1 Privacy (right to correction) / §4 (WORM lacks corrections)",
        ("HIPAA Privacy Rule", "UK DPA 1998 (accuracy, logging changes)"),
    ),
    Requirement.TRUSTWORTHY_INDEX: RequirementDetail(
        Requirement.TRUSTWORTHY_INDEX,
        "Index enables timely search without leaking keywords",
        "§3 Availability and Performance",
        ("HIPAA Privacy Rule (the 'Cancer' inference)",),
    ),
    Requirement.TRUSTWORTHY_AUDIT: RequirementDetail(
        Requirement.TRUSTWORTHY_AUDIT,
        "Audit trail is tamper-evident",
        "§3 Logging, Audit Trails, and Provenance",
        ("HIPAA §164.310(d)(2)(iii)",),
    ),
    Requirement.ACCESS_ACCOUNTABILITY: RequirementDetail(
        Requirement.ACCESS_ACCOUNTABILITY,
        "Every record access is logged",
        "§3 Logging (HIPAA mandates recording all access)",
        ("HIPAA Privacy Rule (accounting of disclosures)",),
    ),
    Requirement.GUARANTEED_RETENTION: RequirementDetail(
        Requirement.GUARANTEED_RETENTION,
        "Records cannot be destroyed inside their retention term",
        "§3 Support for Long Retention",
        ("OSHA 29 CFR 1910.1020(d)(1)(ii)", "EU 95/46/EC Art. 6"),
    ),
    Requirement.SECURE_DELETION: RequirementDetail(
        Requirement.SECURE_DELETION,
        "Expired records are destroyed without recoverable residue",
        "§3 (trustworthy disposal) / §2.1 Disposal & Media re-use",
        ("HIPAA §164.310(d)(2)(i-ii)", "EU 95/46/EC Art. 6(e)", "UK DPA 1998"),
    ),
    Requirement.VERIFIABLE_MIGRATION: RequirementDetail(
        Requirement.VERIFIABLE_MIGRATION,
        "Migration between systems is verifiable (complete and intact)",
        "§3 Secure Migration",
        ("HIPAA §164.310(d)(2)(iii-iv)", "OSHA (transfer on ownership change)"),
    ),
    Requirement.PROVENANCE_CUSTODY: RequirementDetail(
        Requirement.PROVENANCE_CUSTODY,
        "Chain of custody is recorded and verifiable",
        "§3 Provenance / §4 (no current system implements it)",
        ("HIPAA §164.310(d)(2)(iii)",),
    ),
    Requirement.BACKUP_RECOVERY: RequirementDetail(
        Requirement.BACKUP_RECOVERY,
        "Exact off-site copies survive site disasters",
        "§3 Backup",
        ("HIPAA §164.310(d)(2)(iv)",),
    ),
}
