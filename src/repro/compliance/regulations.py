"""The surveyed regulations as machine-readable catalogs.

Each :class:`Regulation` maps its clauses (as cited by the paper's
Section 2) to the requirement-taxonomy entries they imply.  The
compliance checker uses this to answer per-regulation questions: "which
HIPAA clauses does this storage model fail?"
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compliance.requirements import Requirement


@dataclass(frozen=True)
class RegulationClause:
    """One cited clause and the storage requirements it implies."""

    citation: str
    summary: str
    implies: tuple[Requirement, ...]


@dataclass(frozen=True)
class Regulation:
    """A regulation with its storage-relevant clauses."""

    name: str
    jurisdiction: str
    clauses: tuple[RegulationClause, ...]

    def requirements(self) -> set[Requirement]:
        return {req for clause in self.clauses for req in clause.implies}

    def clauses_implying(self, requirement: Requirement) -> list[RegulationClause]:
        return [clause for clause in self.clauses if requirement in clause.implies]


HIPAA = Regulation(
    name="HIPAA",
    jurisdiction="United States",
    clauses=(
        RegulationClause(
            "§164.306(a)(1)",
            "Ensure confidentiality, integrity, and availability of all EPHI",
            (
                Requirement.CONFIDENTIALITY_OUTSIDER,
                Requirement.INTEGRITY_TAMPER_EVIDENCE,
                Requirement.BACKUP_RECOVERY,
            ),
        ),
        RegulationClause(
            "§164.306(a)(2)",
            "Protect against reasonably anticipated threats (incl. insiders)",
            (
                Requirement.CONFIDENTIALITY_INSIDER,
                Requirement.INTEGRITY_TAMPER_EVIDENCE,
            ),
        ),
        RegulationClause(
            "§164.306(a)(3)",
            "Protect against non-permitted uses or disclosures",
            (Requirement.ACCESS_CONTROL, Requirement.TRUSTWORTHY_INDEX),
        ),
        RegulationClause(
            "§164.310(d)(2)(i)",
            "Policies for final disposition of EPHI and its media",
            (Requirement.SECURE_DELETION,),
        ),
        RegulationClause(
            "§164.310(d)(2)(ii)",
            "Remove EPHI from media before re-use",
            (Requirement.SECURE_DELETION,),
        ),
        RegulationClause(
            "§164.310(d)(2)(iii)",
            "Record the movements of hardware/media and persons responsible",
            (
                Requirement.TRUSTWORTHY_AUDIT,
                Requirement.PROVENANCE_CUSTODY,
                Requirement.VERIFIABLE_MIGRATION,
            ),
        ),
        RegulationClause(
            "§164.310(d)(2)(iv)",
            "Retrievable exact copy of EPHI before equipment movement",
            (Requirement.BACKUP_RECOVERY,),
        ),
        RegulationClause(
            "Privacy Rule (accounting of disclosures)",
            "Record all access to medical records",
            (Requirement.ACCESS_ACCOUNTABILITY,),
        ),
        RegulationClause(
            "Privacy Rule (right to amend)",
            "Individuals may request correction of their records",
            (Requirement.CORRECTIONS_WITH_HISTORY,),
        ),
    ),
)

OSHA = Regulation(
    name="OSHA 29 CFR 1910.1020",
    jurisdiction="United States",
    clauses=(
        RegulationClause(
            "(d)(1)(i-ii)",
            "Employee medical and exposure records preserved >= 30 years",
            (Requirement.GUARANTEED_RETENTION,),
        ),
        RegulationClause(
            "(h)",
            "Transfer records to the new owner when the business changes hands",
            (Requirement.VERIFIABLE_MIGRATION, Requirement.PROVENANCE_CUSTODY),
        ),
    ),
)

EU_DPD = Regulation(
    name="EU Directive 95/46/EC",
    jurisdiction="European Union",
    clauses=(
        RegulationClause(
            "Article 6",
            "Accuracy of personal records; disposal after the retention period",
            (
                Requirement.INTEGRITY_TAMPER_EVIDENCE,
                Requirement.CORRECTIONS_WITH_HISTORY,
                Requirement.SECURE_DELETION,
                Requirement.GUARANTEED_RETENTION,
            ),
        ),
        RegulationClause(
            "Article 17",
            "Confidentiality and availability measures",
            (
                Requirement.CONFIDENTIALITY_OUTSIDER,
                Requirement.ACCESS_CONTROL,
                Requirement.BACKUP_RECOVERY,
            ),
        ),
    ),
)

UK_DPA = Regulation(
    name="UK Data Protection Act 1998",
    jurisdiction="United Kingdom",
    clauses=(
        RegulationClause(
            "Principles 4-5",
            "Accuracy, logging of changes, mandatory disposal after retention",
            (
                Requirement.CORRECTIONS_WITH_HISTORY,
                Requirement.TRUSTWORTHY_AUDIT,
                Requirement.SECURE_DELETION,
            ),
        ),
        RegulationClause(
            "Principle 7",
            "Strict confidentiality of personal health records",
            (
                Requirement.CONFIDENTIALITY_OUTSIDER,
                Requirement.CONFIDENTIALITY_INSIDER,
                Requirement.ACCESS_CONTROL,
            ),
        ),
    ),
)

REGULATIONS: tuple[Regulation, ...] = (HIPAA, OSHA, EU_DPD, UK_DPA)
