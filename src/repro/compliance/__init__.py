"""Machine-readable compliance: regulations, requirements, checking.

* :mod:`repro.compliance.requirements` — the paper's Section-3
  requirement taxonomy as an enum, each entry citing the paper section
  and regulation clauses behind it.
* :mod:`repro.compliance.regulations` — the surveyed regulations
  (HIPAA, OSHA 29 CFR 1910.1020, EU 95/46/EC, UK DPA 1998) as catalogs
  mapping clauses to requirements.
* :mod:`repro.compliance.checker` — evaluates a storage model against
  the taxonomy using the attack/probe harness (behavioural evidence,
  not self-declared capability flags).
* :mod:`repro.compliance.report` — renders the evaluation as the
  requirements matrix (experiment E1) and per-regulation reports.
"""

from repro.compliance.checker import ComplianceChecker, ModelEvaluation
from repro.compliance.regulations import REGULATIONS, Regulation, RegulationClause
from repro.compliance.report import render_matrix, render_regulation_report
from repro.compliance.requirements import Requirement, REQUIREMENT_DETAILS

__all__ = [
    "ComplianceChecker",
    "ModelEvaluation",
    "REGULATIONS",
    "Regulation",
    "RegulationClause",
    "render_matrix",
    "render_regulation_report",
    "Requirement",
    "REQUIREMENT_DETAILS",
]
