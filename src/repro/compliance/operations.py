"""Operational compliance findings for a running Curator deployment.

The E1 checker scores a storage *design*; an auditor also examines the
*operation* of a live deployment: are break-glass grants reviewed on
time, is media past its service life, has the audit log been anchored
recently, are there disposition tickets stuck awaiting approval, do all
custody chains verify today.  :func:`operational_findings` runs those
checks against a live :class:`~repro.core.engine.CuratorStore`.

Each finding has a severity (``violation`` — a clause is being breached
now; ``warning`` — drifting toward one) and an actionable message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import CuratorStore


@dataclass(frozen=True)
class OperationalFinding:
    """One audit observation about a live deployment."""

    severity: str  # "violation" | "warning"
    area: str
    message: str
    citation: str = ""


def operational_findings(
    store: CuratorStore,
    anchor_staleness_events: int = 256,
) -> list[OperationalFinding]:
    """Inspect a live store and return its current findings (empty list
    == operationally clean)."""
    findings: list[OperationalFinding] = []

    # 1. Break-glass review hygiene.
    overdue = store.breakglass.overdue_reviews()
    if overdue:
        findings.append(
            OperationalFinding(
                severity="violation",
                area="emergency_access",
                message=(
                    f"{len(overdue)} break-glass grant(s) past the review "
                    f"deadline without privacy-officer disposition"
                ),
                citation="HIPAA Privacy Rule (access review procedures)",
            )
        )
    pending = store.breakglass.pending_review()
    if pending and not overdue:
        findings.append(
            OperationalFinding(
                severity="warning",
                area="emergency_access",
                message=f"{len(pending)} break-glass grant(s) awaiting review",
            )
        )

    # 2. Media fleet age.
    aged = store.media_pool.due_for_replacement()
    if aged:
        findings.append(
            OperationalFinding(
                severity="warning",
                area="media",
                message=(
                    f"{len(aged)} active medium/media past rated service life: "
                    f"{[m.medium_id for m in aged]} — schedule a refresh migration"
                ),
                citation="HIPAA §164.310(d)(2)(iii)",
            )
        )

    # 3. Audit anchoring freshness.
    latest_anchor = store.witness.latest()
    anchored_size = latest_anchor.log_size if latest_anchor else 0
    unanchored = len(store.audit_log) - anchored_size
    if unanchored > anchor_staleness_events:
        findings.append(
            OperationalFinding(
                severity="warning",
                area="audit",
                message=(
                    f"{unanchored} audit events not yet covered by an external "
                    f"anchor (truncation-attack exposure window)"
                ),
            )
        )

    # 4. Audit trail verification.
    if not store.verify_audit_trail().ok:
        findings.append(
            OperationalFinding(
                severity="violation",
                area="audit",
                message="the audit trail does not verify — investigate immediately",
                citation="HIPAA §164.310(d)(2)(iii)",
            )
        )

    # 5. Store integrity.
    corrupt = store.verify_integrity().violations
    if corrupt:
        findings.append(
            OperationalFinding(
                severity="violation",
                area="integrity",
                message=f"integrity verification failed for: {corrupt}",
                citation="HIPAA §164.306(a)(1)",
            )
        )

    # 6. Custody chains.
    custody_problems = store.custody.verify_all()
    if custody_problems:
        findings.append(
            OperationalFinding(
                severity="violation",
                area="provenance",
                message=f"custody chains failing verification: "
                f"{sorted(custody_problems)}",
                citation="HIPAA §164.310(d)(2)(iii)",
            )
        )

    # 7. Retention backlog: records past retention but not dispositioned.
    due = store.retention_sweep()
    if due:
        findings.append(
            OperationalFinding(
                severity="warning",
                area="retention",
                message=(
                    f"{len(due)} record(s) past retention awaiting disposition: "
                    f"{due[:5]}{'...' if len(due) > 5 else ''}"
                ),
                citation="HIPAA §164.310(d)(2)(i); EU 95/46/EC Art. 6(e)",
            )
        )

    # 8. Backup recency.
    if len(store.vault) == 0 and len(store.record_ids()) > 0:
        findings.append(
            OperationalFinding(
                severity="violation",
                area="backup",
                message="records exist but no backup snapshot has ever been taken",
                citation="HIPAA §164.310(d)(2)(iv)",
            )
        )

    return findings


def render_findings(findings: list[OperationalFinding]) -> str:
    """Auditor-style rendering of operational findings."""
    if not findings:
        return "Operational audit: no findings. Deployment is clean."
    lines = [f"Operational audit: {len(findings)} finding(s)"]
    for finding in sorted(findings, key=lambda f: (f.severity != "violation", f.area)):
        marker = "!!" if finding.severity == "violation" else " ~"
        lines.append(f"  [{marker}] ({finding.area}) {finding.message}")
        if finding.citation:
            lines.append(f"        basis: {finding.citation}")
    return "\n".join(lines)
