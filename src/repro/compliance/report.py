"""Rendering compliance evaluations as human-readable reports.

:func:`render_matrix` produces the E1 table (requirements × models);
:func:`render_regulation_report` produces an auditor-style report for
one model against one regulation.
"""

from __future__ import annotations

from repro.compliance.checker import ModelEvaluation
from repro.compliance.requirements import REQUIREMENT_DETAILS, Requirement

PASS_MARK = "+"
FAIL_MARK = "-"


def render_matrix(evaluations: list[ModelEvaluation]) -> str:
    """The requirements matrix: one row per requirement, one column per
    model, '+' for pass and '-' for fail (ASCII so it survives any
    terminal)."""
    if not evaluations:
        return "(no models evaluated)"
    requirements = list(Requirement)
    name_width = max(len(REQUIREMENT_DETAILS[r].title) for r in requirements)
    columns = [e.model_name for e in evaluations]
    header = "Requirement".ljust(name_width) + " | " + " | ".join(
        name.center(max(len(name), 4)) for name in columns
    )
    separator = "-" * len(header)
    lines = [header, separator]
    for requirement in requirements:
        cells = []
        for evaluation in evaluations:
            verdict = evaluation.verdicts.get(requirement)
            mark = PASS_MARK if verdict and verdict.passed else FAIL_MARK
            cells.append(mark.center(max(len(evaluation.model_name), 4)))
        lines.append(
            REQUIREMENT_DETAILS[requirement].title.ljust(name_width)
            + " | "
            + " | ".join(cells)
        )
    lines.append(separator)
    totals = [
        f"{e.requirements_passed}/{e.requirements_total}".center(
            max(len(e.model_name), 4)
        )
        for e in evaluations
    ]
    lines.append("TOTAL".ljust(name_width) + " | " + " | ".join(totals))
    return "\n".join(lines)


def render_regulation_report(evaluation: ModelEvaluation, regulation_name: str) -> str:
    """Auditor-style findings for one model against one regulation."""
    finding = next(
        (f for f in evaluation.findings if f.regulation == regulation_name), None
    )
    if finding is None:
        return f"(no findings recorded for {regulation_name})"
    lines = [
        f"Compliance report: {evaluation.model_name} vs {regulation_name}",
        f"Overall: {'COMPLIANT' if finding.compliant else 'NON-COMPLIANT'}",
        "",
    ]
    if finding.failed_clauses:
        lines.append("Failed clauses:")
        for clause in finding.failed_clauses:
            lines.append(f"  [FAIL] {clause}")
    if finding.passed_clauses:
        lines.append("Passed clauses:")
        for clause in finding.passed_clauses:
            lines.append(f"  [ ok ] {clause}")
    lines.append("")
    lines.append("Requirement evidence:")
    for requirement, verdict in evaluation.verdicts.items():
        detail = REQUIREMENT_DETAILS[requirement]
        lines.append(
            f"  [{'PASS' if verdict.passed else 'FAIL'}] {detail.title}"
        )
        lines.append(f"         {verdict.evidence}")
    return "\n".join(lines)
