"""Exception hierarchy for the Curator compliant-storage library.

Every error raised by the library derives from :class:`CuratorError`, so
callers can catch one base class at API boundaries.  Subsystems raise the
most specific subclass that applies; the class names follow the
requirement taxonomy of Hasan, Winslett & Sion (SDM@VLDB 2007).
"""

from __future__ import annotations


class CuratorError(Exception):
    """Base class for all errors raised by the repro/Curator library."""


class ConfigurationError(CuratorError):
    """A component was constructed or wired with invalid configuration."""


class ValidationError(CuratorError):
    """Input data failed structural or semantic validation."""


class CryptoError(CuratorError):
    """Base class for cryptographic failures."""


class IntegrityError(CryptoError):
    """Stored data failed an integrity check (digest/MAC/chain mismatch)."""


class AuthenticationError(CryptoError):
    """A signature or MAC did not verify against the expected key."""


class KeyManagementError(CryptoError):
    """A key was missing, already shredded, or otherwise unusable."""


class StorageError(CuratorError):
    """Base class for storage-substrate failures."""


class DeviceError(StorageError):
    """A block device rejected an operation (bounds, detached, failed)."""


class MediaLifecycleError(StorageError):
    """A medium was used in a state that forbids the operation
    (e.g. writing to disposed media, reusing unsanitized media)."""


class WormViolationError(StorageError):
    """An attempt was made to overwrite or erase write-once data."""


class CrashError(DeviceError):
    """The simulated process/power crash: a crash-point device reached
    its armed write and the process model is dead.  Raised by the
    verification substrate (:mod:`repro.verify.crashpoint`), never by
    production storage.

    ``partial`` optionally carries the prefix of the killed write that
    reached the medium before power died (a torn write); ``None`` means
    the write vanished whole.
    """

    def __init__(self, message: str, partial: bytes | None = None) -> None:
        super().__init__(message)
        self.partial = partial


class RetentionError(CuratorError):
    """A retention rule forbade the operation (early deletion, missing
    retention term, litigation hold in force)."""


class DispositionError(RetentionError):
    """The end-of-life disposition workflow was violated."""


class AccessDeniedError(CuratorError):
    """The access-control engine denied the request."""


class ConsentError(AccessDeniedError):
    """The patient's consent directives forbid the disclosure."""


class AuditError(CuratorError):
    """The audit subsystem detected a problem (broken chain, missing
    mandatory event, unverifiable anchor)."""


class ProvenanceError(CuratorError):
    """Chain-of-custody data is missing, forged, or inconsistent."""


class MigrationError(CuratorError):
    """A migration failed or could not be verified as complete/intact."""


class BackupError(CuratorError):
    """Backup creation, replication, or restore failed verification."""


class IndexError_(CuratorError):
    """The trustworthy index rejected an operation or failed a check.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class RecordError(CuratorError):
    """A health-record operation failed (unknown record, bad version,
    malformed amendment)."""


class RecordNotFoundError(RecordError):
    """The requested record or version does not exist."""


class ClusterError(CuratorError):
    """The sharded cluster detected a topology problem: a sealed
    manifest that does not verify, a recovery attempt missing a
    shard's devices, or a request routed to a shard that does not
    exist."""


class ComplianceError(CuratorError):
    """A compliance check could not be evaluated."""


class WorkloadError(CuratorError):
    """The synthetic workload generator was misused."""
