"""Consent directives and the minimum-necessary standard.

Two Privacy-Rule mechanisms the RBAC tables alone cannot express:

* **Consent** — a patient may restrict disclosure of their records to
  specific roles or purposes (e.g. "no researcher access, ever" or
  "do not disclose to billing without asking").  The
  :class:`ConsentRegistry` stores directives per patient and answers
  whether a given (role, purpose) disclosure is permitted.  Treatment
  and emergency use are non-restrictable, matching the rule that
  consent cannot block care.
* **Minimum necessary** — even an authorized reader should see only the
  fields their function needs.  :func:`minimum_necessary_view` projects
  a record body down to the field set allowed for a role.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.access.principals import Role
from repro.access.rbac import Purpose
from repro.errors import ConsentError
from repro.records.model import HealthRecord, RecordType

_NON_RESTRICTABLE = frozenset({Purpose.TREATMENT, Purpose.EMERGENCY})


@dataclass(frozen=True)
class ConsentDirective:
    """One restriction: block a role and/or a purpose."""

    directive_id: str
    blocked_roles: frozenset[Role] = field(default_factory=frozenset)
    blocked_purposes: frozenset[Purpose] = field(default_factory=frozenset)

    def blocks(self, role: Role, purpose: Purpose) -> bool:
        if purpose in _NON_RESTRICTABLE:
            return False
        return role in self.blocked_roles or purpose in self.blocked_purposes


class ConsentRegistry:
    """Per-patient consent directives."""

    def __init__(self) -> None:
        self._directives: dict[str, list[ConsentDirective]] = {}

    def add_directive(self, patient_id: str, directive: ConsentDirective) -> None:
        self._directives.setdefault(patient_id, []).append(directive)

    def revoke_directive(self, patient_id: str, directive_id: str) -> None:
        directives = self._directives.get(patient_id, [])
        remaining = [d for d in directives if d.directive_id != directive_id]
        if len(remaining) == len(directives):
            raise ConsentError(
                f"patient {patient_id} has no directive {directive_id!r}"
            )
        self._directives[patient_id] = remaining

    def directives_for(self, patient_id: str) -> list[ConsentDirective]:
        return list(self._directives.get(patient_id, []))

    def check_disclosure(
        self, patient_id: str, role: Role, purpose: Purpose
    ) -> None:
        """Raise :class:`ConsentError` if any directive blocks the
        disclosure.  Treatment/emergency purposes always pass."""
        for directive in self._directives.get(patient_id, []):
            if directive.blocks(role, purpose):
                raise ConsentError(
                    f"patient {patient_id} directive {directive.directive_id!r} "
                    f"blocks disclosure to role {role.value} "
                    f"for purpose {purpose.value}"
                )

    def is_permitted(self, patient_id: str, role: Role, purpose: Purpose) -> bool:
        try:
            self.check_disclosure(patient_id, role, purpose)
        except ConsentError:
            return False
        return True


# Minimum-necessary field projections: role -> record type -> visible fields.
# A missing entry means the role sees the full body (clinical roles) or
# nothing beyond the envelope (everyone else).
_FIELD_VIEWS: dict[Role, dict[RecordType, frozenset[str]]] = {
    Role.BILLING: {
        RecordType.PATIENT_DEMOGRAPHICS: frozenset({"name", "address"}),
        RecordType.ENCOUNTER: frozenset({"encounter_type", "department", "disposition"}),
        RecordType.OBSERVATION: frozenset({"code"}),
        RecordType.CLINICAL_NOTE: frozenset(),  # billing never reads the narrative
        RecordType.INSURANCE_CLAIM: frozenset(
            {"claim_number", "amount", "payer", "status"}
        ),
        RecordType.EXPOSURE_RECORD: frozenset(),
    },
    Role.MEDIA_TECHNICIAN: {record_type: frozenset() for record_type in RecordType},
    Role.SYSTEM_ADMIN: {record_type: frozenset() for record_type in RecordType},
}

_FULL_VIEW_ROLES = frozenset(
    {Role.PHYSICIAN, Role.NURSE, Role.PRIVACY_OFFICER, Role.PATIENT}
)


def minimum_necessary_view(record: HealthRecord, role: Role) -> dict[str, Any]:
    """Project a record body to the fields the role's function needs.

    Clinical roles, the privacy officer, and the patient see the full
    body; restricted roles get their per-record-type projection;
    unlisted roles get the empty body.
    """
    if role in _FULL_VIEW_ROLES:
        return dict(record.body)
    views = _FIELD_VIEWS.get(role)
    if views is None:
        return {}
    visible = views.get(record.record_type, frozenset())
    return {name: value for name, value in record.body.items() if name in visible}
