"""Access control for health records.

HIPAA's General Rule requires that access to EPHI be limited to
properly authorized individuals and protected against non-permitted
disclosures.  This package implements the workforce-facing half:

* :mod:`repro.access.principals` — users and HIPAA workforce roles.
* :mod:`repro.access.rbac` — role → permission policy engine with
  purpose-of-use evaluation, treating-relationship checks, and
  explainable decisions (every denial states its rule).
* :mod:`repro.access.policies` — patient consent directives and the
  minimum-necessary field filter (billing staff see billing fields, not
  the clinical narrative).
* :mod:`repro.access.breakglass` — emergency ("break-glass") access:
  clinically-necessary overrides that always succeed but create
  mandatory review obligations in the audit trail.

The engine is deliberately *decide-only*: enforcement happens in
:mod:`repro.core.engine`, which also writes every decision to the audit
log — an unlogged authorization decision would violate the paper's
logging requirement.
"""

from repro.access.breakglass import BreakGlassController, BreakGlassGrant
from repro.access.policies import ConsentDirective, ConsentRegistry, minimum_necessary_view
from repro.access.principals import Role, User
from repro.access.rbac import AccessContext, AccessDecision, Permission, RbacEngine, Purpose
from repro.access.sessions import Authenticator, Challenge, Session

__all__ = [
    "Authenticator",
    "Challenge",
    "Session",
    "BreakGlassController",
    "BreakGlassGrant",
    "ConsentDirective",
    "ConsentRegistry",
    "minimum_necessary_view",
    "Role",
    "User",
    "AccessContext",
    "AccessDecision",
    "Permission",
    "Purpose",
    "RbacEngine",
]
