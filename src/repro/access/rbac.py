"""The RBAC vocabulary and capability tables.

This module owns the *data*: the permission and purpose enums, the
role → capability table, the (role, permission) → purpose restrictions,
and which roles/permissions require a treating relationship.  The
*decision logic* lives in :mod:`repro.policy` — the tables here are
compiled into the declarative default ruleset by
:func:`repro.policy.compiler.compile_rbac_rules`, and the
:class:`RbacEngine` below is a thin facade over a
:class:`~repro.policy.engine.PolicyEngine` kept for callers that want
pure role decisions (no consent, no break-glass) with the legacy
:class:`AccessDecision` shape.

Every decision is returned with the deciding rule spelled out, because
HIPAA audits ask *why* access was granted, not just whether.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.access.principals import Role, User


class Permission(enum.Enum):
    """Operations the storage engine gates."""

    CREATE_RECORD = "create_record"
    READ_RECORD = "read_record"
    CORRECT_RECORD = "correct_record"
    SEARCH_RECORDS = "search_records"
    EXPORT_DEIDENTIFIED = "export_deidentified"
    READ_AUDIT_TRAIL = "read_audit_trail"
    MANAGE_RETENTION = "manage_retention"
    MANAGE_MEDIA = "manage_media"
    RUN_MIGRATION = "run_migration"
    MANAGE_BACKUP = "manage_backup"
    MANAGE_CONSENT = "manage_consent"


class Purpose(enum.Enum):
    """HIPAA purposes of use."""

    TREATMENT = "treatment"
    PAYMENT = "payment"
    OPERATIONS = "operations"
    RESEARCH = "research"
    EMERGENCY = "emergency"
    PATIENT_REQUEST = "patient_request"


_ROLE_PERMISSIONS: dict[Role, frozenset[Permission]] = {
    Role.PHYSICIAN: frozenset(
        {
            Permission.CREATE_RECORD,
            Permission.READ_RECORD,
            Permission.CORRECT_RECORD,
            Permission.SEARCH_RECORDS,
        }
    ),
    Role.NURSE: frozenset(
        {Permission.CREATE_RECORD, Permission.READ_RECORD, Permission.SEARCH_RECORDS}
    ),
    Role.BILLING: frozenset({Permission.READ_RECORD, Permission.SEARCH_RECORDS}),
    Role.RESEARCHER: frozenset({Permission.EXPORT_DEIDENTIFIED, Permission.SEARCH_RECORDS}),
    Role.PRIVACY_OFFICER: frozenset(
        {
            Permission.READ_AUDIT_TRAIL,
            Permission.MANAGE_CONSENT,
            Permission.READ_RECORD,
            Permission.SEARCH_RECORDS,
        }
    ),
    Role.MEDIA_TECHNICIAN: frozenset({Permission.MANAGE_MEDIA}),
    Role.SYSTEM_ADMIN: frozenset(
        {
            Permission.MANAGE_RETENTION,
            Permission.MANAGE_MEDIA,
            Permission.RUN_MIGRATION,
            Permission.MANAGE_BACKUP,
        }
    ),
    Role.PATIENT: frozenset({Permission.READ_RECORD}),
}

# (role, permission) -> allowed purposes.  Anything not listed allows
# TREATMENT/OPERATIONS by default for clinical roles; the table makes
# the restrictive pairs explicit.
_PURPOSE_RULES: dict[tuple[Role, Permission], frozenset[Purpose]] = {
    (Role.BILLING, Permission.READ_RECORD): frozenset({Purpose.PAYMENT}),
    (Role.BILLING, Permission.SEARCH_RECORDS): frozenset({Purpose.PAYMENT}),
    (Role.RESEARCHER, Permission.EXPORT_DEIDENTIFIED): frozenset({Purpose.RESEARCH}),
    (Role.RESEARCHER, Permission.SEARCH_RECORDS): frozenset({Purpose.RESEARCH}),
    (Role.PATIENT, Permission.READ_RECORD): frozenset({Purpose.PATIENT_REQUEST}),
}

_CLINICAL_ROLES = frozenset({Role.PHYSICIAN, Role.NURSE})

_TREATING_REQUIRED = frozenset({Permission.READ_RECORD, Permission.CORRECT_RECORD})


@dataclass(frozen=True)
class AccessContext:
    """The circumstances of a request."""

    purpose: Purpose
    patient_id: str = ""
    own_record: bool = False  # patient reading their own chart


@dataclass(frozen=True)
class AccessDecision:
    """An explainable allow/deny."""

    allowed: bool
    rule: str
    role_used: Role | None = None

    def __bool__(self) -> bool:
        return self.allowed


class RbacEngine:
    """Pure-RBAC facade over the declarative policy engine.

    Evaluates only the compiled role-tier rules (capability, purpose,
    own-record, treating relationship) — no consent binding, no
    break-glass fallback, no system override — and answers in the
    legacy :class:`AccessDecision` shape.  Composite callers (the
    storage engine) hold a full :class:`~repro.policy.engine.
    PolicyEngine` over :func:`~repro.policy.compiler.
    compile_default_ruleset` instead.
    """

    def __init__(self) -> None:
        # Imported lazily: repro.policy.compiler imports this module's
        # tables at import time, so the edge must point one way only.
        from repro.policy.compiler import compile_rbac_rules
        from repro.policy.engine import PolicyEngine

        self._policy = PolicyEngine(compile_rbac_rules())

    @property
    def policy(self):
        """The underlying :class:`~repro.policy.engine.PolicyEngine`
        (role-tier rules only)."""
        return self._policy

    def decide(
        self, user: User, permission: Permission, context: AccessContext
    ) -> AccessDecision:
        """Evaluate one request; returns the first ALLOW any role earns,
        or the most specific denial encountered."""
        from repro.policy.model import PolicyContext

        decision = self._policy.decide(
            user,
            permission,
            context.patient_id,
            PolicyContext(
                purpose=context.purpose,
                patient_id=context.patient_id,
                own_record=context.own_record,
            ),
        )
        return AccessDecision(
            allowed=decision.allowed,
            rule=decision.reason,
            role_used=decision.role_used,
        )

    def explain(
        self, user: User, permission: Permission, context: AccessContext
    ) -> str:
        """The full decision path (trace included) for one request."""
        from repro.policy.model import PolicyContext

        return self._policy.explain(
            user,
            permission,
            context.patient_id,
            PolicyContext(
                purpose=context.purpose,
                patient_id=context.patient_id,
                own_record=context.own_record,
            ),
        )
