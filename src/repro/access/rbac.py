"""The role-based access policy engine.

Decisions combine four rule layers, evaluated in order:

1. **Role capability** — does any of the user's roles carry the
   requested permission at all?
2. **Purpose of use** — is the stated purpose allowed for that
   (role, permission) pair?  (Research never reads identified records;
   billing reads only for payment.)
3. **Treating relationship** — clinical reads of identified records
   require an active treating relationship with the patient (or a
   break-glass grant, handled by the caller).
4. **Consent** — the patient's directives are checked by the caller via
   :mod:`repro.access.policies` (they need the consent registry).

Every decision is returned with the deciding rule spelled out, because
HIPAA audits ask *why* access was granted, not just whether.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.access.principals import Role, User


class Permission(enum.Enum):
    """Operations the storage engine gates."""

    CREATE_RECORD = "create_record"
    READ_RECORD = "read_record"
    CORRECT_RECORD = "correct_record"
    SEARCH_RECORDS = "search_records"
    EXPORT_DEIDENTIFIED = "export_deidentified"
    READ_AUDIT_TRAIL = "read_audit_trail"
    MANAGE_RETENTION = "manage_retention"
    MANAGE_MEDIA = "manage_media"
    RUN_MIGRATION = "run_migration"
    MANAGE_BACKUP = "manage_backup"
    MANAGE_CONSENT = "manage_consent"


class Purpose(enum.Enum):
    """HIPAA purposes of use."""

    TREATMENT = "treatment"
    PAYMENT = "payment"
    OPERATIONS = "operations"
    RESEARCH = "research"
    EMERGENCY = "emergency"
    PATIENT_REQUEST = "patient_request"


_ROLE_PERMISSIONS: dict[Role, frozenset[Permission]] = {
    Role.PHYSICIAN: frozenset(
        {
            Permission.CREATE_RECORD,
            Permission.READ_RECORD,
            Permission.CORRECT_RECORD,
            Permission.SEARCH_RECORDS,
        }
    ),
    Role.NURSE: frozenset(
        {Permission.CREATE_RECORD, Permission.READ_RECORD, Permission.SEARCH_RECORDS}
    ),
    Role.BILLING: frozenset({Permission.READ_RECORD, Permission.SEARCH_RECORDS}),
    Role.RESEARCHER: frozenset({Permission.EXPORT_DEIDENTIFIED, Permission.SEARCH_RECORDS}),
    Role.PRIVACY_OFFICER: frozenset(
        {
            Permission.READ_AUDIT_TRAIL,
            Permission.MANAGE_CONSENT,
            Permission.READ_RECORD,
            Permission.SEARCH_RECORDS,
        }
    ),
    Role.MEDIA_TECHNICIAN: frozenset({Permission.MANAGE_MEDIA}),
    Role.SYSTEM_ADMIN: frozenset(
        {
            Permission.MANAGE_RETENTION,
            Permission.MANAGE_MEDIA,
            Permission.RUN_MIGRATION,
            Permission.MANAGE_BACKUP,
        }
    ),
    Role.PATIENT: frozenset({Permission.READ_RECORD}),
}

# (role, permission) -> allowed purposes.  Anything not listed allows
# TREATMENT/OPERATIONS by default for clinical roles; the table makes
# the restrictive pairs explicit.
_PURPOSE_RULES: dict[tuple[Role, Permission], frozenset[Purpose]] = {
    (Role.BILLING, Permission.READ_RECORD): frozenset({Purpose.PAYMENT}),
    (Role.BILLING, Permission.SEARCH_RECORDS): frozenset({Purpose.PAYMENT}),
    (Role.RESEARCHER, Permission.EXPORT_DEIDENTIFIED): frozenset({Purpose.RESEARCH}),
    (Role.RESEARCHER, Permission.SEARCH_RECORDS): frozenset({Purpose.RESEARCH}),
    (Role.PATIENT, Permission.READ_RECORD): frozenset({Purpose.PATIENT_REQUEST}),
}

_CLINICAL_ROLES = frozenset({Role.PHYSICIAN, Role.NURSE})

_TREATING_REQUIRED = frozenset({Permission.READ_RECORD, Permission.CORRECT_RECORD})


@dataclass(frozen=True)
class AccessContext:
    """The circumstances of a request."""

    purpose: Purpose
    patient_id: str = ""
    own_record: bool = False  # patient reading their own chart


@dataclass(frozen=True)
class AccessDecision:
    """An explainable allow/deny."""

    allowed: bool
    rule: str
    role_used: Role | None = None

    def __bool__(self) -> bool:
        return self.allowed


class RbacEngine:
    """Stateless policy evaluation over the rule tables above."""

    def decide(
        self, user: User, permission: Permission, context: AccessContext
    ) -> AccessDecision:
        """Evaluate one request; returns the first ALLOW any role earns,
        or the most specific denial encountered."""
        best_denial = AccessDecision(
            allowed=False,
            rule=f"no role of {user.user_id} grants {permission.value}",
        )
        for role in sorted(user.roles, key=lambda r: r.value):
            decision = self._decide_for_role(user, role, permission, context)
            if decision.allowed:
                return decision
            best_denial = decision if decision.role_used else best_denial
        return best_denial

    def _decide_for_role(
        self, user: User, role: Role, permission: Permission, context: AccessContext
    ) -> AccessDecision:
        if permission not in _ROLE_PERMISSIONS.get(role, frozenset()):
            return AccessDecision(
                allowed=False,
                rule=f"role {role.value} does not carry {permission.value}",
            )
        allowed_purposes = _PURPOSE_RULES.get((role, permission))
        if allowed_purposes is not None and context.purpose not in allowed_purposes:
            return AccessDecision(
                allowed=False,
                role_used=role,
                rule=(
                    f"role {role.value} may use {permission.value} only for "
                    f"{sorted(p.value for p in allowed_purposes)}, "
                    f"not {context.purpose.value}"
                ),
            )
        if role is Role.PATIENT and permission is Permission.READ_RECORD:
            if not context.own_record:
                return AccessDecision(
                    allowed=False,
                    role_used=role,
                    rule="patients may only read their own records",
                )
        if (
            role in _CLINICAL_ROLES
            and permission in _TREATING_REQUIRED
            and context.patient_id
            and not user.is_treating(context.patient_id)
            and context.purpose is not Purpose.EMERGENCY
        ):
            return AccessDecision(
                allowed=False,
                role_used=role,
                rule=(
                    f"{user.user_id} has no treating relationship with "
                    f"patient {context.patient_id}"
                ),
            )
        return AccessDecision(
            allowed=True,
            role_used=role,
            rule=f"role {role.value} grants {permission.value} "
            f"for purpose {context.purpose.value}",
        )
