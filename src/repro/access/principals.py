"""Principals: workforce users and their roles.

Roles follow the functional split HIPAA's minimum-necessary standard
implies: clinical roles see clinical data for treatment; billing sees
financial fields; researchers see de-identified exports; the privacy
officer reads audit trails; media technicians handle hardware but never
record contents.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.validation import require_non_empty


class Role(enum.Enum):
    """HIPAA workforce roles."""

    PHYSICIAN = "physician"
    NURSE = "nurse"
    BILLING = "billing"
    RESEARCHER = "researcher"
    PRIVACY_OFFICER = "privacy_officer"
    MEDIA_TECHNICIAN = "media_technician"
    SYSTEM_ADMIN = "system_admin"
    PATIENT = "patient"


@dataclass(frozen=True)
class User:
    """An authenticated workforce member (or patient portal user)."""

    user_id: str
    name: str
    roles: frozenset[Role]
    department: str = ""
    # Patients this user is actively treating (drives the
    # treating-relationship rule for clinical access).
    treating: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        require_non_empty(self.user_id, "user_id")
        require_non_empty(self.name, "name")
        if not self.roles:
            raise ValueError("a user must hold at least one role")

    def has_role(self, role: Role) -> bool:
        return role in self.roles

    def is_treating(self, patient_id: str) -> bool:
        return patient_id in self.treating

    @staticmethod
    def make(
        user_id: str,
        name: str,
        roles: list[Role] | set[Role],
        department: str = "",
        treating: list[str] | set[str] = (),
    ) -> "User":
        """Convenience constructor taking plain collections."""
        return User(
            user_id=user_id,
            name=name,
            roles=frozenset(roles),
            department=department,
            treating=frozenset(treating),
        )


SYSTEM_USER = User.make("system", "Curator System", [Role.SYSTEM_ADMIN])
"""The implicit principal for internally-initiated operations."""
