"""Person-and-entity authentication (HIPAA §164.312(d)).

The access-control engine decides what an *authenticated* principal may
do; this module is where principals become authenticated.  It models
the smart-card / token deployments HIPAA-era guidance recommended
(cf. the Smart Card Alliance reference in the paper) with a
challenge-response protocol:

1. enrollment binds a user id to a secret (the card key);
2. login requests a random challenge;
3. the client proves possession by returning
   ``HMAC(secret, challenge || user_id)``;
4. a time-boxed :class:`Session` is issued; its token is an HMAC over
   the session fields under the broker's key, so tokens cannot be
   forged or extended client-side.

Failed attempts are counted; exceeding the lockout threshold disables
the account until an administrator resets it (brute-force containment).
Every transition is returned to the caller for audit logging — the
engine owns the audit trail, this module owns the crypto.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.hmac_utils import constant_time_equal, hmac_sha256
from repro.errors import AccessDeniedError
from repro.util.clock import Clock, WallClock

DEFAULT_SESSION_SECONDS = 8 * 3600.0
DEFAULT_LOCKOUT_THRESHOLD = 5


@dataclass(frozen=True)
class Challenge:
    """A one-time login challenge."""

    user_id: str
    nonce: bytes
    issued_at: float


@dataclass(frozen=True)
class Session:
    """An authenticated session."""

    session_id: str
    user_id: str
    issued_at: float
    expires_at: float
    token: bytes


class Authenticator:
    """Challenge-response authentication broker."""

    def __init__(
        self,
        clock: Clock | None = None,
        session_seconds: float = DEFAULT_SESSION_SECONDS,
        lockout_threshold: int = DEFAULT_LOCKOUT_THRESHOLD,
        challenge_ttl_seconds: float = 300.0,
    ) -> None:
        self._clock = clock or WallClock()
        self._session_seconds = session_seconds
        self._lockout_threshold = lockout_threshold
        self._challenge_ttl = challenge_ttl_seconds
        self._broker_key = secrets.token_bytes(32)
        self._secrets: dict[str, bytes] = {}
        self._failures: dict[str, int] = {}
        self._locked: set[str] = set()
        self._pending: dict[str, Challenge] = {}
        self._counter = 0

    # -- enrollment ---------------------------------------------------------

    def enroll(self, user_id: str) -> bytes:
        """Enroll a user; returns the secret to place on their token."""
        if not user_id:
            raise AccessDeniedError("user id must not be empty")
        if user_id in self._secrets:
            raise AccessDeniedError(f"user {user_id} already enrolled")
        secret = secrets.token_bytes(32)
        self._secrets[user_id] = secret
        return secret

    def is_locked(self, user_id: str) -> bool:
        return user_id in self._locked

    def unlock(self, user_id: str) -> None:
        """Administrative reset after lockout."""
        self._locked.discard(user_id)
        self._failures.pop(user_id, None)

    # -- the protocol -----------------------------------------------------------

    def request_challenge(self, user_id: str) -> Challenge:
        """Step 1: the client asks to log in."""
        if user_id not in self._secrets:
            raise AccessDeniedError(f"unknown user {user_id!r}")
        if user_id in self._locked:
            raise AccessDeniedError(f"account {user_id} is locked")
        challenge = Challenge(
            user_id=user_id,
            nonce=secrets.token_bytes(16),
            issued_at=self._clock.now(),
        )
        self._pending[user_id] = challenge
        return challenge

    @staticmethod
    def respond(secret: bytes, challenge: Challenge) -> bytes:
        """Client-side: compute the proof of possession."""
        return hmac_sha256(secret, challenge.nonce + challenge.user_id.encode("utf-8"))

    def login(self, user_id: str, response: bytes) -> Session:
        """Step 2: verify the response and issue a session."""
        if user_id in self._locked:
            raise AccessDeniedError(f"account {user_id} is locked")
        challenge = self._pending.get(user_id)
        secret = self._secrets.get(user_id)
        if challenge is None or secret is None:
            raise AccessDeniedError(f"no pending challenge for {user_id!r}")
        if self._clock.now() - challenge.issued_at > self._challenge_ttl:
            del self._pending[user_id]
            raise AccessDeniedError("challenge expired")
        expected = self.respond(secret, challenge)
        if not constant_time_equal(expected, response):
            self._failures[user_id] = self._failures.get(user_id, 0) + 1
            if self._failures[user_id] >= self._lockout_threshold:
                self._locked.add(user_id)
            raise AccessDeniedError("authentication failed")
        del self._pending[user_id]
        self._failures.pop(user_id, None)
        self._counter += 1
        now = self._clock.now()
        session_id = f"sess-{self._counter:08d}"
        expires_at = now + self._session_seconds
        token = self._token_for(session_id, user_id, now, expires_at)
        return Session(
            session_id=session_id,
            user_id=user_id,
            issued_at=now,
            expires_at=expires_at,
            token=token,
        )

    def _token_for(
        self, session_id: str, user_id: str, issued_at: float, expires_at: float
    ) -> bytes:
        material = f"{session_id}|{user_id}|{issued_at}|{expires_at}".encode("utf-8")
        return hmac_sha256(self._broker_key, material)

    def validate(self, session: Session) -> str:
        """Validate a presented session; returns the authenticated user id.

        Rejects forged tokens, altered fields, and expired sessions.
        """
        expected = self._token_for(
            session.session_id, session.user_id, session.issued_at, session.expires_at
        )
        if not constant_time_equal(expected, session.token):
            raise AccessDeniedError("session token invalid")
        if self._clock.now() >= session.expires_at:
            raise AccessDeniedError("session expired")
        if session.user_id in self._locked:
            raise AccessDeniedError(f"account {session.user_id} is locked")
        return session.user_id

    def failed_attempts(self, user_id: str) -> int:
        return self._failures.get(user_id, 0)
