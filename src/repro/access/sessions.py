"""Person-and-entity authentication (HIPAA §164.312(d)).

The access-control engine decides what an *authenticated* principal may
do; this module is where principals become authenticated.  It models
the smart-card / token deployments HIPAA-era guidance recommended
(cf. the Smart Card Alliance reference in the paper) with a
challenge-response protocol:

1. enrollment binds a user id to a secret (the card key);
2. login requests a random challenge;
3. the client proves possession by returning
   ``HMAC(secret, challenge || user_id)``;
4. a time-boxed :class:`Session` is issued; its token is an HMAC over
   the session fields under the broker's key, so tokens cannot be
   forged or extended client-side.

Failed attempts are counted; exceeding the lockout threshold disables
the account until an administrator resets it (brute-force containment).
Every transition is returned to the caller for audit logging — the
engine owns the audit trail, this module owns the crypto.

Allow-or-deny is not decided here: the broker *measures* (token
signature, expiry clock, lockout set, challenge freshness, response
validity) and hands the measurements as facts to the session ruleset
(:func:`repro.policy.compiler.session_ruleset`); the policy engine
decides, and the broker applies the side effects (failure counting,
lockout, challenge consumption) keyed on the deciding rule.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.hmac_utils import constant_time_equal, hmac_sha256
from repro.errors import AccessDeniedError
from repro.policy.model import PolicyContext
from repro.util.clock import Clock, WallClock

DEFAULT_SESSION_SECONDS = 8 * 3600.0
DEFAULT_LOCKOUT_THRESHOLD = 5


@dataclass(frozen=True)
class Challenge:
    """A one-time login challenge."""

    user_id: str
    nonce: bytes
    issued_at: float


@dataclass(frozen=True)
class Session:
    """An authenticated session."""

    session_id: str
    user_id: str
    issued_at: float
    expires_at: float
    token: bytes


class Authenticator:
    """Challenge-response authentication broker."""

    def __init__(
        self,
        clock: Clock | None = None,
        session_seconds: float = DEFAULT_SESSION_SECONDS,
        lockout_threshold: int = DEFAULT_LOCKOUT_THRESHOLD,
        challenge_ttl_seconds: float = 300.0,
    ) -> None:
        self._clock = clock or WallClock()
        self._session_seconds = session_seconds
        self._lockout_threshold = lockout_threshold
        self._challenge_ttl = challenge_ttl_seconds
        self._broker_key = secrets.token_bytes(32)
        self._secrets: dict[str, bytes] = {}
        self._failures: dict[str, int] = {}
        self._locked: set[str] = set()
        self._pending: dict[str, Challenge] = {}
        self._counter = 0
        # Imported lazily to keep this module importable below the
        # policy compiler in the import graph.
        from repro.policy.compiler import session_ruleset
        from repro.policy.engine import PolicyEngine

        self._policy = PolicyEngine(session_ruleset())

    @property
    def clock(self) -> Clock:
        """The clock session validity is measured against (boundary
        layers measure expiry with the same clock the broker uses)."""
        return self._clock

    def _enforce(self, user_id: str, action: str, **facts) -> None:
        """One policy decision over measured facts; applies the broker
        side effects the deciding rule implies, then raises the typed
        denial."""
        decision = self._policy.decide(
            user_id, action, context=PolicyContext(facts=facts)
        )
        if decision.allowed:
            return
        if decision.rule_id == "deny:session:stale-challenge":
            self._pending.pop(user_id, None)
        elif decision.rule_id == "deny:session:bad-response":
            self._failures[user_id] = self._failures.get(user_id, 0) + 1
            if self._failures[user_id] >= self._lockout_threshold:
                self._locked.add(user_id)
        raise decision.exception()

    # -- enrollment ---------------------------------------------------------

    def enroll(self, user_id: str) -> bytes:
        """Enroll a user; returns the secret to place on their token."""
        if not user_id:
            raise AccessDeniedError("user id must not be empty")
        if user_id in self._secrets:
            raise AccessDeniedError(f"user {user_id} already enrolled")
        secret = secrets.token_bytes(32)
        self._secrets[user_id] = secret
        return secret

    def is_locked(self, user_id: str) -> bool:
        return user_id in self._locked

    def unlock(self, user_id: str) -> None:
        """Administrative reset after lockout."""
        self._locked.discard(user_id)
        self._failures.pop(user_id, None)

    # -- the protocol -----------------------------------------------------------

    def request_challenge(self, user_id: str) -> Challenge:
        """Step 1: the client asks to log in."""
        self._enforce(
            user_id,
            "request_challenge",
            enrolled=user_id in self._secrets,
            account_locked=user_id in self._locked,
        )
        challenge = Challenge(
            user_id=user_id,
            nonce=secrets.token_bytes(16),
            issued_at=self._clock.now(),
        )
        self._pending[user_id] = challenge
        return challenge

    @staticmethod
    def respond(secret: bytes, challenge: Challenge) -> bytes:
        """Client-side: compute the proof of possession."""
        return hmac_sha256(secret, challenge.nonce + challenge.user_id.encode("utf-8"))

    def login(self, user_id: str, response: bytes) -> Session:
        """Step 2: verify the response and issue a session."""
        challenge = self._pending.get(user_id)
        secret = self._secrets.get(user_id)
        pending = challenge is not None and secret is not None
        fresh = (
            pending
            and self._clock.now() - challenge.issued_at <= self._challenge_ttl
        )
        valid = fresh and constant_time_equal(
            self.respond(secret, challenge), response
        )
        self._enforce(
            user_id,
            "login",
            account_locked=user_id in self._locked,
            challenge_pending=pending,
            challenge_fresh=not pending or fresh,
            response_valid=not fresh or valid,
        )
        del self._pending[user_id]
        self._failures.pop(user_id, None)
        self._counter += 1
        now = self._clock.now()
        session_id = f"sess-{self._counter:08d}"
        expires_at = now + self._session_seconds
        token = self._token_for(session_id, user_id, now, expires_at)
        return Session(
            session_id=session_id,
            user_id=user_id,
            issued_at=now,
            expires_at=expires_at,
            token=token,
        )

    def _token_for(
        self, session_id: str, user_id: str, issued_at: float, expires_at: float
    ) -> bytes:
        material = f"{session_id}|{user_id}|{issued_at}|{expires_at}".encode("utf-8")
        return hmac_sha256(self._broker_key, material)

    def token_matches(self, session: Session) -> bool:
        """Measure (don't decide): does the presented token HMAC-verify
        against the session's fields under the broker key?  Boundary
        layers that fold extra facts into one policy decision (the wire
        service adds revocation) use this instead of :meth:`validate`.
        """
        expected = self._token_for(
            session.session_id, session.user_id, session.issued_at, session.expires_at
        )
        return constant_time_equal(expected, session.token)

    def reissue(self, session: Session) -> Session:
        """Mint a fresh session for the same principal (token refresh).

        The caller must have *already validated* the presented session —
        this is the mechanism half of refresh; the deciding half lives
        in the caller's policy pass (see
        :class:`repro.service.auth.SessionBroker`).
        """
        self._counter += 1
        now = self._clock.now()
        session_id = f"sess-{self._counter:08d}"
        expires_at = now + self._session_seconds
        token = self._token_for(session_id, session.user_id, now, expires_at)
        return Session(
            session_id=session_id,
            user_id=session.user_id,
            issued_at=now,
            expires_at=expires_at,
            token=token,
        )

    def validate(self, session: Session) -> str:
        """Validate a presented session; returns the authenticated user id.

        Rejects forged tokens, altered fields, and expired sessions.
        """
        expected = self._token_for(
            session.session_id, session.user_id, session.issued_at, session.expires_at
        )
        self._enforce(
            session.user_id,
            "use_session",
            token_valid=constant_time_equal(expected, session.token),
            session_expired=self._clock.now() >= session.expires_at,
            account_locked=session.user_id in self._locked,
        )
        return session.user_id

    def failed_attempts(self, user_id: str) -> int:
        return self._failures.get(user_id, 0)
