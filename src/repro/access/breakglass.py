"""Break-glass emergency access.

An unconscious patient arrives; the on-call physician has no treating
relationship on file.  Denying access would be clinically dangerous, so
compliance systems provide an *emergency override*: access succeeds,
but the override itself is loud — it creates a time-boxed grant, a
mandatory after-the-fact review obligation, and (at the engine layer)
an EMERGENCY_ACCESS audit event the privacy officer must disposition.

:class:`BreakGlassController` manages the grants and the review queue.
Unreviewed grants past their review deadline are a compliance finding,
which the compliance checker (:mod:`repro.compliance`) reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.access.principals import User
from repro.errors import AccessDeniedError
from repro.policy.model import PolicyContext
from repro.util.clock import Clock, WallClock
from repro.util.validation import require_non_empty


@dataclass(frozen=True)
class BreakGlassGrant:
    """One emergency access grant."""

    grant_id: str
    user_id: str
    patient_id: str
    justification: str
    granted_at: float
    expires_at: float
    review_deadline: float


class BreakGlassController:
    """Issues, checks, and reviews emergency grants."""

    def __init__(
        self,
        clock: Clock | None = None,
        grant_duration: float = 4 * 3600.0,
        review_window: float = 72 * 3600.0,
    ) -> None:
        self._clock = clock or WallClock()
        self._grant_duration = grant_duration
        self._review_window = review_window
        self._grants: dict[str, BreakGlassGrant] = {}
        self._reviewed: dict[str, str] = {}  # grant_id -> reviewer
        self._counter = 0
        from repro.policy.compiler import breakglass_ruleset
        from repro.policy.engine import PolicyEngine

        self._policy = PolicyEngine(breakglass_ruleset())

    def invoke(self, user: User, patient_id: str, justification: str) -> BreakGlassGrant:
        """Break the glass: grant emergency access to one patient.

        Whether the override is granted is a policy decision over the
        measured justification fact; issuing the grant (and the review
        obligation it creates) is this controller's bookkeeping."""
        require_non_empty(patient_id, "patient_id")
        self._policy.decide(
            user,
            "invoke_break_glass",
            patient_id,
            PolicyContext(
                facts={
                    "substantive_justification": bool(
                        justification and len(justification.strip()) >= 10
                    )
                }
            ),
        ).require()
        self._counter += 1
        now = self._clock.now()
        grant = BreakGlassGrant(
            grant_id=f"bg-{self._counter:06d}",
            user_id=user.user_id,
            patient_id=patient_id,
            justification=justification.strip(),
            granted_at=now,
            expires_at=now + self._grant_duration,
            review_deadline=now + self._review_window,
        )
        self._grants[grant.grant_id] = grant
        return grant

    def has_active_grant(self, user_id: str, patient_id: str) -> bool:
        """Whether an unexpired grant covers (user, patient) right now."""
        now = self._clock.now()
        return any(
            grant.user_id == user_id
            and grant.patient_id == patient_id
            and grant.expires_at > now
            for grant in self._grants.values()
        )

    def revoke(self, grant_id: str) -> BreakGlassGrant:
        """Cut a grant short (e.g. the review found it unjustified).

        The grant stays on the books — its issuance is history the
        review queue must still disposition — but it stops authorizing
        access immediately.  Returns the revoked grant.
        """
        grant = self._grants.get(grant_id)
        if grant is None:
            raise AccessDeniedError(f"unknown break-glass grant {grant_id}")
        revoked = replace(grant, expires_at=self._clock.now())
        self._grants[grant_id] = revoked
        return revoked

    def review(self, grant_id: str, reviewer_id: str) -> None:
        """The privacy officer dispositions a grant."""
        if grant_id not in self._grants:
            raise AccessDeniedError(f"unknown break-glass grant {grant_id}")
        self._reviewed[grant_id] = reviewer_id

    def pending_review(self) -> list[BreakGlassGrant]:
        """Grants not yet reviewed."""
        return [
            grant
            for grant_id, grant in sorted(self._grants.items())
            if grant_id not in self._reviewed
        ]

    def overdue_reviews(self) -> list[BreakGlassGrant]:
        """Unreviewed grants past the review deadline — a compliance
        finding when non-empty."""
        now = self._clock.now()
        return [g for g in self.pending_review() if g.review_deadline < now]

    def grants(self) -> list[BreakGlassGrant]:
        return [self._grants[k] for k in sorted(self._grants)]
