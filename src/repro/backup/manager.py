"""Backup creation and verified restore.

Snapshots copy the *stored* bytes of each live WORM object — at the
engine layer those bytes are AEAD ciphertext, so a stolen backup medium
leaks nothing without keys.  Wrapped data keys travel alongside (they
are themselves ciphertext under the master key).

Restores rebuild a fresh WORM store (and optionally re-import wrapped
keys into a keystore) and verify every object digest against the
snapshot before declaring success: an "exact copy" is demonstrated,
not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backup.vault import BackupSnapshot, BackupVault
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyHandle, KeyStore, ShreddedKeyError
from repro.crypto.merkle import MerkleTree
from repro.errors import BackupError, KeyManagementError
from repro.util.clock import Clock, WallClock
from repro.util.encoding import canonical_bytes
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore


@dataclass(frozen=True)
class RestoreReport:
    """Result of a verified restore."""

    snapshot_id: str
    objects_restored: int
    keys_restored: int
    verified: bool
    mismatched: tuple[str, ...] = ()


class BackupManager:
    """Creates snapshots of a store and restores them elsewhere."""

    def __init__(
        self,
        vault: BackupVault,
        clock: Clock | None = None,
    ) -> None:
        self._vault = vault
        self._clock = clock or WallClock()
        self._counter = 0
        self._last_snapshot_objects: set[str] = set()
        self._last_snapshot_id: str | None = None

    @property
    def vault(self) -> BackupVault:
        return self._vault

    def _next_id(self, kind: str) -> str:
        self._counter += 1
        return f"snap-{kind}-{self._counter:05d}"

    def _collect(
        self,
        store: WormStore,
        keystore: KeyStore | None,
        key_handles: dict[str, KeyHandle] | None,
        object_ids: list[str],
    ) -> tuple[dict[str, bytes], dict[str, bytes], dict[str, bytes]]:
        objects: dict[str, bytes] = {}
        digests: dict[str, bytes] = {}
        wrapped: dict[str, bytes] = {}
        for object_id in object_ids:
            data = store.get(object_id)
            objects[object_id] = data
            digests[object_id] = sha256(data)
            if keystore is not None and key_handles and object_id in key_handles:
                handle = key_handles[object_id]
                try:
                    wrapped[handle.key_id] = keystore.export_wrapped(handle)
                except ShreddedKeyError:
                    pass  # disposed records stay disposed in new backups
        return objects, digests, wrapped

    @staticmethod
    def _root(digests: dict[str, bytes]) -> bytes:
        tree = MerkleTree()
        for object_id in sorted(digests):
            tree.append(canonical_bytes({"id": object_id, "digest": digests[object_id]}))
        return tree.root()

    def create_full(
        self,
        store: WormStore,
        keystore: KeyStore | None = None,
        key_handles: dict[str, KeyHandle] | None = None,
    ) -> BackupSnapshot:
        """Snapshot every live object."""
        object_ids = store.object_ids()
        objects, digests, wrapped = self._collect(store, keystore, key_handles, object_ids)
        snapshot = BackupSnapshot(
            snapshot_id=self._next_id("full"),
            created_at=self._clock.now(),
            kind="full",
            base_snapshot_id=None,
            objects=objects,
            digests=digests,
            merkle_root=self._root(digests),
            wrapped_keys=wrapped,
        )
        self._vault.store(snapshot)
        self._last_snapshot_objects = set(object_ids)
        self._last_snapshot_id = snapshot.snapshot_id
        return snapshot

    def create_incremental(
        self,
        store: WormStore,
        keystore: KeyStore | None = None,
        key_handles: dict[str, KeyHandle] | None = None,
    ) -> BackupSnapshot:
        """Snapshot only objects new since the previous snapshot.

        WORM objects never change in place, so "new since last" is the
        complete delta — there are no modified objects by construction.
        """
        if self._last_snapshot_id is None:
            raise BackupError("an incremental backup requires a prior snapshot")
        new_ids = [
            object_id
            for object_id in store.object_ids()
            if object_id not in self._last_snapshot_objects
        ]
        objects, digests, wrapped = self._collect(store, keystore, key_handles, new_ids)
        snapshot = BackupSnapshot(
            snapshot_id=self._next_id("incr"),
            created_at=self._clock.now(),
            kind="incremental",
            base_snapshot_id=self._last_snapshot_id,
            objects=objects,
            digests=digests,
            merkle_root=self._root(digests),
            wrapped_keys=wrapped,
        )
        self._vault.store(snapshot)
        self._last_snapshot_objects.update(new_ids)
        self._last_snapshot_id = snapshot.snapshot_id
        return snapshot

    def restore(
        self,
        snapshot_id: str,
        target_store: WormStore,
        target_keystore: KeyStore | None = None,
        retention_for: RetentionTerm | None = None,
    ) -> RestoreReport:
        """Rebuild a store from a snapshot chain and verify every object."""
        chain = self._vault.chain_to_full(snapshot_id)
        restored = 0
        keys_restored = 0
        mismatched: list[str] = []
        merged: dict[str, bytes] = {}
        merged_digests: dict[str, bytes] = {}
        merged_keys: dict[str, bytes] = {}
        for snapshot in chain:  # full first, increments layered on top
            merged.update(snapshot.objects)
            merged_digests.update(snapshot.digests)
            merged_keys.update(snapshot.wrapped_keys)
        for object_id in sorted(merged):
            data = merged[object_id]
            if sha256(data) != merged_digests[object_id]:
                mismatched.append(object_id)
                continue
            target_store.put(object_id, data, retention=retention_for)
            if target_store.get(object_id) != data:
                mismatched.append(object_id)
                continue
            restored += 1
        if target_keystore is not None:
            for key_id, blob in sorted(merged_keys.items()):
                try:
                    target_keystore.import_wrapped(key_id, blob)
                    keys_restored += 1
                except KeyManagementError:
                    pass  # already present (e.g. partial prior restore)
        return RestoreReport(
            snapshot_id=snapshot_id,
            objects_restored=restored,
            keys_restored=keys_restored,
            verified=not mismatched,
            mismatched=tuple(sorted(mismatched)),
        )
