"""Backup and disaster recovery.

HIPAA §164.310(d)(2)(iv): "create a retrievable, exact copy of
electronic protected health information, when needed"; the paper adds
that backups must live off-site to survive fire and natural disasters.

* :mod:`repro.backup.vault` — the off-site vault: holds snapshots and
  exported wrapped keys at a separate (simulated) site that survives
  primary-site destruction.
* :mod:`repro.backup.manager` — full and incremental snapshots with
  Merkle verification, and restore into a fresh store with per-object
  digest checks ("exact copy" is verified, not assumed).

Interaction with secure deletion (deliberate, and measured in E5):
backups taken *before* a record's disposition still contain its
ciphertext and wrapped key.  Cryptographic deletion therefore must be
*coordinated* — :meth:`BackupVault.shred_key` destroys the wrapped key
in every snapshot, after which restores reproduce the record's
ciphertext but can never decrypt it.
"""

from repro.backup.manager import BackupManager, RestoreReport
from repro.backup.vault import BackupSnapshot, BackupVault

__all__ = ["BackupManager", "RestoreReport", "BackupSnapshot", "BackupVault"]
