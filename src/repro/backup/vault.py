"""The off-site backup vault.

A vault lives at its own site: destroying the primary site's devices
does not touch it, and vice versa.  It stores immutable snapshots
(object bytes + digests + Merkle root) and the wrapped data keys needed
to read them after restore, and supports coordinated key shredding so
disposition reaches historical backups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import sha256
from repro.crypto.merkle import MerkleTree
from repro.errors import BackupError
from repro.util.encoding import canonical_bytes


@dataclass(frozen=True)
class BackupSnapshot:
    """One immutable snapshot."""

    snapshot_id: str
    created_at: float
    kind: str  # "full" | "incremental"
    base_snapshot_id: str | None
    objects: dict[str, bytes]  # object_id -> raw stored bytes (ciphertext)
    digests: dict[str, bytes]
    merkle_root: bytes
    wrapped_keys: dict[str, bytes] = field(default_factory=dict)

    def verify(self) -> list[str]:
        """Digest-check every object; returns the ids that fail."""
        failures = [
            object_id
            for object_id, data in self.objects.items()
            if sha256(data) != self.digests.get(object_id)
        ]
        tree = MerkleTree()
        for object_id in sorted(self.digests):
            tree.append(
                canonical_bytes({"id": object_id, "digest": self.digests[object_id]})
            )
        if tree.root() != self.merkle_root:
            failures.append("<merkle-root>")
        return sorted(set(failures))


class BackupVault:
    """Snapshot storage at a separate site."""

    def __init__(self, site_id: str) -> None:
        self.site_id = site_id
        self._snapshots: dict[str, BackupSnapshot] = {}
        self._order: list[str] = []
        self._destroyed = False

    def __len__(self) -> int:
        return len(self._order)

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def destroy_site(self) -> None:
        """The off-site location itself is lost (double disaster)."""
        self._destroyed = True

    def _check_alive(self) -> None:
        if self._destroyed:
            raise BackupError(f"backup site {self.site_id} was destroyed")

    def store(self, snapshot: BackupSnapshot) -> None:
        self._check_alive()
        if snapshot.snapshot_id in self._snapshots:
            raise BackupError(f"snapshot {snapshot.snapshot_id} already stored")
        failures = snapshot.verify()
        if failures:
            raise BackupError(
                f"refusing snapshot {snapshot.snapshot_id}: failed verification "
                f"for {failures}"
            )
        self._snapshots[snapshot.snapshot_id] = snapshot
        self._order.append(snapshot.snapshot_id)

    def retrieve(self, snapshot_id: str) -> BackupSnapshot:
        self._check_alive()
        snapshot = self._snapshots.get(snapshot_id)
        if snapshot is None:
            raise BackupError(f"no snapshot {snapshot_id} in vault {self.site_id}")
        return snapshot

    def latest(self) -> BackupSnapshot:
        self._check_alive()
        if not self._order:
            raise BackupError(f"vault {self.site_id} holds no snapshots")
        return self._snapshots[self._order[-1]]

    def snapshot_ids(self) -> list[str]:
        self._check_alive()
        return list(self._order)

    def chain_to_full(self, snapshot_id: str) -> list[BackupSnapshot]:
        """The restore chain: the snapshot's base lineage back to the
        most recent full snapshot, ordered full-first."""
        chain: list[BackupSnapshot] = []
        current: str | None = snapshot_id
        while current is not None:
            snapshot = self.retrieve(current)
            chain.append(snapshot)
            if snapshot.kind == "full":
                break
            current = snapshot.base_snapshot_id
        else:
            raise BackupError(
                f"snapshot {snapshot_id} has no full snapshot in its lineage"
            )
        if chain[-1].kind != "full":
            raise BackupError(
                f"snapshot {snapshot_id} has no full snapshot in its lineage"
            )
        return list(reversed(chain))

    def shred_key(self, key_id: str) -> int:
        """Coordinated cryptographic deletion: remove the wrapped key
        from every snapshot.  Returns how many snapshots were affected.

        Snapshot immutability is preserved for *record* content; key
        material is the one thing disposition is allowed — required —
        to destroy everywhere.
        """
        self._check_alive()
        affected = 0
        for snapshot_id, snapshot in self._snapshots.items():
            if key_id in snapshot.wrapped_keys:
                del snapshot.wrapped_keys[key_id]
                affected += 1
        return affected
