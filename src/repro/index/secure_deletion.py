"""Secure deletion from inverted indexes.

Motivated by Mitra & Winslett (StorageSS'06): when a record passes its
retention period and is destroyed, the *index* must forget it too —
otherwise posting lists remain a forensic copy of the record's
vocabulary ("the record said Cancer") long after the record is gone.

:class:`SecureDeletionIndex` wraps a
:class:`~repro.index.trustworthy.TrustworthyIndex` and makes deletion a
two-step, verifiable operation:

1. **rewrite** — every posting list containing the document is
   re-encrypted without it (fresh nonce, bumped version);
2. **scrub** — the superseded ciphertext versions' device extents are
   physically overwritten with zeros, so even the adversary who later
   obtains the index key cannot decrypt a stale list and learn the
   deleted document's terms.

:meth:`SecureDeletionIndex.forensic_residue` is the auditor's check:
given full raw-device access *and* the index keys (worst case), can the
deleted document still be associated with any term?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexError_
from repro.index.trustworthy import TrustworthyIndex


@dataclass(frozen=True)
class DeletionCertificate:
    """Evidence of a completed secure deletion."""

    document_id: str
    lists_rewritten: int
    versions_scrubbed: int
    bytes_scrubbed: int


class SecureDeletionIndex:
    """Trustworthy index with physical, verifiable forgetting."""

    def __init__(self, index: TrustworthyIndex) -> None:
        self._index = index

    @property
    def index(self) -> TrustworthyIndex:
        return self._index

    def add_document(self, document_id: str, text: str) -> int:
        return self._index.add_document(document_id, text)

    def add_documents(self, documents: list[tuple[str, str]]) -> list[int]:
        return self._index.add_documents(documents)

    def search(self, term: str) -> list[str]:
        return self._index.search(term)

    def search_all(self, terms: list[str]) -> list[str]:
        return self._index.search_all(terms)

    def delete_document(self, document_id: str) -> DeletionCertificate:
        """Securely remove a document from the index."""
        if not document_id:
            raise IndexError_("document id must not be empty")
        affected = self._index.rewrite_lists_without(document_id)
        superseded = self._index.clear_superseded(affected)
        bytes_scrubbed = 0
        device = self._index.device
        for meta in superseded:
            device.raw_write(meta.device_offset, bytes(meta.size))
            bytes_scrubbed += meta.size
        return DeletionCertificate(
            document_id=document_id,
            lists_rewritten=len(affected),
            versions_scrubbed=len(superseded),
            bytes_scrubbed=bytes_scrubbed,
        )

    def scrub_all_superseded(self) -> int:
        """Housekeeping: scrub every superseded version (e.g. after bulk
        updates), returning bytes overwritten.  Keeps the device free of
        decryptable stale lists even outside deletions."""
        all_trapdoors = list(self._index.superseded_versions())
        superseded = self._index.clear_superseded(all_trapdoors)
        device = self._index.device
        total = 0
        for meta in superseded:
            device.raw_write(meta.device_offset, bytes(meta.size))
            total += meta.size
        return total

    def forensic_residue(self, document_id: str) -> list[str]:
        """Worst-case forensic check: with the index keys in hand,
        decrypt every *current* and every *stale-but-unscrubbed* posting
        list version and report the terms' trapdoors still naming the
        document.  Empty list == the index has verifiably forgotten it.
        """
        residue: list[str] = []
        # Current lists (should have been rewritten).
        for trapdoor in self._index.current_versions():
            if document_id in self._index._read_list(trapdoor):  # noqa: SLF001
                residue.append(trapdoor)
        # Stale versions: anything unscrubbed and still decryptable.
        device = self._index.device
        for trapdoor, metas in self._index.superseded_versions().items():
            for meta in metas:
                blob = device.raw_read(meta.device_offset, meta.size)
                if not any(blob):
                    continue  # scrubbed
                try:
                    from repro.crypto.aead import AeadCiphertext
                    from repro.util.encoding import canonical_loads

                    stored = canonical_loads(blob)
                    box = AeadCiphertext.from_bytes(stored["box"])
                    plaintext = self._index._cipher_for(trapdoor).decrypt(  # noqa: SLF001
                        box,
                        associated_data=self._index._associated_data(  # noqa: SLF001
                            trapdoor, stored["v"]
                        ),
                    )
                    if document_id in canonical_loads(plaintext):
                        residue.append(trapdoor)
                except Exception:
                    continue  # undecodable residue carries no posting info
        return sorted(set(residue))
