"""The trustworthy keyword index.

Design (after Mitra, Hsu & Winslett's trustworthy-index line of work,
re-expressed over this library's substrate):

* **Trapdoors, not terms.**  A term never touches the device.  Its
  on-disk identity is ``HMAC(index_key, term)`` — without the key, the
  stored vocabulary is indistinguishable from random strings, so the
  "Cancer" inference is impossible from a stolen medium.
* **Encrypted posting lists.**  Each trapdoor's document list is
  AEAD-encrypted under a key derived from the index master key and the
  trapdoor.  The trapdoor is the AEAD associated data, so lists cannot
  be swapped between terms without detection.
* **Padding.**  Posting lists are padded to the next power-of-two
  entry count before encryption, blunting the frequency side channel
  (list length ≈ term rarity) to log-granularity buckets.
* **Versioned updates.**  Appending a document writes a new encrypted
  version of each affected list; the version number rides in the
  associated data, so replaying a stale list (rollback) fails
  verification against the in-memory version counter.

Queries decrypt one list; tampering anywhere in a list surfaces as an
:class:`~repro.errors.IntegrityError`-family failure at query time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.aead import AeadCipher, AeadCiphertext, decrypt_many, encrypt_many
from repro.crypto.hmac_utils import hmac_sha256
from repro.crypto.kdf import derive_key
from repro.errors import IndexError_, IntegrityError
from repro.index.tokenizer import unique_terms
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import HEADER_SIZE, Journal
from repro.util.encoding import canonical_bytes, canonical_loads
from repro.util.metrics import METRICS

_CIPHER_CACHE_CAPACITY = 4096

_PAD_DOC = ""  # padding entries are empty strings, dropped on decrypt


def _padded_length(count: int) -> int:
    """Next power of two >= max(count, 1)."""
    length = 1
    while length < count:
        length *= 2
    return length


@dataclass(frozen=True)
class _ListVersion:
    """Where one encrypted posting-list version lives on the device."""

    journal_sequence: int
    device_offset: int
    size: int
    version: int


class TrustworthyIndex:
    """Encrypted, tamper-evident, low-leakage keyword index."""

    def __init__(
        self,
        master_key: bytes,
        device: BlockDevice | None = None,
    ) -> None:
        if len(master_key) != 32:
            raise IndexError_("index master key must be 32 bytes")
        self._trapdoor_key = derive_key(master_key, "index/trapdoor")
        self._list_key_root = derive_key(master_key, "index/lists")
        self._journal = Journal(device or MemoryDevice("tidx-dev", 1 << 23))
        # trapdoor(hex) -> current version metadata
        self._current: dict[str, _ListVersion] = {}
        # trapdoor(hex) -> superseded versions (secure deletion scrubs these)
        self._superseded: dict[str, list[_ListVersion]] = {}
        self._documents: set[str] = set()
        # trapdoor(hex) -> AeadCipher memo.  Per-list keys are a pure
        # KDF of the master key and the trapdoor, so caching is safe;
        # it turns the dominant ingest cost (one KDF + cipher setup per
        # touched list) into a dictionary hit.
        self._cipher_cache: OrderedDict[str, AeadCipher] = OrderedDict()

    @property
    def device(self) -> BlockDevice:
        return self._journal.device

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        return len(self._current)

    # -- crypto plumbing -----------------------------------------------------

    def trapdoor(self, term: str) -> str:
        """The keyed on-disk identity of a term."""
        return hmac_sha256(self._trapdoor_key, term.lower().encode("utf-8")).hex()

    def _cipher_for(self, trapdoor: str) -> AeadCipher:
        cached = self._cipher_cache.get(trapdoor)
        if cached is not None:
            self._cipher_cache.move_to_end(trapdoor)
            METRICS.incr("index_cipher_cache_hits")
            return cached
        METRICS.incr("index_cipher_cache_misses")
        key = derive_key(self._list_key_root, f"list/{trapdoor}")
        cipher = AeadCipher(key)
        self._cipher_cache[trapdoor] = cipher
        if len(self._cipher_cache) > _CIPHER_CACHE_CAPACITY:
            self._cipher_cache.popitem(last=False)
        return cipher

    def _associated_data(self, trapdoor: str, version: int) -> bytes:
        return canonical_bytes({"trapdoor": trapdoor, "version": version})

    # -- posting-list persistence -----------------------------------------------

    def _prepare_list(self, trapdoor: str, documents: list[str]) -> tuple[str, int, bytes]:
        """Encrypt one posting-list version; returns ``(trapdoor,
        version, stored_bytes)`` without touching the journal."""
        return self._prepare_lists([(trapdoor, documents)])[0]

    def _prepare_lists(
        self, lists: list[tuple[str, list[str]]]
    ) -> list[tuple[str, int, bytes]]:
        """Encrypt a batch of posting-list versions through ONE
        vectorized AEAD pass (per-list keys and associated data stay
        exactly as in the scalar path; only the keystream generation is
        amortized across lists)."""
        staged: list[tuple[str, int]] = []
        items: list[tuple[AeadCipher, bytes, bytes]] = []
        for trapdoor, documents in lists:
            previous = self._current.get(trapdoor)
            version = previous.version + 1 if previous else 0
            padded = sorted(documents) + [_PAD_DOC] * (
                _padded_length(len(documents)) - len(documents)
            )
            staged.append((trapdoor, version))
            items.append(
                (
                    self._cipher_for(trapdoor),
                    canonical_bytes(padded),
                    self._associated_data(trapdoor, version),
                )
            )
        boxes = encrypt_many(items)
        return [
            (
                trapdoor,
                version,
                canonical_bytes({"t": trapdoor, "v": version, "box": box.to_bytes()}),
            )
            for (trapdoor, version), box in zip(staged, boxes)
        ]

    def _commit_prepared(self, prepared: list[tuple[str, int, bytes]]) -> None:
        """Journal prepared list versions under ONE device write and
        update the version tables."""
        entries = self._journal.append_many([stored for _, _, stored in prepared])
        for (trapdoor, version, stored), entry in zip(prepared, entries):
            previous = self._current.get(trapdoor)
            if previous is not None:
                self._superseded.setdefault(trapdoor, []).append(previous)
            self._current[trapdoor] = _ListVersion(
                journal_sequence=entry.sequence,
                device_offset=entry.offset + HEADER_SIZE,
                size=len(stored),
                version=version,
            )

    def _write_list(self, trapdoor: str, documents: list[str]) -> None:
        self._commit_prepared([self._prepare_list(trapdoor, documents)])

    def _read_list(self, trapdoor: str) -> list[str]:
        meta = self._current.get(trapdoor)
        if meta is None:
            return []
        stored = canonical_loads(self._journal.read(meta.journal_sequence))
        if stored["t"] != trapdoor or stored["v"] != meta.version:
            raise IntegrityError(
                "posting list substitution detected (trapdoor/version mismatch)"
            )
        box = AeadCiphertext.from_bytes(stored["box"])
        plaintext = self._cipher_for(trapdoor).decrypt(
            box, associated_data=self._associated_data(trapdoor, meta.version)
        )
        return [doc for doc in canonical_loads(plaintext) if doc != _PAD_DOC]

    def _read_lists(self, trapdoors: list[str]) -> list[list[str]]:
        """Batch of :meth:`_read_list`: identical per-list validation
        (journal checksum, trapdoor/version binding, per-item MAC), but
        all the posting-list decrypts share one vectorized keystream
        pass.  Absent trapdoors yield empty lists, as in the scalar
        path."""
        results: list[list[str]] = [[] for _ in trapdoors]
        items = []
        slots = []
        for slot, trapdoor in enumerate(trapdoors):
            meta = self._current.get(trapdoor)
            if meta is None:
                continue
            stored = canonical_loads(self._journal.read(meta.journal_sequence))
            if stored["t"] != trapdoor or stored["v"] != meta.version:
                raise IntegrityError(
                    "posting list substitution detected (trapdoor/version mismatch)"
                )
            items.append(
                (
                    self._cipher_for(trapdoor),
                    AeadCiphertext.from_bytes(stored["box"]),
                    self._associated_data(trapdoor, meta.version),
                )
            )
            slots.append(slot)
        for slot, plaintext in zip(slots, decrypt_many(items)):
            results[slot] = [doc for doc in canonical_loads(plaintext) if doc != _PAD_DOC]
        return results

    # -- public API ---------------------------------------------------------------

    def add_document(self, document_id: str, text: str) -> int:
        """Index a document; returns the number of distinct terms."""
        if document_id in self._documents:
            raise IndexError_(f"document {document_id} already indexed")
        if not document_id:
            raise IndexError_("document id must not be empty")
        terms = unique_terms(text)
        for term in terms:
            trapdoor = self.trapdoor(term)
            documents = self._read_list(trapdoor)
            documents.append(document_id)
            self._write_list(trapdoor, documents)
        self._documents.add(document_id)
        return len(terms)

    def add_documents(self, documents: list[tuple[str, str]]) -> list[int]:
        """Index a batch of ``(document_id, text)`` pairs.

        Each affected posting list is read and re-encrypted ONCE for
        the whole batch (instead of once per containing document), and
        all new list versions land in a single journal device write.
        Returns the per-document distinct-term counts, in input order.

        Validation is all-or-nothing up front; the batch is rejected
        before any state changes if any id is empty, already indexed,
        or duplicated within the batch.
        """
        seen: set[str] = set()
        for document_id, _ in documents:
            if not document_id:
                raise IndexError_("document id must not be empty")
            if document_id in self._documents:
                raise IndexError_(f"document {document_id} already indexed")
            if document_id in seen:
                raise IndexError_(f"document {document_id} duplicated in batch")
            seen.add(document_id)
        # trapdoor -> new document ids, preserving batch order
        additions: dict[str, list[str]] = {}
        term_counts: list[int] = []
        for document_id, text in documents:
            terms = unique_terms(text)
            term_counts.append(len(terms))
            for term in terms:
                additions.setdefault(self.trapdoor(term), []).append(document_id)
        trapdoors = list(additions)
        lists = []
        for trapdoor, posting in zip(trapdoors, self._read_lists(trapdoors)):
            posting.extend(additions[trapdoor])
            lists.append((trapdoor, posting))
        prepared = self._prepare_lists(lists) if lists else []
        if prepared:
            self._commit_prepared(prepared)
        self._documents.update(seen)
        METRICS.incr("index_batched_documents", len(documents))
        return term_counts

    def search(self, term: str) -> list[str]:
        """Documents containing *term*; requires the index key by construction."""
        return sorted(self._read_list(self.trapdoor(term)))

    def search_all(self, terms: list[str]) -> list[str]:
        """Conjunctive query."""
        if not terms:
            return []
        results: set[str] | None = None
        for term in terms:
            postings = set(self._read_list(self.trapdoor(term)))
            results = postings if results is None else results & postings
        return sorted(results or set())

    def verify(self) -> list[str]:
        """Decrypt every current posting list; returns the trapdoors that
        fail authentication (tampered or substituted lists)."""
        failures = []
        for trapdoor in sorted(self._current):
            try:
                self._read_list(trapdoor)
            except Exception:
                failures.append(trapdoor)
        return failures

    # -- hooks used by secure deletion ----------------------------------------------

    def current_versions(self) -> dict[str, _ListVersion]:
        return dict(self._current)

    def superseded_versions(self) -> dict[str, list[_ListVersion]]:
        return {trapdoor: list(metas) for trapdoor, metas in self._superseded.items()}

    def rewrite_lists_without(self, document_id: str) -> list[str]:
        """Rewrite every posting list that contains *document_id*,
        omitting it.  Returns the affected trapdoors.  The superseded
        (still-decryptable) old versions are recorded for scrubbing."""
        affected = []
        for trapdoor in sorted(self._current):
            documents = self._read_list(trapdoor)
            if document_id in documents:
                documents = [doc for doc in documents if doc != document_id]
                self._write_list(trapdoor, documents)
                affected.append(trapdoor)
        self._documents.discard(document_id)
        return affected

    def clear_superseded(self, trapdoors: list[str]) -> list[_ListVersion]:
        """Pop and return superseded version metadata for *trapdoors*."""
        popped: list[_ListVersion] = []
        for trapdoor in trapdoors:
            popped.extend(self._superseded.pop(trapdoor, []))
        return popped
