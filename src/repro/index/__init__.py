"""Keyword indexing: fast retrieval without privacy leakage.

The paper (§3, Availability and Performance) observes that timely
access requires indexing, but a conventional keyword index *is itself a
disclosure*: "if the keyword Cancer is present in a medical [record],
then an adversary can assume that the patient might have Cancer".

Two indexes are provided:

* :class:`~repro.index.inverted.InvertedIndex` — a plaintext inverted
  index.  Fast, and exactly as leaky as the paper warns; the baselines
  use it, and experiment E4's leakage probe reads keywords straight off
  its device.
* :class:`~repro.index.trustworthy.TrustworthyIndex` — the compliant
  index: terms are replaced by HMAC trapdoors (keyed, so the adversary
  cannot enumerate the dictionary), posting lists are AEAD-encrypted
  and padded to bucket sizes (so list *lengths* leak little), and every
  posting-list update is MACed (tamper-evident).
* :mod:`repro.index.secure_deletion` — removal of a document from
  posting lists with *verifiable* absence afterwards (Mitra & Winslett,
  StorageSS'06 motivated), via re-encryption of affected lists.
"""

from repro.index.epochs import EpochedIndex
from repro.index.inverted import InvertedIndex
from repro.index.secure_deletion import SecureDeletionIndex
from repro.index.tokenizer import tokenize
from repro.index.trustworthy import TrustworthyIndex

__all__ = [
    "EpochedIndex",
    "InvertedIndex",
    "SecureDeletionIndex",
    "tokenize",
    "TrustworthyIndex",
]
