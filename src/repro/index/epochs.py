"""Epoch-partitioned trustworthy indexing.

Long-retention archives expire records in *cohorts*: everything written
in 1977 becomes disposable together in 2007.  A single monolithic index
makes that expensive — every posting list must be rewritten and
scrubbed per document.  The trustworthy-retention literature the paper
cites (Mitra, Hsu & Winslett) partitions the index by time instead:

* each *epoch* (e.g. a year) gets its own
  :class:`~repro.index.trustworthy.TrustworthyIndex` on its own device,
  keyed by an epoch-derived subkey;
* queries fan out across epochs (optionally restricted to a time
  window, which also makes time-scoped queries cheaper);
* when an epoch's retention expires, :meth:`EpochedIndex.drop_epoch`
  destroys the whole segment at once — shred the epoch key, zero the
  device — in O(segment) instead of O(documents × terms) rewrites.

``drop`` vs ``per-document delete`` is exactly the ablation
benchmarked in E5's epoch extension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.kdf import derive_key
from repro.errors import IndexError_
from repro.index.secure_deletion import SecureDeletionIndex
from repro.index.trustworthy import TrustworthyIndex
from repro.storage.block import BlockDevice, MemoryDevice


@dataclass(frozen=True)
class EpochStats:
    """Size/status of one epoch segment."""

    epoch: int
    documents: int
    vocabulary: int
    dropped: bool


class EpochedIndex:
    """A family of per-epoch trustworthy indexes with bulk expiry."""

    def __init__(
        self,
        master_key: bytes,
        epoch_seconds: float,
        segment_capacity: int = 1 << 22,
    ) -> None:
        if len(master_key) != 32:
            raise IndexError_("index master key must be 32 bytes")
        if epoch_seconds <= 0:
            raise IndexError_("epoch length must be positive")
        self._master_key = master_key
        self._epoch_seconds = float(epoch_seconds)
        self._segment_capacity = segment_capacity
        self._segments: dict[int, SecureDeletionIndex] = {}
        self._dropped: set[int] = set()
        self._doc_epoch: dict[str, int] = {}

    # -- epoch plumbing -----------------------------------------------------

    def epoch_of(self, timestamp: float) -> int:
        return int(timestamp // self._epoch_seconds)

    def _segment_for(self, epoch: int) -> SecureDeletionIndex:
        if epoch in self._dropped:
            raise IndexError_(f"epoch {epoch} was dropped; it cannot be reused")
        segment = self._segments.get(epoch)
        if segment is None:
            key = derive_key(self._master_key, f"epoch/{epoch}")
            segment = SecureDeletionIndex(
                TrustworthyIndex(
                    key,
                    device=MemoryDevice(f"eidx-{epoch}", self._segment_capacity),
                )
            )
            self._segments[epoch] = segment
        return segment

    def epochs(self) -> list[int]:
        """Live (non-dropped) epochs, sorted."""
        return sorted(set(self._segments) - self._dropped)

    def devices(self) -> list[BlockDevice]:
        return [self._segments[e].index.device for e in sorted(self._segments)]

    # -- document operations ----------------------------------------------------

    def add_document(self, document_id: str, text: str, timestamp: float) -> int:
        """Index a document into its creation epoch."""
        if document_id in self._doc_epoch:
            raise IndexError_(f"document {document_id} already indexed")
        epoch = self.epoch_of(timestamp)
        count = self._segment_for(epoch).add_document(document_id, text)
        self._doc_epoch[document_id] = epoch
        return count

    def delete_document(self, document_id: str):
        """Per-document secure deletion (the slow path the epoch design
        avoids for cohort expiry, still needed for one-off corrections)."""
        epoch = self._doc_epoch.get(document_id)
        if epoch is None or epoch in self._dropped:
            raise IndexError_(f"document {document_id} is not indexed")
        certificate = self._segments[epoch].delete_document(document_id)
        del self._doc_epoch[document_id]
        return certificate

    # -- queries --------------------------------------------------------------------

    def search(self, term: str) -> list[str]:
        """Fan-out query over all live epochs."""
        hits: list[str] = []
        for epoch in self.epochs():
            hits.extend(self._segments[epoch].search(term))
        return sorted(hits)

    def search_window(self, term: str, start: float, end: float) -> list[str]:
        """Query only the epochs overlapping ``[start, end)``."""
        if end <= start:
            return []
        first = self.epoch_of(start)
        # end is exclusive: step just below it so an end exactly on an
        # epoch boundary does not drag in the next epoch.
        last = self.epoch_of(math.nextafter(end, start))
        hits: list[str] = []
        for epoch in self.epochs():
            if first <= epoch <= last:
                hits.extend(self._segments[epoch].search(term))
        return sorted(hits)

    # -- bulk expiry -------------------------------------------------------------------

    def drop_epoch(self, epoch: int) -> int:
        """Destroy an entire epoch segment: zero its device and forget
        its documents.  Returns the number of documents destroyed.

        The segment's key material is derived (never stored), so once
        the ciphertext is gone there is nothing to decrypt; zeroing the
        device removes even the ciphertext.
        """
        segment = self._segments.get(epoch)
        if segment is None or epoch in self._dropped:
            raise IndexError_(f"epoch {epoch} has no live segment")
        device = segment.index.device
        device.raw_write(0, bytes(device.used))
        dropped_docs = [
            doc for doc, doc_epoch in self._doc_epoch.items() if doc_epoch == epoch
        ]
        for doc in dropped_docs:
            del self._doc_epoch[doc]
        self._dropped.add(epoch)
        return len(dropped_docs)

    def expired_epochs(self, now: float, retention_seconds: float) -> list[int]:
        """Epochs whose *end* is older than the retention horizon."""
        return [
            epoch
            for epoch in self.epochs()
            if (epoch + 1) * self._epoch_seconds + retention_seconds <= now
        ]

    def stats(self) -> list[EpochStats]:
        """Per-epoch statistics (dropped epochs included, zeroed)."""
        rows = []
        for epoch in sorted(self._segments):
            if epoch in self._dropped:
                rows.append(EpochStats(epoch, 0, 0, dropped=True))
            else:
                segment = self._segments[epoch]
                rows.append(
                    EpochStats(
                        epoch,
                        len(segment.index),
                        segment.index.vocabulary_size,
                        dropped=False,
                    )
                )
        return rows
