"""Plaintext inverted index (the leaky baseline).

Term → sorted posting list of document ids, persisted to a journal in
cleartext.  Queries are fast; so is the adversary: a raw dump of the
device yields the full vocabulary and every (term, document) pair —
experiment E4's leakage probe demonstrates the "Cancer" inference the
paper warns about.
"""

from __future__ import annotations

from repro.errors import IndexError_
from repro.index.tokenizer import unique_terms
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import Journal
from repro.util.encoding import canonical_bytes


class InvertedIndex:
    """Conventional term → document-ids index, stored in cleartext."""

    def __init__(self, device: BlockDevice | None = None) -> None:
        self._journal = Journal(device or MemoryDevice("idx-dev", 1 << 22))
        self._postings: dict[str, set[str]] = {}
        self._documents: set[str] = set()

    @property
    def device(self) -> BlockDevice:
        return self._journal.device

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def add_document(self, document_id: str, text: str) -> int:
        """Index a document; returns the number of distinct terms added."""
        if document_id in self._documents:
            raise IndexError_(f"document {document_id} already indexed")
        terms = unique_terms(text)
        for term in terms:
            self._postings.setdefault(term, set()).add(document_id)
            # Persist each (term, doc) pair in cleartext — this is the
            # leak surface the trustworthy index closes.
            self._journal.append(
                canonical_bytes({"op": "add", "term": term, "doc": document_id})
            )
        self._documents.add(document_id)
        return len(terms)

    def add_documents(self, documents: list[tuple[str, str]]) -> list[int]:
        """Index a batch of ``(document_id, text)`` pairs.

        Produces the same postings and the same cleartext journal
        frames as per-document :meth:`add_document` calls, but every
        (term, doc) frame lands in ONE batched device flush.  Returns
        the per-document distinct-term counts, in input order.
        """
        seen: set[str] = set()
        for document_id, _ in documents:
            if document_id in self._documents or document_id in seen:
                raise IndexError_(f"document {document_id} already indexed")
            seen.add(document_id)
        counts: list[int] = []
        payloads: list[bytes] = []
        for document_id, text in documents:
            terms = unique_terms(text)
            counts.append(len(terms))
            for term in terms:
                self._postings.setdefault(term, set()).add(document_id)
                payloads.append(
                    canonical_bytes({"op": "add", "term": term, "doc": document_id})
                )
            self._documents.add(document_id)
        if payloads:
            self._journal.append_many(payloads)
        return counts

    def search(self, term: str) -> list[str]:
        """Documents containing *term* (single-term lookup)."""
        return sorted(self._postings.get(term.lower(), set()))

    def search_all(self, terms: list[str]) -> list[str]:
        """Conjunctive query: documents containing every term."""
        if not terms:
            return []
        results: set[str] | None = None
        for term in terms:
            postings = self._postings.get(term.lower(), set())
            results = postings if results is None else results & postings
        return sorted(results or set())

    def remove_document(self, document_id: str, text: str) -> None:
        """Best-effort, idempotent removal.  Unknown documents and terms
        never indexed (or already removed) are no-ops — retry-safe, and
        only actual removals are journaled.  NOTE: the cleartext journal
        retains the historical (term, doc) pairs — deletion here is not
        secure, which is exactly what :mod:`repro.index.secure_deletion`
        fixes."""
        if document_id not in self._documents:
            return
        for term in unique_terms(text):
            postings = self._postings.get(term)
            if postings is None or document_id not in postings:
                continue
            postings.discard(document_id)
            if not postings:
                del self._postings[term]
            self._journal.append(
                canonical_bytes({"op": "del", "term": term, "doc": document_id})
            )
        self._documents.discard(document_id)

    def terms(self) -> list[str]:
        """The full vocabulary (trivially available to anyone)."""
        return sorted(self._postings)
