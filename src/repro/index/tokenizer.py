"""Tokenization for clinical text.

Lower-cases, strips punctuation, drops stopwords and pure numbers.
The stopword list is small and clinical-text oriented; the point is to
keep index vocabulary meaningful (diagnoses, drugs, procedures), not to
be a linguistics project.
"""

from __future__ import annotations

import re

_TOKEN = re.compile(r"[a-z][a-z0-9'-]*")

STOPWORDS = frozenset(
    """
    a an and are as at be but by for from has have he her his if in is it
    its no not of on or she that the their them they this to was were will
    with patient pt denies reports history noted present presents normal
    exam without within
    """.split()
)


def tokenize(text: str) -> list[str]:
    """Extract index terms from free text (order preserved, duplicates kept)."""
    return [
        token
        for token in _TOKEN.findall(text.lower())
        if token not in STOPWORDS and len(token) > 1
    ]


def unique_terms(text: str) -> set[str]:
    """The distinct index terms of a document."""
    return set(tokenize(text))
