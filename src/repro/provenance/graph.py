"""System-wide provenance DAG.

Nodes are objects (records, manifests, backups) and custodians
(systems, sites); edges carry relationships:

* ``derived_from`` — object → object (a corrected version derives from
  its predecessor; a backup derives from its source set);
* ``held_by`` — object → custodian with a time interval;
* ``migrated_to`` — object → object across stores.

The DAG answers the audit questions the paper raises for records that
move between systems over decades: full ancestry of a record, every
system that ever held it, and whether any record's history contains a
cycle (which would indicate forged provenance — derivation is acyclic
by nature).

Built on :mod:`networkx`, which this environment provides.
"""

from __future__ import annotations

from typing import Any

import networkx as nx

from repro.errors import ProvenanceError


class ProvenanceGraph:
    """Typed provenance DAG over objects and custodians."""

    OBJECT = "object"
    CUSTODIAN = "custodian"

    def __init__(self) -> None:
        self._graph = nx.MultiDiGraph()

    # -- construction ------------------------------------------------------

    def add_object(self, object_id: str, **attrs: Any) -> None:
        self._ensure_kind(object_id, self.OBJECT)
        self._graph.add_node(object_id, kind=self.OBJECT, **attrs)

    def add_custodian(self, custodian_id: str, **attrs: Any) -> None:
        self._ensure_kind(custodian_id, self.CUSTODIAN)
        self._graph.add_node(custodian_id, kind=self.CUSTODIAN, **attrs)

    def _ensure_kind(self, node_id: str, kind: str) -> None:
        if node_id in self._graph and self._graph.nodes[node_id].get("kind") != kind:
            raise ProvenanceError(
                f"node {node_id!r} already exists with a different kind"
            )

    def _require_object(self, object_id: str) -> None:
        if (
            object_id not in self._graph
            or self._graph.nodes[object_id].get("kind") != self.OBJECT
        ):
            raise ProvenanceError(f"unknown object {object_id!r}")

    def record_derivation(
        self, derived_id: str, source_id: str, reason: str = ""
    ) -> None:
        """derived_id was produced from source_id (correction, backup...)."""
        self._require_object(derived_id)
        self._require_object(source_id)
        if derived_id == source_id:
            raise ProvenanceError("an object cannot derive from itself")
        self._graph.add_edge(derived_id, source_id, relation="derived_from", reason=reason)
        if not nx.is_directed_acyclic_graph(self._derivation_view()):
            self._graph.remove_edge(derived_id, source_id)
            raise ProvenanceError(
                f"derivation {derived_id} -> {source_id} would create a cycle"
            )

    def record_custody(
        self, object_id: str, custodian_id: str, start: float, end: float | None = None
    ) -> None:
        """The custodian held the object over [start, end) (end=None: still holds)."""
        self._require_object(object_id)
        if (
            custodian_id not in self._graph
            or self._graph.nodes[custodian_id].get("kind") != self.CUSTODIAN
        ):
            raise ProvenanceError(f"unknown custodian {custodian_id!r}")
        self._graph.add_edge(
            object_id, custodian_id, relation="held_by", start=start, end=end
        )

    def record_migration(self, source_id: str, destination_id: str, when: float) -> None:
        """An object instance moved between stores (new physical copy)."""
        self._require_object(source_id)
        self._require_object(destination_id)
        self._graph.add_edge(
            destination_id, source_id, relation="migrated_from", when=when
        )

    # -- queries ------------------------------------------------------------

    def _derivation_view(self) -> nx.MultiDiGraph:
        edges = [
            (u, v, k)
            for u, v, k, d in self._graph.edges(keys=True, data=True)
            if d["relation"] in ("derived_from", "migrated_from")
        ]
        return self._graph.edge_subgraph(edges) if edges else nx.MultiDiGraph()

    def ancestry(self, object_id: str) -> list[str]:
        """Every object this one derives from (transitively), sorted."""
        self._require_object(object_id)
        view = self._derivation_view()
        if object_id not in view:
            return []
        return sorted(nx.descendants(view, object_id))

    def descendants(self, object_id: str) -> list[str]:
        """Every object derived from this one (transitively), sorted."""
        self._require_object(object_id)
        view = self._derivation_view()
        if object_id not in view:
            return []
        return sorted(nx.ancestors(view, object_id))

    def custody_intervals(self, object_id: str) -> list[tuple[str, float, float | None]]:
        """(custodian, start, end) intervals, sorted by start."""
        self._require_object(object_id)
        intervals = [
            (v, d["start"], d["end"])
            for _, v, d in self._graph.out_edges(object_id, data=True)
            if d["relation"] == "held_by"
        ]
        return sorted(intervals, key=lambda item: item[1])

    def custodians_of(self, object_id: str) -> list[str]:
        """Every system/site that ever held the object (or an ancestor of
        it across migrations)."""
        holders = {c for c, _, _ in self.custody_intervals(object_id)}
        for ancestor in self.ancestry(object_id):
            holders.update(c for c, _, _ in self.custody_intervals(ancestor))
        return sorted(holders)

    def objects_held_by(self, custodian_id: str) -> list[str]:
        """Objects with a custody edge to the custodian."""
        return sorted(
            u
            for u, v, d in self._graph.in_edges(custodian_id, data=True)
            if d["relation"] == "held_by"
        )

    def verify_custody_continuity(self, object_id: str) -> None:
        """Check the custody intervals leave no gap: each interval must
        start exactly when the previous one ended."""
        intervals = self.custody_intervals(object_id)
        if not intervals:
            raise ProvenanceError(f"object {object_id} has no custody intervals")
        for (_, _, prev_end), (custodian, start, _) in zip(intervals, intervals[1:]):
            if prev_end is None:
                raise ProvenanceError(
                    f"object {object_id}: overlapping custody — previous holder "
                    f"never released before {custodian} took it"
                )
            if abs(prev_end - start) > 1e-9:
                raise ProvenanceError(
                    f"object {object_id}: custody gap between {prev_end} and {start}"
                )

    @property
    def node_count(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()
