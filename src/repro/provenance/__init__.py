"""Provenance and chain of custody.

The paper's final gap analysis: "current storage systems do not
implement trustworthy provenance" — yet HIPAA §164.310(d)(2)(iii)
demands a record of the movements of hardware and electronic media and
the persons responsible, and long-retention records will cross systems
repeatedly.

* :mod:`repro.provenance.chain` — per-object custody chains: each
  transfer event is *signed by the releasing custodian* and names the
  receiving custodian, the object digest at hand-off, and the reason.
  A custody chain verifies end-to-end: continuous custodianship, valid
  signatures, digests matching across hops.
* :mod:`repro.provenance.graph` — a system-wide provenance DAG
  (networkx) over objects, custodians, and events, answering ancestry
  questions ("which source objects fed this record?", "every system
  that ever held it").
"""

from repro.provenance.chain import CustodyChain, CustodyEvent, CustodyRegistry
from repro.provenance.graph import ProvenanceGraph

__all__ = ["CustodyChain", "CustodyEvent", "CustodyRegistry", "ProvenanceGraph"]
