"""Signed custody chains for stored objects.

A custody chain is a sequence of events for one object::

    ORIGIN(custodian A, digest d0)
      -> TRANSFER(A -> B, digest d0, signed by A)
      -> TRANSFER(B -> C, digest d0', signed by B)   # d0' must equal d0

Verification checks:

* the chain begins with exactly one ORIGIN;
* custody is continuous (each transfer's sender is the previous holder);
* each transfer is signed by the *releasing* custodian (you cannot be
  handed a record by someone who never signed it away);
* the object digest is constant across hops — a transfer that changes
  bytes is migration *plus tampering*, and surfaces here.

Signatures come from :mod:`repro.crypto.signatures`; the registry holds
a :class:`~repro.crypto.signatures.TrustStore` of known custodians.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.signatures import SignedPayload, Signer, TrustStore
from repro.errors import ProvenanceError


@dataclass(frozen=True)
class CustodyEvent:
    """One signed event in an object's custody history."""

    object_id: str
    event_type: str  # "origin" | "transfer"
    from_custodian: str  # "" for origin
    to_custodian: str
    object_digest: bytes
    timestamp: float
    reason: str
    signed: SignedPayload

    @staticmethod
    def payload(
        object_id: str,
        event_type: str,
        from_custodian: str,
        to_custodian: str,
        object_digest: bytes,
        timestamp: float,
        reason: str,
    ) -> dict[str, Any]:
        return {
            "object_id": object_id,
            "event_type": event_type,
            "from": from_custodian,
            "to": to_custodian,
            "digest": object_digest,
            "timestamp": timestamp,
            "reason": reason,
        }


class CustodyChain:
    """The ordered custody events of one object."""

    def __init__(self, object_id: str) -> None:
        self.object_id = object_id
        self._events: list[CustodyEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[CustodyEvent]:
        return list(self._events)

    def current_custodian(self) -> str:
        if not self._events:
            raise ProvenanceError(f"object {self.object_id} has no custody history")
        return self._events[-1].to_custodian

    def append(self, event: CustodyEvent) -> None:
        if event.object_id != self.object_id:
            raise ProvenanceError(
                f"event for {event.object_id} appended to chain of {self.object_id}"
            )
        self._events.append(event)

    def verify(self, trust: TrustStore) -> None:
        """Full chain verification; raises :class:`ProvenanceError`."""
        if not self._events:
            raise ProvenanceError(f"object {self.object_id}: empty custody chain")
        first = self._events[0]
        if first.event_type != "origin":
            raise ProvenanceError(
                f"object {self.object_id}: chain does not start at an origin"
            )
        digest = first.object_digest
        holder = first.to_custodian
        for position, event in enumerate(self._events):
            if position > 0 and event.event_type != "transfer":
                raise ProvenanceError(
                    f"object {self.object_id}: duplicate origin at position {position}"
                )
            # 1. signature: origin signed by the first custodian,
            #    transfers by the releasing party.
            expected_signer = event.to_custodian if event.event_type == "origin" else event.from_custodian
            if event.signed.signer_id != expected_signer:
                raise ProvenanceError(
                    f"object {self.object_id}: event {position} signed by "
                    f"{event.signed.signer_id!r}, expected {expected_signer!r}"
                )
            try:
                payload = trust.verify(event.signed)
            except Exception as exc:
                raise ProvenanceError(
                    f"object {self.object_id}: event {position} signature invalid: {exc}"
                ) from exc
            # 2. the signed payload must match the event fields.
            expected = CustodyEvent.payload(
                event.object_id,
                event.event_type,
                event.from_custodian,
                event.to_custodian,
                event.object_digest,
                event.timestamp,
                event.reason,
            )
            if payload != expected:
                raise ProvenanceError(
                    f"object {self.object_id}: event {position} payload mismatch"
                )
            # 3. continuity and digest stability.
            if position > 0:
                if event.from_custodian != holder:
                    raise ProvenanceError(
                        f"object {self.object_id}: custody gap at position "
                        f"{position}: {event.from_custodian!r} transferred but "
                        f"{holder!r} held it"
                    )
                if event.object_digest != digest:
                    raise ProvenanceError(
                        f"object {self.object_id}: digest changed in transit at "
                        f"position {position}"
                    )
                holder = event.to_custodian

    def custodians(self) -> list[str]:
        """Every party that ever held the object, in order."""
        if not self._events:
            return []
        holders = [self._events[0].to_custodian]
        for event in self._events[1:]:
            holders.append(event.to_custodian)
        return holders


class CustodyRegistry:
    """Creates and stores custody chains for a site."""

    def __init__(self, trust: TrustStore) -> None:
        self._trust = trust
        self._chains: dict[str, CustodyChain] = {}

    @property
    def trust(self) -> TrustStore:
        return self._trust

    def register_custodian(self, signer: Signer) -> None:
        self._trust.add(signer.verifier())

    def record_origin(
        self,
        object_id: str,
        custodian: Signer,
        object_digest: bytes,
        timestamp: float,
        reason: str = "created",
    ) -> CustodyEvent:
        if object_id in self._chains:
            raise ProvenanceError(f"object {object_id} already has a custody chain")
        payload = CustodyEvent.payload(
            object_id, "origin", "", custodian.signer_id, object_digest, timestamp, reason
        )
        event = CustodyEvent(
            object_id=object_id,
            event_type="origin",
            from_custodian="",
            to_custodian=custodian.signer_id,
            object_digest=object_digest,
            timestamp=timestamp,
            reason=reason,
            signed=custodian.sign(payload),
        )
        chain = CustodyChain(object_id)
        chain.append(event)
        self._chains[object_id] = chain
        return event

    def expatriate(self, object_id: str) -> None:
        """Drop the chain of an object whose custody left this store.

        Used only by patient retirement after a verified migration: the
        destination opens a fresh origin chain (reason ``migrated from
        <source>``) and cross-store continuity is attested by the signed
        migration manifest plus the transferred audit segment — keeping
        the stale chain here would let a round-trip move collide with
        the re-imported copy's new origin."""
        self._chains.pop(object_id, None)

    def record_origins(
        self,
        entries: list[tuple[str, bytes]],
        custodian: Signer,
        timestamp: float,
        reason: str = "created",
    ) -> list[CustodyEvent]:
        """Record origin events for many ``(object_id, digest)`` pairs
        with ONE aggregated signature over the batch's Merkle root.

        Each event's :class:`~repro.crypto.signatures.AggregateSignedPayload`
        carries its own inclusion proof, so :meth:`CustodyChain.verify`
        still detects tampering with any single record — the custody
        trust model is unchanged, only the private-key cost is amortized
        (the hot path of the engine's ``store_many``).
        """
        if not entries:
            return []
        for object_id, _ in entries:
            if object_id in self._chains:
                raise ProvenanceError(
                    f"object {object_id} already has a custody chain"
                )
        seen: set[str] = set()
        for object_id, _ in entries:
            if object_id in seen:
                raise ProvenanceError(
                    f"object {object_id} appears twice in one origin batch"
                )
            seen.add(object_id)
        payloads = [
            CustodyEvent.payload(
                object_id, "origin", "", custodian.signer_id, digest, timestamp, reason
            )
            for object_id, digest in entries
        ]
        signed_batch = custodian.sign_batch(payloads)
        events = []
        for (object_id, digest), signed in zip(entries, signed_batch):
            event = CustodyEvent(
                object_id=object_id,
                event_type="origin",
                from_custodian="",
                to_custodian=custodian.signer_id,
                object_digest=digest,
                timestamp=timestamp,
                reason=reason,
                signed=signed,
            )
            chain = CustodyChain(object_id)
            chain.append(event)
            self._chains[object_id] = chain
            events.append(event)
        return events

    def record_transfer(
        self,
        object_id: str,
        releasing: Signer,
        receiving_id: str,
        object_digest: bytes,
        timestamp: float,
        reason: str,
    ) -> CustodyEvent:
        chain = self.chain_for(object_id)
        if chain.current_custodian() != releasing.signer_id:
            raise ProvenanceError(
                f"{releasing.signer_id!r} cannot release object {object_id}: "
                f"current custodian is {chain.current_custodian()!r}"
            )
        payload = CustodyEvent.payload(
            object_id,
            "transfer",
            releasing.signer_id,
            receiving_id,
            object_digest,
            timestamp,
            reason,
        )
        event = CustodyEvent(
            object_id=object_id,
            event_type="transfer",
            from_custodian=releasing.signer_id,
            to_custodian=receiving_id,
            object_digest=object_digest,
            timestamp=timestamp,
            reason=reason,
            signed=releasing.sign(payload),
        )
        chain.append(event)
        return event

    def chain_for(self, object_id: str) -> CustodyChain:
        chain = self._chains.get(object_id)
        if chain is None:
            raise ProvenanceError(f"object {object_id} has no custody chain")
        return chain

    def verify_all(self) -> dict[str, str]:
        """Verify every chain; returns {object_id: problem} for failures."""
        problems = {}
        for object_id, chain in sorted(self._chains.items()):
            try:
                chain.verify(self._trust)
            except ProvenanceError as exc:
                problems[object_id] = str(exc)
        return problems

    def object_ids(self) -> list[str]:
        return sorted(self._chains)
