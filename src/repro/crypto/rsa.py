"""RSA signatures with deterministic padding (hash-then-sign).

Used for: signed custody-transfer events (provenance), signed migration
manifests, and signed audit anchors — the places where *non-repudiation*
matters, not just integrity.  MACs cannot provide non-repudiation
because both parties hold the key; signatures can.

Implementation notes
--------------------
* Key generation uses Miller-Rabin probable primes.  Default modulus is
  1024 bits: fine for a simulation substrate, fast enough for tests.
  (Real deployments would use >=3072-bit keys or a modern signature
  scheme; this module documents that explicitly rather than pretending.)
* Signing is "full-domain-hash style": the SHA-256 digest is embedded
  in a fixed, deterministic PKCS#1 v1.5-like padding block, then
  exponentiated.  Deterministic padding keeps signatures reproducible
  across runs, which the experiment harness relies on.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.errors import AuthenticationError, CryptoError

_MILLER_RABIN_ROUNDS = 40
_E = 65537

# SHA-256 DigestInfo prefix from PKCS#1 v1.5.
_SHA256_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")


def _is_probable_prime(candidate: int, rng_bits: int) -> bool:
    if candidate < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)
    for p in small_primes:
        if candidate % p == 0:
            return candidate == p
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = secrets.randbelow(candidate - 3) + 2
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int) -> int:
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, bits):
            return candidate


def _modinv(a: int, m: int) -> int:
    g, x = _extended_gcd(a, m)
    if g != 1:
        raise CryptoError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    return old_r, old_s


@dataclass(frozen=True)
class RsaPublicKey:
    """Verification half of an RSA key pair."""

    modulus: int
    exponent: int

    #: Backend metadata consumed by :class:`repro.crypto.signatures.Signer`.
    algorithm = "rsa"

    @property
    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Stable hex identifier for this key (hash of n||e)."""
        material = self.modulus.to_bytes(self.byte_length, "big") + self.exponent.to_bytes(4, "big")
        return hashlib.sha256(material).hexdigest()[:16]

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify a signature; raises :class:`AuthenticationError` on failure."""
        k = self.byte_length
        if len(signature) != k:
            raise AuthenticationError("signature length mismatch")
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.modulus:
            raise AuthenticationError("signature out of range")
        recovered = pow(sig_int, self.exponent, self.modulus).to_bytes(k, "big")
        expected = _pad_digest(hashlib.sha256(message).digest(), k)
        if recovered != expected:
            raise AuthenticationError("RSA signature verification failed")


def _pad_digest(digest: bytes, key_bytes: int) -> bytes:
    """PKCS#1 v1.5 type-1 padding around the SHA-256 DigestInfo."""
    payload = _SHA256_PREFIX + digest
    pad_len = key_bytes - len(payload) - 3
    if pad_len < 8:
        raise CryptoError("RSA modulus too small for SHA-256 signature")
    return b"\x00\x01" + b"\xff" * pad_len + b"\x00" + payload


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key pair; ``public`` can be shared, the rest must not be.

    When the prime factors are retained (the normal case from
    :func:`generate_keypair`), signing uses the Chinese Remainder
    Theorem: two half-size exponentiations plus a recombination, ~4x
    faster than ``pow(m, d, n)`` and producing the identical signature.
    Pairs built without factors (``p``/``q`` of 0) fall back to the
    direct form.
    """

    public: RsaPublicKey
    private_exponent: int
    p: int = 0
    q: int = 0

    #: Backend metadata consumed by :class:`repro.crypto.signatures.Signer`.
    algorithm = "rsa"

    def __post_init__(self) -> None:
        # Precompute the CRT constants once; frozen dataclass, so set
        # through object.__setattr__.
        if self.p and self.q:
            object.__setattr__(self, "_d_p", self.private_exponent % (self.p - 1))
            object.__setattr__(self, "_d_q", self.private_exponent % (self.q - 1))
            object.__setattr__(self, "_q_inv", _modinv(self.q, self.p))

    def sign(self, message: bytes) -> bytes:
        """Deterministically sign SHA-256(message)."""
        k = self.public.byte_length
        padded = _pad_digest(hashlib.sha256(message).digest(), k)
        m_int = int.from_bytes(padded, "big")
        if self.p and self.q:
            s_p = pow(m_int % self.p, self._d_p, self.p)
            s_q = pow(m_int % self.q, self._d_q, self.q)
            h = (self._q_inv * (s_p - s_q)) % self.p
            sig_int = (s_q + h * self.q) % self.public.modulus
        else:
            sig_int = pow(m_int, self.private_exponent, self.public.modulus)
        return sig_int.to_bytes(k, "big")


def generate_keypair(bits: int = 1024) -> RsaKeyPair:
    """Generate an RSA key pair with a *bits*-bit modulus."""
    if bits < 512:
        raise CryptoError("modulus must be at least 512 bits")
    if bits % 2:
        raise CryptoError("modulus bit length must be even")
    while True:
        p = _random_prime(bits // 2)
        q = _random_prime(bits // 2)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % _E == 0:
            continue
        d = _modinv(_E, phi)
        return RsaKeyPair(
            public=RsaPublicKey(modulus=n, exponent=_E),
            private_exponent=d,
            p=p,
            q=q,
        )
