"""SHA-256 hashing helpers.

All integrity mechanisms in the library (audit chains, Merkle trees,
record digests, migration manifests) bottom out in these functions, so
they are deliberately tiny and hard to misuse: the only hash exposed is
SHA-256, inputs are bytes or canonical-encodable values, and chained
digests use an explicit domain separator so a chain digest can never
collide with a leaf digest.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

from repro.util.encoding import canonical_bytes

DIGEST_SIZE = 32

_LEAF_PREFIX = b"\x00"
_CHAIN_PREFIX = b"\x01"


def sha256(data: bytes) -> bytes:
    """SHA-256 of raw bytes."""
    return hashlib.sha256(data).digest()


def hash_canonical(value: Any) -> bytes:
    """SHA-256 of the canonical encoding of *value*.

    This is the standard way to fingerprint a structured object
    (record version, audit event, manifest entry) in the library.
    """
    return sha256(_LEAF_PREFIX + canonical_bytes(value))


def chain_digest(previous: bytes, payload: bytes) -> bytes:
    """Extend a hash chain: ``H(0x01 || previous || payload)``.

    The ``0x01`` domain separator keeps chain digests disjoint from the
    leaf digests produced by :func:`hash_canonical` (``0x00`` prefix).
    """
    if len(previous) != DIGEST_SIZE:
        raise ValueError(f"previous digest must be {DIGEST_SIZE} bytes")
    return sha256(_CHAIN_PREFIX + previous + payload)


GENESIS_DIGEST = bytes(DIGEST_SIZE)
"""The all-zero digest used as the chain head before any entry exists."""


def hash_chunks(chunks: Iterable[bytes]) -> bytes:
    """SHA-256 over a stream of byte chunks without concatenating them."""
    hasher = hashlib.sha256()
    for chunk in chunks:
        hasher.update(chunk)
    return hasher.digest()
