"""Hashing helpers.

All integrity mechanisms in the library (audit chains, Merkle trees,
record digests, migration manifests) bottom out in these functions, so
they are deliberately tiny and hard to misuse.  Two primitives:

* **SHA-256** (:func:`sha256`, :func:`hash_chunks`) for content digests
  and on-device frame checksums — the journal's wire format is pinned
  to ``sha256[:8]`` and the threat harness recomputes it directly, so
  those bytes never change.
* **BLAKE2b-256** (:func:`hash_canonical`, :func:`chain_digest`) for
  the in-memory integrity loops: audit-chain extension and structured
  fingerprints hash small (tens to hundreds of bytes) inputs millions
  of times, where BLAKE2b's lower per-call overhead wins.  Domain
  separation uses BLAKE2b's *personalization* parameter instead of a
  prefix byte, so no ``prefix + previous + payload`` concatenation is
  ever materialized — inputs (including :class:`memoryview`s) stream
  straight into the hasher.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

from repro.util.encoding import canonical_bytes

DIGEST_SIZE = 32

_LEAF_PERSON = b"repro/leaf"
_CHAIN_PERSON = b"repro/chain"


def sha256(data: bytes) -> bytes:
    """SHA-256 of raw bytes."""
    return hashlib.sha256(data).digest()


def hash_canonical(value: Any) -> bytes:
    """BLAKE2b-256 of the canonical encoding of *value*.

    This is the standard way to fingerprint a structured object
    (record version, audit event, manifest entry) in the library.
    Domain-separated from :func:`chain_digest` by personalization.
    """
    return hashlib.blake2b(
        canonical_bytes(value), digest_size=DIGEST_SIZE, person=_LEAF_PERSON
    ).digest()


def chain_digest(previous: bytes, payload: bytes) -> bytes:
    """Extend a hash chain: ``BLAKE2b(previous || payload)`` under the
    chain personalization.

    Personalization keeps chain digests disjoint from the leaf digests
    produced by :func:`hash_canonical`.  *payload* may be any buffer
    (``bytes``, ``bytearray``, ``memoryview``) — both inputs stream
    into the hasher, so the chain-update loop never concatenates.
    """
    if len(previous) != DIGEST_SIZE:
        raise ValueError(f"previous digest must be {DIGEST_SIZE} bytes")
    hasher = hashlib.blake2b(digest_size=DIGEST_SIZE, person=_CHAIN_PERSON)
    hasher.update(previous)
    hasher.update(payload)
    return hasher.digest()


GENESIS_DIGEST = bytes(DIGEST_SIZE)
"""The all-zero digest used as the chain head before any entry exists."""


def hash_chunks(chunks: Iterable[bytes]) -> bytes:
    """SHA-256 over a stream of byte chunks without concatenating them."""
    hasher = hashlib.sha256()
    for chunk in chunks:
        hasher.update(chunk)
    return hasher.digest()
