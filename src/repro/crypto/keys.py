"""Shreddable key hierarchy — the engine behind secure deletion.

HIPAA §164.310(d)(2)(i-ii) requires trustworthy *disposal* of records
and sanitization of media before re-use.  Overwriting alone is slow and
unverifiable on some media; the standard compliance technique is
**cryptographic deletion**: encrypt every record under its own key, and
destroy the key to render the ciphertext permanently unreadable — even
on stolen media or forgotten backups.

:class:`KeyStore` implements this:

* every record gets a fresh random data key, wrapped (encrypted) under
  the store's master key and held in the keystore;
* :meth:`KeyStore.shred` destroys the wrapped key material and records
  a tombstone with the shredding timestamp (itself auditable);
* using a shredded key raises :class:`ShreddedKeyError`, and nothing in
  the store retains enough material to reconstruct it.

The keystore also supports exporting wrapped keys for backup — backups
made *before* a shred still contain the wrapped key, which is why the
disposition workflow (:mod:`repro.retention.disposition`) must shred
the key in every replica; the backup manager cooperates.
"""

from __future__ import annotations

import secrets
from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.aead import AeadCipher, AeadCiphertext, encrypt_many
from repro.crypto.chacha20 import KEY_SIZE
from repro.errors import KeyManagementError
from repro.storage.block import BlockDevice
from repro.storage.journal import HEADER_SIZE, Journal
from repro.util.clock import Clock, WallClock
from repro.util.encoding import canonical_bytes, canonical_loads
from repro.util.metrics import METRICS

_CIPHER_CACHE_CAPACITY = 4096


class ShreddedKeyError(KeyManagementError):
    """The requested key was cryptographically destroyed."""


@dataclass(frozen=True)
class KeyHandle:
    """Opaque reference to a data key held in a :class:`KeyStore`."""

    key_id: str

    def __str__(self) -> str:
        return self.key_id


@dataclass
class _KeyEntry:
    wrapped: AeadCiphertext | None  # None once shredded
    created_at: float
    shredded_at: float | None = None
    label: str = ""


class KeyStore:
    """Per-record data keys wrapped under a master key, with shredding.

    The master key itself never leaves the constructor argument; in a
    real deployment it would live in an HSM.  Here it is held in memory,
    which is faithful enough for the threat experiments: the insider
    adversary in :mod:`repro.threats` gets raw *device* access, not
    memory access.
    """

    def __init__(
        self,
        master_key: bytes,
        clock: Clock | None = None,
        device: BlockDevice | None = None,
    ) -> None:
        if len(master_key) != KEY_SIZE:
            raise KeyManagementError(f"master key must be {KEY_SIZE} bytes")
        self._wrapper = AeadCipher(master_key)
        self._clock = clock or WallClock()
        self._entries: dict[str, _KeyEntry] = {}
        self._counter = 0
        # Optional escrow journal: every wrapped key (and every shred
        # tombstone) is persisted so a restarted store can rebuild its
        # key hierarchy from the device + the HSM-held master key.  The
        # frames hold only AEAD ciphertext wrapped under the master key,
        # so the insider with the device learns nothing — and shredding
        # physically zeroes the wrapped bytes, keeping cryptographic
        # deletion honest even if the master key later leaks.
        self._escrow = Journal(device) if device is not None else None
        self._escrow_extents: dict[str, tuple[int, int]] = {}
        # Unwrap + HKDF memo: key_id -> ready AeadCipher.  Shredding
        # MUST invalidate (see shred/invalidate_cached) — a hit after a
        # shred would resurrect a destroyed key.
        self._cipher_cache: OrderedDict[str, AeadCipher] = OrderedDict()

    @property
    def device(self) -> BlockDevice | None:
        """The escrow device, if this keystore persists wrapped keys."""
        return self._escrow.device if self._escrow is not None else None

    def __len__(self) -> int:
        return len(self._entries)

    def create_key(self, label: str = "") -> KeyHandle:
        """Mint a fresh random data key and return its handle.

        With an escrow device, the wrapped key is journaled *before* the
        in-memory entry exists: a crash mid-escrow loses an unused key,
        never a used-but-unrecoverable one.
        """
        self._counter += 1
        key_id = f"key-{self._counter:08d}"
        data_key = secrets.token_bytes(KEY_SIZE)
        created_at = self._clock.now()
        wrapped = self._wrapper.encrypt(data_key, associated_data=key_id.encode())
        if self._escrow is not None:
            payload = canonical_bytes(
                {
                    "kind": "key",
                    "key_id": key_id,
                    "label": label,
                    "created_at": created_at,
                    "wrapped": wrapped.to_bytes(),
                }
            )
            entry = self._escrow.append(payload)
            self._escrow_extents[key_id] = (entry.offset + HEADER_SIZE, len(payload))
        self._entries[key_id] = _KeyEntry(
            wrapped=wrapped, created_at=created_at, label=label
        )
        return KeyHandle(key_id=key_id)

    def create_keys(self, labels: list[str]) -> list[KeyHandle]:
        """Mint many fresh data keys at once (the ``store_many`` path).

        Semantically N :meth:`create_key` calls — same ids, same escrow
        frame bytes per key — but all the wraps run through one
        vectorized AEAD pass and all the escrow frames land in one
        batched journal flush.  Crash safety is unchanged: the whole
        batch of wrapped keys is journaled *before* any in-memory entry
        exists, so a crash mid-escrow loses unused keys, never a
        used-but-unrecoverable one.
        """
        if not labels:
            return []
        created_at = self._clock.now()
        key_ids = []
        data_keys = []
        for _ in labels:
            self._counter += 1
            key_ids.append(f"key-{self._counter:08d}")
            data_keys.append(secrets.token_bytes(KEY_SIZE))
        data_key_by_id = dict(zip(key_ids, data_keys))
        wrapped_boxes = encrypt_many(
            [
                (self._wrapper, data_key, key_id.encode())
                for key_id, data_key in zip(key_ids, data_keys)
            ]
        )
        if self._escrow is not None:
            payloads = [
                canonical_bytes(
                    {
                        "kind": "key",
                        "key_id": key_id,
                        "label": label,
                        "created_at": created_at,
                        "wrapped": wrapped.to_bytes(),
                    }
                )
                for key_id, label, wrapped in zip(key_ids, labels, wrapped_boxes)
            ]
            entries = self._escrow.append_many(payloads)
            for key_id, entry, payload in zip(key_ids, entries, payloads):
                self._escrow_extents[key_id] = (
                    entry.offset + HEADER_SIZE,
                    len(payload),
                )
        for key_id, label, wrapped in zip(key_ids, labels, wrapped_boxes):
            self._entries[key_id] = _KeyEntry(
                wrapped=wrapped, created_at=created_at, label=label
            )
            # Pre-warm the unwrap memo: the plaintext data key is in hand
            # right now, so the first cipher_for() should not have to
            # unwrap what we just wrapped.  Identical cache state to a
            # cipher_for() miss, so shred's invalidation covers it.
            self._cipher_cache[key_id] = AeadCipher(data_key_by_id[key_id])
        while len(self._cipher_cache) > _CIPHER_CACHE_CAPACITY:
            self._cipher_cache.popitem(last=False)
        return [KeyHandle(key_id=key_id) for key_id in key_ids]

    def cipher_for(self, handle: KeyHandle) -> AeadCipher:
        """Unwrap the data key and return an AEAD cipher bound to it.

        Raises :class:`ShreddedKeyError` if the key was destroyed and
        :class:`KeyManagementError` if the handle is unknown.
        """
        entry = self._entries.get(handle.key_id)
        if entry is None:
            raise KeyManagementError(f"unknown key {handle.key_id}")
        if entry.wrapped is None:
            raise ShreddedKeyError(f"key {handle.key_id} was shredded")
        cached = self._cipher_cache.get(handle.key_id)
        if cached is not None:
            METRICS.incr("kdf_cache_hits")
            self._cipher_cache.move_to_end(handle.key_id)
            return cached
        METRICS.incr("kdf_cache_misses")
        data_key = self._wrapper.decrypt(entry.wrapped, associated_data=handle.key_id.encode())
        cipher = AeadCipher(data_key)
        self._cipher_cache[handle.key_id] = cipher
        while len(self._cipher_cache) > _CIPHER_CACHE_CAPACITY:
            self._cipher_cache.popitem(last=False)
        return cipher

    def invalidate_cached(self, handle: KeyHandle) -> None:
        """Drop any memoized cipher (and its cached keystream) for
        *handle*.  The shredder calls this; :meth:`shred` also calls it
        internally, so destroyed keys can never be served from a cache.
        """
        cached = self._cipher_cache.pop(handle.key_id, None)
        if cached is not None:
            cached.purge_keystream()
            METRICS.incr("kdf_cache_invalidations")

    def shred(self, handle: KeyHandle) -> float:
        """Destroy the wrapped key material; returns the shred timestamp.

        Idempotent: shredding an already-shredded key returns the
        original timestamp.  Every derived-material cache (cipher memo,
        keystream prefixes) is purged first — after this returns, no
        path through the keystore can decrypt the key's ciphertexts.
        """
        entry = self._entries.get(handle.key_id)
        if entry is None:
            raise KeyManagementError(f"unknown key {handle.key_id}")
        if entry.wrapped is None:
            assert entry.shredded_at is not None
            return entry.shredded_at
        # Purge caches while the key still unwraps (the keystream cache
        # is keyed by the derived encryption key, which we can only
        # recompute before the wrapped material is destroyed).
        if handle.key_id not in self._cipher_cache:
            data_key = self._wrapper.decrypt(
                entry.wrapped, associated_data=handle.key_id.encode()
            )
            self._cipher_cache[handle.key_id] = AeadCipher(data_key)
        self.invalidate_cached(handle)
        entry.wrapped = None
        entry.shredded_at = self._clock.now()
        if self._escrow is not None:
            # Physically destroy the escrowed wrapped key (zeroing the
            # payload breaks its frame checksum — recovery's lenient
            # walk treats the hole as a destroyed key), then journal a
            # tombstone so the shred itself survives a restart.
            extent = self._escrow_extents.pop(handle.key_id, None)
            if extent is not None:
                offset, size = extent
                self._escrow.device.raw_write(offset, bytes(size))
            # The tombstone carries the label: the wrapped-key frame it
            # refers to is now zeroed, and recovery still needs to map
            # the destroyed key back to its record.
            self._escrow.append(
                canonical_bytes(
                    {
                        "kind": "shred",
                        "key_id": handle.key_id,
                        "label": entry.label,
                        "at": entry.shredded_at,
                    }
                )
            )
        return entry.shredded_at

    def is_shredded(self, handle: KeyHandle) -> bool:
        """Whether the key has been destroyed."""
        entry = self._entries.get(handle.key_id)
        if entry is None:
            raise KeyManagementError(f"unknown key {handle.key_id}")
        return entry.wrapped is None

    def export_wrapped(self, handle: KeyHandle) -> bytes:
        """Export the wrapped (still-encrypted) key for backup transport."""
        entry = self._entries.get(handle.key_id)
        if entry is None:
            raise KeyManagementError(f"unknown key {handle.key_id}")
        if entry.wrapped is None:
            raise ShreddedKeyError(f"key {handle.key_id} was shredded")
        return entry.wrapped.to_bytes()

    def import_wrapped(self, key_id: str, blob: bytes, label: str = "") -> KeyHandle:
        """Import a wrapped key previously exported from a store sharing
        the same master key (restore path)."""
        if key_id in self._entries and self._entries[key_id].wrapped is not None:
            raise KeyManagementError(f"key {key_id} already present")
        wrapped = AeadCiphertext.from_bytes(blob)
        # Verify the blob unwraps under our master key before accepting it.
        self._wrapper.decrypt(wrapped, associated_data=key_id.encode())
        self._entries[key_id] = _KeyEntry(
            wrapped=wrapped, created_at=self._clock.now(), label=label
        )
        return KeyHandle(key_id=key_id)

    def handles(self) -> list[KeyHandle]:
        """All handles ever minted (shredded ones included)."""
        return [KeyHandle(key_id=key_id) for key_id in sorted(self._entries)]

    def label_of(self, handle: KeyHandle) -> str:
        entry = self._entries.get(handle.key_id)
        if entry is None:
            raise KeyManagementError(f"unknown key {handle.key_id}")
        return entry.label

    def labelled_handles(self) -> dict[str, KeyHandle]:
        """label -> handle for every labelled entry (shredded included;
        when a label was reused, the newest key wins)."""
        out: dict[str, KeyHandle] = {}
        for key_id in sorted(self._entries):
            label = self._entries[key_id].label
            if label:
                out[label] = KeyHandle(key_id=key_id)
        return out

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(
        cls,
        master_key: bytes,
        device: BlockDevice,
        clock: Clock | None = None,
    ) -> "KeyStore":
        """Rebuild a keystore from its escrow device after a restart.

        Uses the journal's *lenient* frame walk: frames whose payload no
        longer checksums (physically destroyed wrapped keys, or a torn
        crash tail) are skipped, frames that parse are replayed.  A key
        whose frame is destroyed but whose tombstone survived is a
        recorded shred; a destroyed frame with no tombstone (crash
        between zeroing and the tombstone append) recovers as an
        anonymous shredded entry all the same — the data key is gone
        either way.
        """
        store = cls(master_key, clock=clock)
        store._escrow = Journal.__new__(Journal)
        store._escrow._device = device
        store._escrow._entries = []
        store._escrow._flush_count = 0
        end = 0
        highest = 0
        for offset, payload, checksum_ok in Journal.walk_frames(device):
            end = offset + HEADER_SIZE + len(payload)
            store._escrow._entries.append((offset, len(payload)))
            if not checksum_ok:
                continue
            try:
                frame = canonical_loads(payload)
                kind = frame["kind"]
            except Exception:
                continue  # residue of a destroyed frame; carries no key
            if kind == "key":
                key_id = frame["key_id"]
                store._entries[key_id] = _KeyEntry(
                    wrapped=AeadCiphertext.from_bytes(frame["wrapped"]),
                    created_at=frame["created_at"],
                    label=frame["label"],
                )
                store._escrow_extents[key_id] = (
                    offset + HEADER_SIZE,
                    len(payload),
                )
            elif kind == "shred":
                key_id = frame["key_id"]
                entry = store._entries.get(key_id)
                if entry is None:
                    entry = _KeyEntry(wrapped=None, created_at=frame["at"])
                    store._entries[key_id] = entry
                entry.wrapped = None
                entry.shredded_at = frame["at"]
                entry.label = frame.get("label", entry.label)
                store._escrow_extents.pop(key_id, None)
            try:
                highest = max(highest, int(frame["key_id"].rsplit("-", 1)[1]))
            except (ValueError, IndexError, KeyError):
                pass
        store._counter = highest
        # Future appends continue after the last intact frame; the torn
        # tail (if any) is dead space the allocator reclaims.
        device.truncate_to(end)
        return store

    def shredded_handles(self) -> list[KeyHandle]:
        """Handles whose keys have been destroyed."""
        return [
            KeyHandle(key_id=key_id)
            for key_id, entry in sorted(self._entries.items())
            if entry.wrapped is None
        ]
