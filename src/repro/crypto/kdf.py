"""HKDF (RFC 5869) key derivation over HMAC-SHA256.

The key hierarchy (:mod:`repro.crypto.keys`) derives every per-record
and per-purpose key from a master key via HKDF with a string label, so
shredding one derived key's wrapping material cannot affect siblings,
and labels provide domain separation between subsystems.
"""

from __future__ import annotations

from repro.crypto.hmac_utils import hmac_sha256
from repro.errors import CryptoError

_HASH_LEN = 32


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = bytes(_HASH_LEN)
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand to *length* bytes."""
    if length <= 0:
        raise CryptoError("derived key length must be positive")
    if length > 255 * _HASH_LEN:
        raise CryptoError("HKDF output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(pseudo_random_key, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def derive_key(master_key: bytes, label: str, length: int = 32, salt: bytes = b"") -> bytes:
    """Derive a subkey from *master_key* under a human-readable *label*.

    ``derive_key(k, "aead/encrypt")`` and ``derive_key(k, "aead/mac")``
    are computationally independent.
    """
    if not master_key:
        raise CryptoError("master key must not be empty")
    if not label:
        raise CryptoError("derivation label must not be empty")
    prk = hkdf_extract(salt, master_key)
    return hkdf_expand(prk, label.encode("utf-8"), length)
