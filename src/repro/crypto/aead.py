"""Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.

The composition is the classic generic one:

* encryption key and MAC key are derived from the master key with HKDF
  (domain-separated), so a single 32-byte key drives both;
* the MAC covers ``nonce || associated_data_length || associated_data
  || ciphertext``, so truncation and AD-swapping are detected;
* decryption verifies the MAC in constant time *before* touching the
  ciphertext.

HIPAA's integrity requirement ("data integrity must be ensured by means
of checksums, message authentication, or digital signatures") is met by
the MAC; confidentiality by the stream cipher.
"""

from __future__ import annotations

import secrets
import struct
from dataclasses import dataclass

from repro.crypto.chacha20 import (
    KEY_SIZE,
    NONCE_SIZE,
    chacha20_xor,
    chacha20_xor_many,
    purge_keystream_for_key,
)
from repro.crypto.hmac_utils import constant_time_equal, hmac_sha256
from repro.crypto.kdf import derive_key
from repro.errors import AuthenticationError, CryptoError

TAG_SIZE = 32


@dataclass(frozen=True)
class AeadCiphertext:
    """A sealed box: nonce, ciphertext, MAC tag."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Wire format: ``nonce || tag || ciphertext``."""
        return self.nonce + self.tag + self.ciphertext

    @classmethod
    def from_bytes(cls, blob: bytes) -> "AeadCiphertext":
        if len(blob) < NONCE_SIZE + TAG_SIZE:
            raise CryptoError("AEAD blob too short")
        return cls(
            nonce=blob[:NONCE_SIZE],
            tag=blob[NONCE_SIZE : NONCE_SIZE + TAG_SIZE],
            ciphertext=blob[NONCE_SIZE + TAG_SIZE :],
        )


class AeadCipher:
    """Encrypt-then-MAC AEAD bound to one 32-byte master key."""

    def __init__(self, master_key: bytes) -> None:
        if len(master_key) != KEY_SIZE:
            raise CryptoError(f"master key must be {KEY_SIZE} bytes")
        self._enc_key = derive_key(master_key, "aead/encrypt")
        self._mac_key = derive_key(master_key, "aead/mac")

    @staticmethod
    def _mac_input(nonce: bytes, associated_data: bytes, ciphertext: bytes) -> bytes:
        return (
            nonce
            + struct.pack(">Q", len(associated_data))
            + associated_data
            + ciphertext
        )

    def encrypt(
        self,
        plaintext: bytes,
        associated_data: bytes = b"",
        nonce: bytes | None = None,
    ) -> AeadCiphertext:
        """Seal *plaintext*; a random nonce is drawn unless one is given.

        Passing an explicit nonce is for deterministic tests only —
        nonce reuse under the same key breaks confidentiality.
        """
        if nonce is None:
            nonce = secrets.token_bytes(NONCE_SIZE)
        elif len(nonce) != NONCE_SIZE:
            raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
        ciphertext = chacha20_xor(self._enc_key, nonce, plaintext)
        tag = hmac_sha256(self._mac_key, self._mac_input(nonce, associated_data, ciphertext))
        return AeadCiphertext(nonce=nonce, ciphertext=ciphertext, tag=tag)

    def purge_keystream(self) -> int:
        """Drop all cached keystream generated under this cipher's
        encryption key (called when the owning data key is shredded, so
        no key-equivalent material outlives the key in process memory)."""
        return purge_keystream_for_key(self._enc_key)

    def decrypt(self, box: AeadCiphertext, associated_data: bytes = b"") -> bytes:
        """Open a sealed box; raises :class:`AuthenticationError` if the
        tag (and therefore the data or associated data) was altered."""
        expected = hmac_sha256(
            self._mac_key, self._mac_input(box.nonce, associated_data, box.ciphertext)
        )
        if not constant_time_equal(expected, box.tag):
            raise AuthenticationError("AEAD tag verification failed")
        return chacha20_xor(self._enc_key, box.nonce, box.ciphertext)


def encrypt_many(
    items: list[tuple["AeadCipher", bytes, bytes]],
) -> list[AeadCiphertext]:
    """Seal many ``(cipher, plaintext, associated_data)`` items at once.

    Byte-for-byte equivalent to calling :meth:`AeadCipher.encrypt` per
    item, but every ChaCha20 keystream block across the whole batch —
    each item typically under a *different* data key — is generated in a
    single vectorized pass.  This is the hot path of the engine's
    ``store_many``: version sealing and key wrapping both funnel
    through it.
    """
    nonces = [secrets.token_bytes(NONCE_SIZE) for _ in items]
    ciphertexts = chacha20_xor_many(
        [
            (cipher._enc_key, nonce, plaintext)
            for (cipher, plaintext, _), nonce in zip(items, nonces)
        ]
    )
    boxes = []
    for (cipher, _, associated_data), nonce, ciphertext in zip(
        items, nonces, ciphertexts
    ):
        tag = hmac_sha256(
            cipher._mac_key, cipher._mac_input(nonce, associated_data, ciphertext)
        )
        boxes.append(AeadCiphertext(nonce=nonce, ciphertext=ciphertext, tag=tag))
    return boxes


def decrypt_many(
    items: list[tuple["AeadCipher", AeadCiphertext, bytes]],
) -> list[bytes]:
    """Open many ``(cipher, box, associated_data)`` items at once.

    Every tag is verified (constant-time, per item) *before* any
    keystream is generated — the encrypt-then-MAC discipline of
    :meth:`AeadCipher.decrypt` holds for the whole batch, and a single
    forged box fails the batch exactly as the scalar call would fail.
    Only then do all the XOR keystreams run through one vectorized pass.
    """
    for cipher, box, associated_data in items:
        expected = hmac_sha256(
            cipher._mac_key, cipher._mac_input(box.nonce, associated_data, box.ciphertext)
        )
        if not constant_time_equal(expected, box.tag):
            raise AuthenticationError("AEAD tag verification failed")
    return chacha20_xor_many(
        [(cipher._enc_key, box.nonce, box.ciphertext) for cipher, box, _ in items]
    )
