"""ChaCha20 stream cipher (RFC 8439), pure Python.

No crypto library is installed in this environment, so encryption at
rest is built on this implementation.  It follows RFC 8439 exactly and
is tested against the RFC test vectors in
``tests/crypto/test_chacha20.py``.

Performance note: pure-Python ChaCha20 runs at a few MB/s.  That is
ample for the simulated workloads here; the benchmarks measure
*relative* overheads, which is what the paper's security-vs-performance
trade-off discussion is about.  Two things keep the hot path as fast
as pure Python allows:

* the block function is fully unrolled over local variables (no list
  indexing, no per-quarter-round calls);
* keystream prefixes are cached per ``(key, nonce)`` with counter
  continuation — decrypting a box right after encrypting it (the
  store-then-read pattern), or streaming a chunked payload under one
  nonce, extends the cached keystream from the next block counter
  instead of recomputing blocks 1..k.

The cache holds keystream bytes, which are key-equivalent material.
That is the same trust domain as the master key already held in process
memory: the threat model gives the adversary raw *device* access, not
process memory.  Shredding a key must still purge its keystream
(:func:`purge_keystream_for_key`) so no derived material outlives the
key inside the trusted process either.
"""

from __future__ import annotations

import struct
from collections import OrderedDict

from repro.errors import CryptoError
from repro.util.metrics import METRICS

KEY_SIZE = 32
NONCE_SIZE = 12
BLOCK_SIZE = 64

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_MASK = 0xFFFFFFFF


def _chacha20_block(key_words: tuple[int, ...], counter: int, nonce_words: tuple[int, ...]) -> bytes:
    # Fully unrolled double round over locals: ~4x faster than the
    # list-based quarter-round helper this replaced.
    x0, x1, x2, x3 = _CONSTANTS
    x4, x5, x6, x7, x8, x9, x10, x11 = key_words
    x12 = counter & _MASK
    x13, x14, x15 = nonce_words
    s0, s1, s2, s3, s4, s5, s6, s7 = x0, x1, x2, x3, x4, x5, x6, x7
    s8, s9, s10, s11, s12, s13, s14, s15 = x8, x9, x10, x11, x12, x13, x14, x15
    for _ in range(10):  # 20 rounds = 10 double rounds
        # column round
        x0 = (x0 + x4) & _MASK; x12 ^= x0; x12 = ((x12 << 16) | (x12 >> 16)) & _MASK
        x8 = (x8 + x12) & _MASK; x4 ^= x8; x4 = ((x4 << 12) | (x4 >> 20)) & _MASK
        x0 = (x0 + x4) & _MASK; x12 ^= x0; x12 = ((x12 << 8) | (x12 >> 24)) & _MASK
        x8 = (x8 + x12) & _MASK; x4 ^= x8; x4 = ((x4 << 7) | (x4 >> 25)) & _MASK
        x1 = (x1 + x5) & _MASK; x13 ^= x1; x13 = ((x13 << 16) | (x13 >> 16)) & _MASK
        x9 = (x9 + x13) & _MASK; x5 ^= x9; x5 = ((x5 << 12) | (x5 >> 20)) & _MASK
        x1 = (x1 + x5) & _MASK; x13 ^= x1; x13 = ((x13 << 8) | (x13 >> 24)) & _MASK
        x9 = (x9 + x13) & _MASK; x5 ^= x9; x5 = ((x5 << 7) | (x5 >> 25)) & _MASK
        x2 = (x2 + x6) & _MASK; x14 ^= x2; x14 = ((x14 << 16) | (x14 >> 16)) & _MASK
        x10 = (x10 + x14) & _MASK; x6 ^= x10; x6 = ((x6 << 12) | (x6 >> 20)) & _MASK
        x2 = (x2 + x6) & _MASK; x14 ^= x2; x14 = ((x14 << 8) | (x14 >> 24)) & _MASK
        x10 = (x10 + x14) & _MASK; x6 ^= x10; x6 = ((x6 << 7) | (x6 >> 25)) & _MASK
        x3 = (x3 + x7) & _MASK; x15 ^= x3; x15 = ((x15 << 16) | (x15 >> 16)) & _MASK
        x11 = (x11 + x15) & _MASK; x7 ^= x11; x7 = ((x7 << 12) | (x7 >> 20)) & _MASK
        x3 = (x3 + x7) & _MASK; x15 ^= x3; x15 = ((x15 << 8) | (x15 >> 24)) & _MASK
        x11 = (x11 + x15) & _MASK; x7 ^= x11; x7 = ((x7 << 7) | (x7 >> 25)) & _MASK
        # diagonal round
        x0 = (x0 + x5) & _MASK; x15 ^= x0; x15 = ((x15 << 16) | (x15 >> 16)) & _MASK
        x10 = (x10 + x15) & _MASK; x5 ^= x10; x5 = ((x5 << 12) | (x5 >> 20)) & _MASK
        x0 = (x0 + x5) & _MASK; x15 ^= x0; x15 = ((x15 << 8) | (x15 >> 24)) & _MASK
        x10 = (x10 + x15) & _MASK; x5 ^= x10; x5 = ((x5 << 7) | (x5 >> 25)) & _MASK
        x1 = (x1 + x6) & _MASK; x12 ^= x1; x12 = ((x12 << 16) | (x12 >> 16)) & _MASK
        x11 = (x11 + x12) & _MASK; x6 ^= x11; x6 = ((x6 << 12) | (x6 >> 20)) & _MASK
        x1 = (x1 + x6) & _MASK; x12 ^= x1; x12 = ((x12 << 8) | (x12 >> 24)) & _MASK
        x11 = (x11 + x12) & _MASK; x6 ^= x11; x6 = ((x6 << 7) | (x6 >> 25)) & _MASK
        x2 = (x2 + x7) & _MASK; x13 ^= x2; x13 = ((x13 << 16) | (x13 >> 16)) & _MASK
        x8 = (x8 + x13) & _MASK; x7 ^= x8; x7 = ((x7 << 12) | (x7 >> 20)) & _MASK
        x2 = (x2 + x7) & _MASK; x13 ^= x2; x13 = ((x13 << 8) | (x13 >> 24)) & _MASK
        x8 = (x8 + x13) & _MASK; x7 ^= x8; x7 = ((x7 << 7) | (x7 >> 25)) & _MASK
        x3 = (x3 + x4) & _MASK; x14 ^= x3; x14 = ((x14 << 16) | (x14 >> 16)) & _MASK
        x9 = (x9 + x14) & _MASK; x4 ^= x9; x4 = ((x4 << 12) | (x4 >> 20)) & _MASK
        x3 = (x3 + x4) & _MASK; x14 ^= x3; x14 = ((x14 << 8) | (x14 >> 24)) & _MASK
        x9 = (x9 + x14) & _MASK; x4 ^= x9; x4 = ((x4 << 7) | (x4 >> 25)) & _MASK
    return struct.pack(
        "<16I",
        (x0 + s0) & _MASK, (x1 + s1) & _MASK, (x2 + s2) & _MASK, (x3 + s3) & _MASK,
        (x4 + s4) & _MASK, (x5 + s5) & _MASK, (x6 + s6) & _MASK, (x7 + s7) & _MASK,
        (x8 + s8) & _MASK, (x9 + s9) & _MASK, (x10 + s10) & _MASK, (x11 + s11) & _MASK,
        (x12 + s12) & _MASK, (x13 + s13) & _MASK, (x14 + s14) & _MASK, (x15 + s15) & _MASK,
    )


def _check_params(key: bytes, nonce: bytes, counter: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    if len(key) != KEY_SIZE:
        raise CryptoError(f"ChaCha20 key must be {KEY_SIZE} bytes, got {len(key)}")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"ChaCha20 nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if counter < 0 or counter > _MASK:
        raise CryptoError("ChaCha20 counter out of 32-bit range")
    key_words = struct.unpack("<8I", key)
    nonce_words = struct.unpack("<3I", nonce)
    return key_words, nonce_words


def _generate_blocks(
    key_words: tuple[int, ...],
    nonce_words: tuple[int, ...],
    first_counter: int,
    n_blocks: int,
) -> bytes:
    blocks = []
    counter = first_counter
    for _ in range(n_blocks):
        if counter > _MASK:
            raise CryptoError("ChaCha20 counter overflow")
        blocks.append(_chacha20_block(key_words, counter, nonce_words))
        counter += 1
    return b"".join(blocks)


class _KeystreamCache:
    """LRU of keystream prefixes keyed by ``(key, nonce)``.

    Each entry is the keystream starting at block counter 1 (the AEAD
    convention), always a whole number of blocks; a request longer than
    the cached prefix *continues* block generation from the next
    counter, so chunked processing under one nonce and the
    encrypt-then-decrypt round trip never recompute a block.
    """

    def __init__(self, capacity: int = 128, max_entry_bytes: int = 1 << 20) -> None:
        self.capacity = capacity
        self.max_entry_bytes = max_entry_bytes
        self._entries: OrderedDict[tuple[bytes, bytes], bytearray] = OrderedDict()

    def keystream(self, key: bytes, nonce: bytes, length: int) -> bytes:
        entry_key = (key, nonce)
        entry = self._entries.get(entry_key)
        if entry is None:
            entry = bytearray()
            self._entries[entry_key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(entry_key)
        if length <= len(entry):
            METRICS.incr("keystream_cache_hits")
            return bytes(entry[:length])
        METRICS.incr("keystream_cache_misses")
        key_words = struct.unpack("<8I", key)
        nonce_words = struct.unpack("<3I", nonce)
        # Extend the cached prefix by whole blocks, continuing the counter.
        cacheable = min(length, self.max_entry_bytes)
        if len(entry) < cacheable:
            n_blocks = (cacheable - len(entry) + BLOCK_SIZE - 1) // BLOCK_SIZE
            entry += _generate_blocks(
                key_words, nonce_words, 1 + len(entry) // BLOCK_SIZE, n_blocks
            )
        if length <= len(entry):
            return bytes(entry[:length])
        # Oversized request: serve the uncacheable tail without storing it.
        tail_blocks = (length - len(entry) + BLOCK_SIZE - 1) // BLOCK_SIZE
        tail = _generate_blocks(
            key_words, nonce_words, 1 + len(entry) // BLOCK_SIZE, tail_blocks
        )
        return (bytes(entry) + tail)[:length]

    def purge_key(self, key: bytes) -> int:
        """Drop every cached keystream derived from *key*; returns the
        number of entries removed (key shredding calls this)."""
        stale = [entry_key for entry_key in self._entries if entry_key[0] == key]
        for entry_key in stale:
            del self._entries[entry_key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_KEYSTREAM_CACHE = _KeystreamCache()


def purge_keystream_for_key(key: bytes) -> int:
    """Remove all cached keystream generated under *key*.

    Key shredding (:meth:`repro.crypto.keys.KeyStore.shred`) calls this
    so that no key-equivalent material survives the key's destruction
    inside the process — a correctness property of secure deletion, not
    just hygiene.
    """
    return _KEYSTREAM_CACHE.purge_key(key)


def clear_keystream_cache() -> None:
    """Drop the whole keystream cache (tests / memory hygiene)."""
    _KEYSTREAM_CACHE.clear()


def chacha20_keystream(key: bytes, nonce: bytes, length: int, counter: int = 1) -> bytes:
    """Generate *length* bytes of keystream.

    The default-counter path (counter=1, as AEAD uses) is served from
    the per-``(key, nonce)`` cache with counter continuation; explicit
    non-default counters bypass the cache.
    """
    if length < 0:
        raise CryptoError("keystream length must be non-negative")
    key_words, nonce_words = _check_params(key, nonce, counter)
    if length == 0:
        return b""
    if counter == 1:
        return _KEYSTREAM_CACHE.keystream(key, nonce, length)
    n_blocks = (length + BLOCK_SIZE - 1) // BLOCK_SIZE
    return _generate_blocks(key_words, nonce_words, counter, n_blocks)[:length]


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 1) -> bytes:
    """Encrypt or decrypt *data* (XOR with the keystream)."""
    if not data:
        chacha20_keystream(key, nonce, 0, counter)  # parameter validation
        return b""
    keystream = chacha20_keystream(key, nonce, len(data), counter)
    # One arbitrary-precision XOR beats a per-byte Python loop by >10x.
    xored = int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    return xored.to_bytes(len(data), "little")
