"""ChaCha20 stream cipher (RFC 8439), pure Python.

No crypto library is installed in this environment, so encryption at
rest is built on this implementation.  It follows RFC 8439 exactly and
is tested against the RFC test vectors in
``tests/crypto/test_chacha20.py``.

Performance note: pure-Python ChaCha20 runs at a few MB/s.  That is
ample for the simulated workloads here; the benchmarks measure
*relative* overheads, which is what the paper's security-vs-performance
trade-off discussion is about.  Two things keep the hot path as fast
as pure Python allows:

* the block function is fully unrolled over local variables (no list
  indexing, no per-quarter-round calls);
* keystream prefixes are cached per ``(key, nonce)`` with counter
  continuation — decrypting a box right after encrypting it (the
  store-then-read pattern), or streaming a chunked payload under one
  nonce, extends the cached keystream from the next block counter
  instead of recomputing blocks 1..k.

The cache holds keystream bytes, which are key-equivalent material.
That is the same trust domain as the master key already held in process
memory: the threat model gives the adversary raw *device* access, not
process memory.  Shredding a key must still purge its keystream
(:func:`purge_keystream_for_key`) so no derived material outlives the
key inside the trusted process either.
"""

from __future__ import annotations

import struct
from collections import OrderedDict

from repro.errors import CryptoError
from repro.util.metrics import METRICS

try:  # optional accelerator: vectorized block generation when numpy exists
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

KEY_SIZE = 32
NONCE_SIZE = 12
BLOCK_SIZE = 64

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_MASK = 0xFFFFFFFF

#: Below this many total blocks the scalar path wins: every vectorized
#: round costs a fixed numpy-dispatch overhead, so tiny requests are
#: cheaper fully unrolled over Python ints.
_VECTOR_MIN_BLOCKS = 8


def _chacha20_block(key_words: tuple[int, ...], counter: int, nonce_words: tuple[int, ...]) -> bytes:
    # Fully unrolled double round over locals: ~4x faster than the
    # list-based quarter-round helper this replaced.
    x0, x1, x2, x3 = _CONSTANTS
    x4, x5, x6, x7, x8, x9, x10, x11 = key_words
    x12 = counter & _MASK
    x13, x14, x15 = nonce_words
    s0, s1, s2, s3, s4, s5, s6, s7 = x0, x1, x2, x3, x4, x5, x6, x7
    s8, s9, s10, s11, s12, s13, s14, s15 = x8, x9, x10, x11, x12, x13, x14, x15
    for _ in range(10):  # 20 rounds = 10 double rounds
        # column round
        x0 = (x0 + x4) & _MASK; x12 ^= x0; x12 = ((x12 << 16) | (x12 >> 16)) & _MASK
        x8 = (x8 + x12) & _MASK; x4 ^= x8; x4 = ((x4 << 12) | (x4 >> 20)) & _MASK
        x0 = (x0 + x4) & _MASK; x12 ^= x0; x12 = ((x12 << 8) | (x12 >> 24)) & _MASK
        x8 = (x8 + x12) & _MASK; x4 ^= x8; x4 = ((x4 << 7) | (x4 >> 25)) & _MASK
        x1 = (x1 + x5) & _MASK; x13 ^= x1; x13 = ((x13 << 16) | (x13 >> 16)) & _MASK
        x9 = (x9 + x13) & _MASK; x5 ^= x9; x5 = ((x5 << 12) | (x5 >> 20)) & _MASK
        x1 = (x1 + x5) & _MASK; x13 ^= x1; x13 = ((x13 << 8) | (x13 >> 24)) & _MASK
        x9 = (x9 + x13) & _MASK; x5 ^= x9; x5 = ((x5 << 7) | (x5 >> 25)) & _MASK
        x2 = (x2 + x6) & _MASK; x14 ^= x2; x14 = ((x14 << 16) | (x14 >> 16)) & _MASK
        x10 = (x10 + x14) & _MASK; x6 ^= x10; x6 = ((x6 << 12) | (x6 >> 20)) & _MASK
        x2 = (x2 + x6) & _MASK; x14 ^= x2; x14 = ((x14 << 8) | (x14 >> 24)) & _MASK
        x10 = (x10 + x14) & _MASK; x6 ^= x10; x6 = ((x6 << 7) | (x6 >> 25)) & _MASK
        x3 = (x3 + x7) & _MASK; x15 ^= x3; x15 = ((x15 << 16) | (x15 >> 16)) & _MASK
        x11 = (x11 + x15) & _MASK; x7 ^= x11; x7 = ((x7 << 12) | (x7 >> 20)) & _MASK
        x3 = (x3 + x7) & _MASK; x15 ^= x3; x15 = ((x15 << 8) | (x15 >> 24)) & _MASK
        x11 = (x11 + x15) & _MASK; x7 ^= x11; x7 = ((x7 << 7) | (x7 >> 25)) & _MASK
        # diagonal round
        x0 = (x0 + x5) & _MASK; x15 ^= x0; x15 = ((x15 << 16) | (x15 >> 16)) & _MASK
        x10 = (x10 + x15) & _MASK; x5 ^= x10; x5 = ((x5 << 12) | (x5 >> 20)) & _MASK
        x0 = (x0 + x5) & _MASK; x15 ^= x0; x15 = ((x15 << 8) | (x15 >> 24)) & _MASK
        x10 = (x10 + x15) & _MASK; x5 ^= x10; x5 = ((x5 << 7) | (x5 >> 25)) & _MASK
        x1 = (x1 + x6) & _MASK; x12 ^= x1; x12 = ((x12 << 16) | (x12 >> 16)) & _MASK
        x11 = (x11 + x12) & _MASK; x6 ^= x11; x6 = ((x6 << 12) | (x6 >> 20)) & _MASK
        x1 = (x1 + x6) & _MASK; x12 ^= x1; x12 = ((x12 << 8) | (x12 >> 24)) & _MASK
        x11 = (x11 + x12) & _MASK; x6 ^= x11; x6 = ((x6 << 7) | (x6 >> 25)) & _MASK
        x2 = (x2 + x7) & _MASK; x13 ^= x2; x13 = ((x13 << 16) | (x13 >> 16)) & _MASK
        x8 = (x8 + x13) & _MASK; x7 ^= x8; x7 = ((x7 << 12) | (x7 >> 20)) & _MASK
        x2 = (x2 + x7) & _MASK; x13 ^= x2; x13 = ((x13 << 8) | (x13 >> 24)) & _MASK
        x8 = (x8 + x13) & _MASK; x7 ^= x8; x7 = ((x7 << 7) | (x7 >> 25)) & _MASK
        x3 = (x3 + x4) & _MASK; x14 ^= x3; x14 = ((x14 << 16) | (x14 >> 16)) & _MASK
        x9 = (x9 + x14) & _MASK; x4 ^= x9; x4 = ((x4 << 12) | (x4 >> 20)) & _MASK
        x3 = (x3 + x4) & _MASK; x14 ^= x3; x14 = ((x14 << 8) | (x14 >> 24)) & _MASK
        x9 = (x9 + x14) & _MASK; x4 ^= x9; x4 = ((x4 << 7) | (x4 >> 25)) & _MASK
    return struct.pack(
        "<16I",
        (x0 + s0) & _MASK, (x1 + s1) & _MASK, (x2 + s2) & _MASK, (x3 + s3) & _MASK,
        (x4 + s4) & _MASK, (x5 + s5) & _MASK, (x6 + s6) & _MASK, (x7 + s7) & _MASK,
        (x8 + s8) & _MASK, (x9 + s9) & _MASK, (x10 + s10) & _MASK, (x11 + s11) & _MASK,
        (x12 + s12) & _MASK, (x13 + s13) & _MASK, (x14 + s14) & _MASK, (x15 + s15) & _MASK,
    )


def _check_params(key: bytes, nonce: bytes, counter: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    if len(key) != KEY_SIZE:
        raise CryptoError(f"ChaCha20 key must be {KEY_SIZE} bytes, got {len(key)}")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"ChaCha20 nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if counter < 0 or counter > _MASK:
        raise CryptoError("ChaCha20 counter out of 32-bit range")
    key_words = struct.unpack("<8I", key)
    nonce_words = struct.unpack("<3I", nonce)
    return key_words, nonce_words


def _generate_blocks(
    key_words: tuple[int, ...],
    nonce_words: tuple[int, ...],
    first_counter: int,
    n_blocks: int,
) -> bytes:
    if counter_overflows(first_counter, n_blocks):
        raise CryptoError("ChaCha20 counter overflow")
    if _np is not None and n_blocks >= _VECTOR_MIN_BLOCKS:
        return _generate_lanes_numpy([(key_words, nonce_words, first_counter, n_blocks)])[0]
    blocks = []
    counter = first_counter
    for _ in range(n_blocks):
        blocks.append(_chacha20_block(key_words, counter, nonce_words))
        counter += 1
    return b"".join(blocks)


def counter_overflows(first_counter: int, n_blocks: int) -> bool:
    """True when generating *n_blocks* from *first_counter* would run the
    32-bit block counter past its range."""
    return n_blocks > 0 and first_counter + n_blocks - 1 > _MASK


def _generate_lanes_scalar(
    lanes: list[tuple[tuple[int, ...], tuple[int, ...], int, int]],
) -> list[bytes]:
    out = []
    for key_words, nonce_words, first_counter, n_blocks in lanes:
        blocks = []
        for i in range(n_blocks):
            blocks.append(_chacha20_block(key_words, first_counter + i, nonce_words))
        out.append(b"".join(blocks))
    return out


def _generate_lanes_numpy(
    lanes: list[tuple[tuple[int, ...], tuple[int, ...], int, int]],
) -> list[bytes]:
    """Run every requested block of every lane through one vectorized pass.

    Each *lane* is an independent ``(key_words, nonce_words,
    first_counter, n_blocks)`` request — the SIMD dimension is the block,
    not the position within one stream, so keystreams for many records
    under *different* keys amortize into a single set of array rounds.
    Output is bit-identical to :func:`_chacha20_block` (RFC 8439 vectors
    cover both paths in ``tests/crypto/test_chacha20.py``).
    """
    counts = [lane[3] for lane in lanes]
    total = sum(counts)
    if total == 0:
        return [b"" for _ in lanes]
    reps = _np.asarray(counts, dtype=_np.int64)
    keys = _np.asarray([lane[0] for lane in lanes], dtype=_np.uint32)
    nonces = _np.asarray([lane[1] for lane in lanes], dtype=_np.uint32)
    firsts = _np.asarray([lane[2] for lane in lanes], dtype=_np.uint64)
    rep_keys = _np.repeat(keys, reps, axis=0)
    rep_nonces = _np.repeat(nonces, reps, axis=0)
    starts = _np.zeros(len(lanes), dtype=_np.int64)
    _np.cumsum(reps[:-1], out=starts[1:])
    offsets = _np.arange(total, dtype=_np.int64) - _np.repeat(starts, reps)
    counters = (_np.repeat(firsts, reps) + offsets.astype(_np.uint64)).astype(_np.uint32)

    x0 = _np.full(total, _CONSTANTS[0], dtype=_np.uint32)
    x1 = _np.full(total, _CONSTANTS[1], dtype=_np.uint32)
    x2 = _np.full(total, _CONSTANTS[2], dtype=_np.uint32)
    x3 = _np.full(total, _CONSTANTS[3], dtype=_np.uint32)
    x4 = rep_keys[:, 0].copy(); x5 = rep_keys[:, 1].copy()
    x6 = rep_keys[:, 2].copy(); x7 = rep_keys[:, 3].copy()
    x8 = rep_keys[:, 4].copy(); x9 = rep_keys[:, 5].copy()
    x10 = rep_keys[:, 6].copy(); x11 = rep_keys[:, 7].copy()
    x12 = counters.copy()
    x13 = rep_nonces[:, 0].copy(); x14 = rep_nonces[:, 1].copy()
    x15 = rep_nonces[:, 2].copy()
    state = (x0.copy(), x1.copy(), x2.copy(), x3.copy(), x4.copy(), x5.copy(),
             x6.copy(), x7.copy(), x8.copy(), x9.copy(), x10.copy(), x11.copy(),
             x12.copy(), x13.copy(), x14.copy(), x15.copy())

    def qr(a, b, c, d):
        a += b; d ^= a; d[:] = (d << _np.uint32(16)) | (d >> _np.uint32(16))
        c += d; b ^= c; b[:] = (b << _np.uint32(12)) | (b >> _np.uint32(20))
        a += b; d ^= a; d[:] = (d << _np.uint32(8)) | (d >> _np.uint32(24))
        c += d; b ^= c; b[:] = (b << _np.uint32(7)) | (b >> _np.uint32(25))

    for _ in range(10):
        qr(x0, x4, x8, x12); qr(x1, x5, x9, x13)
        qr(x2, x6, x10, x14); qr(x3, x7, x11, x15)
        qr(x0, x5, x10, x15); qr(x1, x6, x11, x12)
        qr(x2, x7, x8, x13); qr(x3, x4, x9, x14)

    words = _np.empty((total, 16), dtype="<u4")
    current = (x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15)
    for i in range(16):
        words[:, i] = current[i] + state[i]
    blob = words.tobytes()
    out = []
    offset = 0
    for n_blocks in counts:
        out.append(blob[offset : offset + n_blocks * BLOCK_SIZE])
        offset += n_blocks * BLOCK_SIZE
    return out


def generate_keystream_lanes(
    lanes: list[tuple[tuple[int, ...], tuple[int, ...], int, int]],
) -> list[bytes]:
    """Generate keystream for many independent ``(key_words, nonce_words,
    first_counter, n_blocks)`` lanes, vectorized across *all* blocks of
    *all* lanes when numpy is available."""
    for _, _, first_counter, n_blocks in lanes:
        if counter_overflows(first_counter, n_blocks):
            raise CryptoError("ChaCha20 counter overflow")
    if _np is not None and sum(lane[3] for lane in lanes) >= _VECTOR_MIN_BLOCKS:
        return _generate_lanes_numpy(lanes)
    return _generate_lanes_scalar(lanes)


class _KeystreamCache:
    """LRU of keystream prefixes keyed by ``(key, nonce)``.

    Each entry is the keystream starting at block counter 1 (the AEAD
    convention), always a whole number of blocks; a request longer than
    the cached prefix *continues* block generation from the next
    counter, so chunked processing under one nonce and the
    encrypt-then-decrypt round trip never recompute a block.
    """

    def __init__(self, capacity: int = 128, max_entry_bytes: int = 1 << 20) -> None:
        self.capacity = capacity
        self.max_entry_bytes = max_entry_bytes
        self._entries: OrderedDict[tuple[bytes, bytes], bytearray] = OrderedDict()

    def keystream(self, key: bytes, nonce: bytes, length: int) -> bytes:
        entry_key = (key, nonce)
        entry = self._entries.get(entry_key)
        if entry is None:
            entry = bytearray()
            self._entries[entry_key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(entry_key)
        if length <= len(entry):
            METRICS.incr("keystream_cache_hits")
            return bytes(entry[:length])
        METRICS.incr("keystream_cache_misses")
        key_words = struct.unpack("<8I", key)
        nonce_words = struct.unpack("<3I", nonce)
        # Extend the cached prefix by whole blocks, continuing the counter.
        cacheable = min(length, self.max_entry_bytes)
        if len(entry) < cacheable:
            n_blocks = (cacheable - len(entry) + BLOCK_SIZE - 1) // BLOCK_SIZE
            entry += _generate_blocks(
                key_words, nonce_words, 1 + len(entry) // BLOCK_SIZE, n_blocks
            )
        if length <= len(entry):
            return bytes(entry[:length])
        # Oversized request: serve the uncacheable tail without storing it.
        tail_blocks = (length - len(entry) + BLOCK_SIZE - 1) // BLOCK_SIZE
        tail = _generate_blocks(
            key_words, nonce_words, 1 + len(entry) // BLOCK_SIZE, tail_blocks
        )
        return (bytes(entry) + tail)[:length]

    def keystream_many(self, requests: list[tuple[bytes, bytes, int]]) -> list[bytes]:
        """Serve many ``(key, nonce, length)`` requests (counter-1
        convention), generating every missing block across all requests
        in ONE vectorized pass before slicing per-request answers."""
        results: list[bytes | None] = [None] * len(requests)
        lanes = []
        lane_meta = []  # (request index, entry, requested length)
        queued: set[tuple[bytes, bytes]] = set()
        deferred: list[int] = []
        for i, (key, nonce, length) in enumerate(requests):
            entry_key = (key, nonce)
            if entry_key in queued:
                # A second request under the same (key, nonce) in one
                # batch must see the first one's cache extension, not
                # race it — serve it after the vectorized pass lands.
                deferred.append(i)
                continue
            entry = self._entries.get(entry_key)
            if entry is None:
                entry = bytearray()
                self._entries[entry_key] = entry
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
            else:
                self._entries.move_to_end(entry_key)
            if length <= len(entry):
                METRICS.incr("keystream_cache_hits")
                results[i] = bytes(entry[:length])
                continue
            METRICS.incr("keystream_cache_misses")
            n_blocks = (length - len(entry) + BLOCK_SIZE - 1) // BLOCK_SIZE
            lanes.append(
                (
                    struct.unpack("<8I", key),
                    struct.unpack("<3I", nonce),
                    1 + len(entry) // BLOCK_SIZE,
                    n_blocks,
                )
            )
            lane_meta.append((i, entry, length))
            queued.add(entry_key)
        if lanes:
            fresh = generate_keystream_lanes(lanes)
            for (i, entry, length), blocks in zip(lane_meta, fresh):
                cacheable = self.max_entry_bytes - len(entry)
                if cacheable > 0:
                    entry += blocks[:cacheable]
                prefix = bytes(entry[:length])
                if len(prefix) < length:
                    # Oversized request: splice the uncached tail.
                    prefix += blocks[cacheable : cacheable + (length - len(prefix))]
                results[i] = prefix
        for i in deferred:
            key, nonce, length = requests[i]
            results[i] = self.keystream(key, nonce, length)
        return [r if r is not None else b"" for r in results]

    def purge_key(self, key: bytes) -> int:
        """Drop every cached keystream derived from *key*; returns the
        number of entries removed (key shredding calls this)."""
        stale = [entry_key for entry_key in self._entries if entry_key[0] == key]
        for entry_key in stale:
            del self._entries[entry_key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_KEYSTREAM_CACHE = _KeystreamCache()


def purge_keystream_for_key(key: bytes) -> int:
    """Remove all cached keystream generated under *key*.

    Key shredding (:meth:`repro.crypto.keys.KeyStore.shred`) calls this
    so that no key-equivalent material survives the key's destruction
    inside the process — a correctness property of secure deletion, not
    just hygiene.
    """
    return _KEYSTREAM_CACHE.purge_key(key)


def clear_keystream_cache() -> None:
    """Drop the whole keystream cache (tests / memory hygiene)."""
    _KEYSTREAM_CACHE.clear()


def chacha20_keystream(key: bytes, nonce: bytes, length: int, counter: int = 1) -> bytes:
    """Generate *length* bytes of keystream.

    The default-counter path (counter=1, as AEAD uses) is served from
    the per-``(key, nonce)`` cache with counter continuation; explicit
    non-default counters bypass the cache.
    """
    if length < 0:
        raise CryptoError("keystream length must be non-negative")
    key_words, nonce_words = _check_params(key, nonce, counter)
    if length == 0:
        return b""
    if counter == 1:
        return _KEYSTREAM_CACHE.keystream(key, nonce, length)
    n_blocks = (length + BLOCK_SIZE - 1) // BLOCK_SIZE
    return _generate_blocks(key_words, nonce_words, counter, n_blocks)[:length]


def chacha20_keystream_many(requests: list[tuple[bytes, bytes, int]]) -> list[bytes]:
    """Batch form of :func:`chacha20_keystream` (counter-1 convention).

    All missing blocks across every request — typically one request per
    record in a ``store_many`` batch, each under its own data key — are
    generated in a single vectorized pass, then served/cached exactly as
    the one-at-a-time path would.
    """
    for key, nonce, length in requests:
        if length < 0:
            raise CryptoError("keystream length must be non-negative")
        _check_params(key, nonce, 1)
    if not requests:
        return []
    return _KEYSTREAM_CACHE.keystream_many(requests)


def _xor_bytes(data: bytes, keystream: bytes) -> bytes:
    # One arbitrary-precision XOR beats a per-byte Python loop by >10x.
    xored = int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    return xored.to_bytes(len(data), "little")


def chacha20_xor_many(items: list[tuple[bytes, bytes, bytes]]) -> list[bytes]:
    """Encrypt/decrypt many ``(key, nonce, data)`` items, with every
    keystream block generated in one vectorized pass."""
    keystreams = chacha20_keystream_many(
        [(key, nonce, len(data)) for key, nonce, data in items]
    )
    return [
        _xor_bytes(data, ks) if data else b""
        for (_, _, data), ks in zip(items, keystreams)
    ]


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 1) -> bytes:
    """Encrypt or decrypt *data* (XOR with the keystream)."""
    if not data:
        chacha20_keystream(key, nonce, 0, counter)  # parameter validation
        return b""
    keystream = chacha20_keystream(key, nonce, len(data), counter)
    return _xor_bytes(data, keystream)
