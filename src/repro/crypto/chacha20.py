"""ChaCha20 stream cipher (RFC 8439), pure Python.

No crypto library is installed in this environment, so encryption at
rest is built on this implementation.  It follows RFC 8439 exactly and
is tested against the RFC test vectors in
``tests/crypto/test_chacha20.py``.

Performance note: pure-Python ChaCha20 runs at a few MB/s.  That is
ample for the simulated workloads here; the benchmarks measure
*relative* overheads, which is what the paper's security-vs-performance
trade-off discussion is about.
"""

from __future__ import annotations

import struct

from repro.errors import CryptoError

KEY_SIZE = 32
NONCE_SIZE = 12
BLOCK_SIZE = 64

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_MASK = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    value &= _MASK
    return ((value << count) | (value >> (32 - count))) & _MASK


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _chacha20_block(key_words: tuple[int, ...], counter: int, nonce_words: tuple[int, ...]) -> bytes:
    state = list(_CONSTANTS) + list(key_words) + [counter & _MASK] + list(nonce_words)
    working = state[:]
    for _ in range(10):  # 20 rounds = 10 double rounds
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(working[i] + state[i]) & _MASK for i in range(16)]
    return struct.pack("<16I", *output)


def _check_params(key: bytes, nonce: bytes, counter: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    if len(key) != KEY_SIZE:
        raise CryptoError(f"ChaCha20 key must be {KEY_SIZE} bytes, got {len(key)}")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"ChaCha20 nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if counter < 0 or counter > _MASK:
        raise CryptoError("ChaCha20 counter out of 32-bit range")
    key_words = struct.unpack("<8I", key)
    nonce_words = struct.unpack("<3I", nonce)
    return key_words, nonce_words


def chacha20_keystream(key: bytes, nonce: bytes, length: int, counter: int = 1) -> bytes:
    """Generate *length* bytes of keystream."""
    if length < 0:
        raise CryptoError("keystream length must be non-negative")
    key_words, nonce_words = _check_params(key, nonce, counter)
    blocks = []
    produced = 0
    block_counter = counter
    while produced < length:
        if block_counter > _MASK:
            raise CryptoError("ChaCha20 counter overflow")
        blocks.append(_chacha20_block(key_words, block_counter, nonce_words))
        produced += BLOCK_SIZE
        block_counter += 1
    return b"".join(blocks)[:length]


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 1) -> bytes:
    """Encrypt or decrypt *data* (XOR with the keystream)."""
    keystream = chacha20_keystream(key, nonce, len(data), counter)
    return bytes(a ^ b for a, b in zip(data, keystream))
