"""High-level signing interface over structured payloads.

Provenance transfers, migration manifests, and audit anchors all sign
*structured values* (dicts), not raw bytes.  :class:`Signer` canonically
encodes the value, signs it, and wraps everything in a
:class:`SignedPayload` that records the signer identity and key
fingerprint, so a verifier can (a) check the signature and (b) check it
was made by the expected party.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.ed25519 import Ed25519KeyPair, Ed25519PublicKey
from repro.crypto.merkle import MerkleProof, MerkleTree, verify_inclusion
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.errors import AuthenticationError, IntegrityError
from repro.util.encoding import canonical_bytes

#: Domain separator for batch-root messages, so a signature over a batch
#: root can never be replayed as a signature over an ordinary payload.
_BATCH_DOMAIN = "signed-batch-root/v1"


def _batch_root_message(batch_root: bytes, leaf_count: int) -> bytes:
    return canonical_bytes(
        {"domain": _BATCH_DOMAIN, "root": batch_root, "leaves": leaf_count}
    )


class _RootSignatureMemo:
    """LRU of batch roots whose signature already verified.

    Verifying N custody events from one signed batch would otherwise
    repeat the same public-key operation N times on an identical
    (fingerprint, root, signature) triple.  The memo only short-circuits
    the *root signature*; each event's inclusion proof is still checked
    individually.  Registered with the shredder purge path alongside the
    other crypto caches.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._verified: OrderedDict[tuple[str, bytes, int, bytes], bool] = OrderedDict()

    def check(self, key: tuple[str, bytes, int, bytes]) -> bool:
        if key in self._verified:
            self._verified.move_to_end(key)
            return True
        return False

    def record(self, key: tuple[str, bytes, int, bytes]) -> None:
        self._verified[key] = True
        while len(self._verified) > self.capacity:
            self._verified.popitem(last=False)

    def purge(self) -> int:
        count = len(self._verified)
        self._verified.clear()
        return count

    def __len__(self) -> int:
        return len(self._verified)


_ROOT_MEMO = _RootSignatureMemo()


def purge_signature_memo() -> int:
    """Drop every memoized verified batch root (shredder purge path)."""
    return _ROOT_MEMO.purge()


@dataclass(frozen=True)
class SignedPayload:
    """A structured value plus a signature over its canonical encoding."""

    payload: Any
    signer_id: str
    key_fingerprint: str
    signature: bytes

    def to_dict(self) -> dict:
        return {
            "payload": self.payload,
            "signer_id": self.signer_id,
            "key_fingerprint": self.key_fingerprint,
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SignedPayload":
        if "batch_root" in data:
            return AggregateSignedPayload.from_dict(data)
        return cls(
            payload=data["payload"],
            signer_id=data["signer_id"],
            key_fingerprint=data["key_fingerprint"],
            signature=data["signature"],
        )


@dataclass(frozen=True)
class AggregateSignedPayload(SignedPayload):
    """One payload out of a batch covered by a single root signature.

    ``signature`` is the signature over the *batch root message*, not
    this payload; ``proof`` ties the payload's canonical encoding into
    ``batch_root``.  Tampering with any one payload breaks that
    payload's inclusion proof while every other member of the batch
    still verifies — detection stays per-record even though signing cost
    is per-batch.
    """

    batch_root: bytes = b""
    leaf_count: int = 0
    proof: MerkleProof = field(default_factory=lambda: MerkleProof(0, 0))

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["batch_root"] = self.batch_root
        data["leaf_count"] = self.leaf_count
        data["proof"] = self.proof.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "AggregateSignedPayload":
        return cls(
            payload=data["payload"],
            signer_id=data["signer_id"],
            key_fingerprint=data["key_fingerprint"],
            signature=data["signature"],
            batch_root=data["batch_root"],
            leaf_count=data["leaf_count"],
            proof=MerkleProof.from_dict(data["proof"]),
        )


class Signer:
    """An identity (e.g. a storage site, a custodian) that can sign payloads.

    The backend is selected by the keypair's ``algorithm`` metadata:
    :class:`~repro.crypto.rsa.RsaKeyPair` (``"rsa"``, the default) or
    :class:`~repro.crypto.ed25519.Ed25519KeyPair` (``"ed25519"``).  Both
    expose the same ``sign``/``public``/``fingerprint`` surface, so
    everything downstream — payload wrapping, custody chains, trust
    stores — is backend-agnostic.
    """

    def __init__(
        self,
        signer_id: str,
        keypair: RsaKeyPair | Ed25519KeyPair | None = None,
        bits: int = 1024,
    ) -> None:
        self.signer_id = signer_id
        self._keypair = keypair or generate_keypair(bits)

    @property
    def algorithm(self) -> str:
        """The signing backend, from the keypair's metadata."""
        return getattr(self._keypair, "algorithm", "rsa")

    @property
    def public_key(self) -> RsaPublicKey | Ed25519PublicKey:
        return self._keypair.public

    def verifier(self) -> "Verifier":
        """The verification half for this signer."""
        return Verifier(self.signer_id, self._keypair.public)

    def sign(self, payload: Any) -> SignedPayload:
        """Sign the canonical encoding of *payload*."""
        message = canonical_bytes(payload)
        return SignedPayload(
            payload=payload,
            signer_id=self.signer_id,
            key_fingerprint=self._keypair.public.fingerprint(),
            signature=self._keypair.sign(message),
        )

    def sign_batch(self, payloads: list[Any]) -> list[AggregateSignedPayload]:
        """Sign many payloads with ONE signature over their Merkle root.

        Each returned :class:`AggregateSignedPayload` carries the shared
        root signature plus its own inclusion proof, so per-payload
        verification (and therefore per-record tamper detection) is
        preserved while the expensive private-key operation is amortized
        across the whole batch.
        """
        if not payloads:
            return []
        tree = MerkleTree()
        for payload in payloads:
            tree.append(canonical_bytes(payload))
        batch_root = tree.root()
        signature = self._keypair.sign(
            _batch_root_message(batch_root, len(payloads))
        )
        fingerprint = self._keypair.public.fingerprint()
        proofs = tree.prove_inclusion_all()
        return [
            AggregateSignedPayload(
                payload=payload,
                signer_id=self.signer_id,
                key_fingerprint=fingerprint,
                signature=signature,
                batch_root=batch_root,
                leaf_count=len(payloads),
                proof=proof,
            )
            for payload, proof in zip(payloads, proofs)
        ]


class Verifier:
    """Verification half: holds a signer's identity and public key."""

    def __init__(self, signer_id: str, public_key: RsaPublicKey | Ed25519PublicKey) -> None:
        self.signer_id = signer_id
        self.public_key = public_key

    def verify(self, signed: SignedPayload) -> Any:
        """Verify a :class:`SignedPayload` and return its payload.

        Raises :class:`AuthenticationError` if the signature is invalid,
        the signer identity does not match, or the key fingerprint
        differs from the trusted key.  Aggregate payloads additionally
        prove Merkle inclusion of the payload under the signed batch
        root.
        """
        if signed.signer_id != self.signer_id:
            raise AuthenticationError(
                f"payload signed by {signed.signer_id!r}, expected {self.signer_id!r}"
            )
        if signed.key_fingerprint != self.public_key.fingerprint():
            raise AuthenticationError("signing key fingerprint mismatch")
        if isinstance(signed, AggregateSignedPayload):
            return self._verify_aggregate(signed)
        self.public_key.verify(canonical_bytes(signed.payload), signed.signature)
        return signed.payload

    def _verify_aggregate(self, signed: AggregateSignedPayload) -> Any:
        if signed.proof.tree_size != signed.leaf_count or signed.leaf_count <= 0:
            raise AuthenticationError(
                "aggregate payload proof does not match its batch size"
            )
        memo_key = (
            signed.key_fingerprint,
            signed.batch_root,
            signed.leaf_count,
            signed.signature,
        )
        if not _ROOT_MEMO.check(memo_key):
            self.public_key.verify(
                _batch_root_message(signed.batch_root, signed.leaf_count),
                signed.signature,
            )
            _ROOT_MEMO.record(memo_key)
        try:
            verify_inclusion(
                canonical_bytes(signed.payload), signed.proof, signed.batch_root
            )
        except IntegrityError as exc:
            raise AuthenticationError(
                f"aggregate payload inclusion proof failed: {exc}"
            ) from exc
        return signed.payload


class TrustStore:
    """Registry of trusted verifiers, keyed by signer id.

    Migration destinations use this to check custody-transfer signatures
    from source sites they trust.
    """

    def __init__(self) -> None:
        self._verifiers: dict[str, Verifier] = {}

    def add(self, verifier: Verifier) -> None:
        self._verifiers[verifier.signer_id] = verifier

    def verify(self, signed: SignedPayload) -> Any:
        """Verify against the registered key for the payload's signer."""
        verifier = self._verifiers.get(signed.signer_id)
        if verifier is None:
            raise AuthenticationError(f"no trusted key for signer {signed.signer_id!r}")
        return verifier.verify(signed)

    def known_signers(self) -> list[str]:
        return sorted(self._verifiers)
