"""High-level signing interface over structured payloads.

Provenance transfers, migration manifests, and audit anchors all sign
*structured values* (dicts), not raw bytes.  :class:`Signer` canonically
encodes the value, signs it, and wraps everything in a
:class:`SignedPayload` that records the signer identity and key
fingerprint, so a verifier can (a) check the signature and (b) check it
was made by the expected party.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.errors import AuthenticationError
from repro.util.encoding import canonical_bytes


@dataclass(frozen=True)
class SignedPayload:
    """A structured value plus a signature over its canonical encoding."""

    payload: Any
    signer_id: str
    key_fingerprint: str
    signature: bytes

    def to_dict(self) -> dict:
        return {
            "payload": self.payload,
            "signer_id": self.signer_id,
            "key_fingerprint": self.key_fingerprint,
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SignedPayload":
        return cls(
            payload=data["payload"],
            signer_id=data["signer_id"],
            key_fingerprint=data["key_fingerprint"],
            signature=data["signature"],
        )


class Signer:
    """An identity (e.g. a storage site, a custodian) that can sign payloads."""

    def __init__(self, signer_id: str, keypair: RsaKeyPair | None = None, bits: int = 1024) -> None:
        self.signer_id = signer_id
        self._keypair = keypair or generate_keypair(bits)

    @property
    def public_key(self) -> RsaPublicKey:
        return self._keypair.public

    def verifier(self) -> "Verifier":
        """The verification half for this signer."""
        return Verifier(self.signer_id, self._keypair.public)

    def sign(self, payload: Any) -> SignedPayload:
        """Sign the canonical encoding of *payload*."""
        message = canonical_bytes(payload)
        return SignedPayload(
            payload=payload,
            signer_id=self.signer_id,
            key_fingerprint=self._keypair.public.fingerprint(),
            signature=self._keypair.sign(message),
        )


class Verifier:
    """Verification half: holds a signer's identity and public key."""

    def __init__(self, signer_id: str, public_key: RsaPublicKey) -> None:
        self.signer_id = signer_id
        self.public_key = public_key

    def verify(self, signed: SignedPayload) -> Any:
        """Verify a :class:`SignedPayload` and return its payload.

        Raises :class:`AuthenticationError` if the signature is invalid,
        the signer identity does not match, or the key fingerprint
        differs from the trusted key.
        """
        if signed.signer_id != self.signer_id:
            raise AuthenticationError(
                f"payload signed by {signed.signer_id!r}, expected {self.signer_id!r}"
            )
        if signed.key_fingerprint != self.public_key.fingerprint():
            raise AuthenticationError("signing key fingerprint mismatch")
        self.public_key.verify(canonical_bytes(signed.payload), signed.signature)
        return signed.payload


class TrustStore:
    """Registry of trusted verifiers, keyed by signer id.

    Migration destinations use this to check custody-transfer signatures
    from source sites they trust.
    """

    def __init__(self) -> None:
        self._verifiers: dict[str, Verifier] = {}

    def add(self, verifier: Verifier) -> None:
        self._verifiers[verifier.signer_id] = verifier

    def verify(self, signed: SignedPayload) -> Any:
        """Verify against the registered key for the payload's signer."""
        verifier = self._verifiers.get(signed.signer_id)
        if verifier is None:
            raise AuthenticationError(f"no trusted key for signer {signed.signer_id!r}")
        return verifier.verify(signed)

    def known_signers(self) -> list[str]:
        return sorted(self._verifiers)
