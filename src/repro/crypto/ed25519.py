"""Ed25519 signatures (RFC 8032), pure Python.

An alternative :class:`~repro.crypto.signatures.Signer` backend to
RSA-CRT: deterministic, small keys (32-byte seed, 32-byte public key,
64-byte signature), no padding to get wrong.  The curve arithmetic uses
extended homogeneous coordinates (RFC 8032 §5.1.4) over
``p = 2**255 - 19`` with plain double-and-add scalar multiplication —
adequate here because aggregated batch signing (one signature per batch
root) keeps the sign count per ingest batch at one.

Key expansion (seed -> clamped scalar + prefix + public key) costs a
SHA-512 and a base-point multiplication, so expansions are memoized per
seed in an LRU.  The memo holds key-equivalent material and is
registered with the shredder purge path
(:func:`purge_ed25519_memo` / ``purge_decisions``), the same contract
the ChaCha20 keystream cache honours.
"""

from __future__ import annotations

import hashlib
import secrets
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import AuthenticationError, CryptoError

P = 2**255 - 19
L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, P - 2, P)) % P

SEED_SIZE = 32
PUBLIC_KEY_SIZE = 32
SIGNATURE_SIZE = 64

# Extended coordinates (X, Y, Z, T) with x = X/Z, y = Y/Z, T = XY/Z.
_IDENTITY = (0, 1, 1, 0)

_BASE_Y = (4 * pow(5, P - 2, P)) % P
_BASE_X = None  # filled in below once _recover_x exists


def _recover_x(y: int, sign: int) -> int:
    """x from y on the curve -x^2 + y^2 = 1 + d x^2 y^2 (RFC 8032 §5.1.3)."""
    if y >= P:
        raise CryptoError("ed25519 point decoding failed: y out of range")
    x2 = (y * y - 1) * pow(_D * y * y + 1, P - 2, P) % P
    if x2 == 0:
        if sign:
            raise CryptoError("ed25519 point decoding failed: bad sign bit")
        return 0
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P != 0:
        x = x * pow(2, (P - 1) // 4, P) % P
    if (x * x - x2) % P != 0:
        raise CryptoError("ed25519 point decoding failed: not a square")
    if x & 1 != sign:
        x = P - x
    return x


_BASE_X = _recover_x(_BASE_Y, 0)
_BASE = (_BASE_X, _BASE_Y, 1, (_BASE_X * _BASE_Y) % P)


def _point_add(p1: tuple[int, int, int, int], p2: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    x1, y1, z1, t1 = p1
    x2, y2, z2, t2 = p2
    a = (y1 - x1) * (y2 - x2) % P
    b = (y1 + x1) * (y2 + x2) % P
    c = 2 * t1 * t2 * _D % P
    d = 2 * z1 * z2 % P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _point_mul(scalar: int, point: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    result = _IDENTITY
    while scalar:
        if scalar & 1:
            result = _point_add(result, point)
        point = _point_add(point, point)
        scalar >>= 1
    return result


def _point_compress(point: tuple[int, int, int, int]) -> bytes:
    x, y, z, _ = point
    z_inv = pow(z, P - 2, P)
    x, y = x * z_inv % P, y * z_inv % P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(data: bytes) -> tuple[int, int, int, int]:
    if len(data) != 32:
        raise CryptoError("ed25519 point must be 32 bytes")
    encoded = int.from_bytes(data, "little")
    y = encoded & ((1 << 255) - 1)
    sign = encoded >> 255
    x = _recover_x(y, sign)
    return (x, y, 1, (x * y) % P)


def _point_equal(p1: tuple[int, int, int, int], p2: tuple[int, int, int, int]) -> bool:
    x1, y1, z1, _ = p1
    x2, y2, z2, _ = p2
    return (x1 * z2 - x2 * z1) % P == 0 and (y1 * z2 - y2 * z1) % P == 0


def _sha512_int(*parts: bytes) -> int:
    h = hashlib.sha512()
    for part in parts:
        h.update(part)
    return int.from_bytes(h.digest(), "little")


class _KeyMemo:
    """LRU of seed -> (clamped scalar, prefix, public key bytes)."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[bytes, tuple[int, bytes, bytes]] = OrderedDict()

    def expand(self, seed: bytes) -> tuple[int, bytes, bytes]:
        cached = self._entries.get(seed)
        if cached is not None:
            self._entries.move_to_end(seed)
            return cached
        digest = hashlib.sha512(seed).digest()
        scalar = int.from_bytes(digest[:32], "little")
        scalar &= (1 << 254) - 8
        scalar |= 1 << 254
        prefix = digest[32:]
        public = _point_compress(_point_mul(scalar, _BASE))
        entry = (scalar, prefix, public)
        self._entries[seed] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry

    def purge(self, seed: bytes | None = None) -> int:
        if seed is None:
            count = len(self._entries)
            self._entries.clear()
            return count
        return 1 if self._entries.pop(seed, None) is not None else 0

    def __len__(self) -> int:
        return len(self._entries)


_KEY_MEMO = _KeyMemo()


def purge_ed25519_memo(seed: bytes | None = None) -> int:
    """Drop memoized key expansions (all, or one seed's).  Wired into the
    shredder purge path: expanded scalars are key-equivalent material and
    must not outlive a shredded key in process memory."""
    return _KEY_MEMO.purge(seed)


@dataclass(frozen=True)
class Ed25519PublicKey:
    """Verification half: the 32-byte compressed public point."""

    key_bytes: bytes

    algorithm = "ed25519"

    def fingerprint(self) -> str:
        return hashlib.sha256(b"ed25519" + self.key_bytes).hexdigest()[:32]

    def verify(self, message: bytes, signature: bytes) -> None:
        """Raises :class:`AuthenticationError` unless *signature* is a
        valid ed25519 signature over *message* by this key."""
        if len(signature) != SIGNATURE_SIZE:
            raise AuthenticationError("ed25519 signature must be 64 bytes")
        try:
            a_point = _point_decompress(self.key_bytes)
            r_point = _point_decompress(signature[:32])
        except CryptoError as exc:
            raise AuthenticationError(f"ed25519 verification failed: {exc}") from exc
        s = int.from_bytes(signature[32:], "little")
        if s >= L:
            raise AuthenticationError("ed25519 signature scalar out of range")
        k = _sha512_int(signature[:32], self.key_bytes, message) % L
        left = _point_mul(s, _BASE)
        right = _point_add(r_point, _point_mul(k, a_point))
        if not _point_equal(left, right):
            raise AuthenticationError("ed25519 signature verification failed")


@dataclass(frozen=True)
class Ed25519KeyPair:
    """Signing half, derived entirely from a 32-byte seed (RFC 8032).

    A plain frozen dataclass of bytes, so it is picklable — worker
    processes rebuild shard engines from serialized specs that include
    the signing keypair.
    """

    seed: bytes

    algorithm = "ed25519"

    def __post_init__(self) -> None:
        if len(self.seed) != SEED_SIZE:
            raise CryptoError(f"ed25519 seed must be {SEED_SIZE} bytes")

    @property
    def public(self) -> Ed25519PublicKey:
        _, _, public = _KEY_MEMO.expand(self.seed)
        return Ed25519PublicKey(public)

    def sign(self, message: bytes) -> bytes:
        scalar, prefix, public = _KEY_MEMO.expand(self.seed)
        r = _sha512_int(prefix, message) % L
        r_bytes = _point_compress(_point_mul(r, _BASE))
        k = _sha512_int(r_bytes, public, message) % L
        s = (r + k * scalar) % L
        return r_bytes + s.to_bytes(32, "little")


def generate_ed25519_keypair(seed: bytes | None = None) -> Ed25519KeyPair:
    """A fresh (or seed-derived, for tests) ed25519 keypair."""
    return Ed25519KeyPair(seed=seed if seed is not None else secrets.token_bytes(SEED_SIZE))
