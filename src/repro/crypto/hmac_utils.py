"""HMAC-SHA256 and constant-time verification.

MACs protect the trustworthy index's posting lists and the AEAD
ciphertexts.  Verification always goes through
:func:`constant_time_equal` so the comparison cannot leak a matching
prefix through timing.
"""

from __future__ import annotations

import hmac as _hmac

from repro.errors import AuthenticationError


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256(key, data)."""
    if not key:
        raise ValueError("HMAC key must not be empty")
    # hmac.digest is the one-shot C fast path — same output as
    # hmac.new(...).digest() without the streaming-object overhead.
    return _hmac.digest(key, data, "sha256")


def constant_time_equal(left: bytes, right: bytes) -> bool:
    """Timing-safe equality for MACs/digests."""
    return _hmac.compare_digest(left, right)


def verify_hmac(key: bytes, data: bytes, tag: bytes) -> None:
    """Verify a MAC, raising :class:`AuthenticationError` on mismatch."""
    expected = hmac_sha256(key, data)
    if not constant_time_equal(expected, tag):
        raise AuthenticationError("HMAC verification failed")
