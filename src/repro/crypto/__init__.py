"""Pure-Python cryptographic substrate.

No third-party crypto libraries are available in this environment, so
every primitive the compliant store needs is implemented here on top of
:mod:`hashlib`/:mod:`hmac`:

* SHA-256 hashing helpers and digest chaining (:mod:`repro.crypto.hashing`)
* HMAC + constant-time comparison (:mod:`repro.crypto.hmac_utils`)
* Merkle trees with inclusion and consistency proofs (:mod:`repro.crypto.merkle`)
* ChaCha20 stream cipher, RFC 8439 (:mod:`repro.crypto.chacha20`)
* Encrypt-then-MAC AEAD over ChaCha20+HMAC (:mod:`repro.crypto.aead`)
* HKDF key derivation (:mod:`repro.crypto.kdf`)
* RSA signatures with Miller-Rabin keygen (:mod:`repro.crypto.rsa`)
* A shreddable key hierarchy (:mod:`repro.crypto.keys`) — the basis of
  secure deletion by key destruction.
"""

from repro.crypto.aead import AeadCipher, AeadCiphertext
from repro.crypto.chacha20 import chacha20_keystream, chacha20_xor
from repro.crypto.hashing import (
    DIGEST_SIZE,
    chain_digest,
    hash_canonical,
    hash_chunks,
    sha256,
)
from repro.crypto.hmac_utils import constant_time_equal, hmac_sha256, verify_hmac
from repro.crypto.kdf import hkdf_expand, hkdf_extract, derive_key
from repro.crypto.keys import KeyHandle, KeyStore, ShreddedKeyError
from repro.crypto.merkle import MerkleProof, MerkleTree, verify_inclusion
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.signatures import Signer, Verifier, SignedPayload

__all__ = [
    "AeadCipher",
    "AeadCiphertext",
    "chacha20_keystream",
    "chacha20_xor",
    "DIGEST_SIZE",
    "chain_digest",
    "hash_canonical",
    "hash_chunks",
    "sha256",
    "constant_time_equal",
    "hmac_sha256",
    "verify_hmac",
    "hkdf_expand",
    "hkdf_extract",
    "derive_key",
    "KeyHandle",
    "KeyStore",
    "ShreddedKeyError",
    "MerkleProof",
    "MerkleTree",
    "verify_inclusion",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "Signer",
    "Verifier",
    "SignedPayload",
]
