"""Merkle trees with inclusion and consistency proofs.

Used in three places:

* **Audit anchoring** — the audit log periodically commits its entries'
  Merkle root to an external witness; consistency proofs show a later
  root extends an earlier one (no history rewriting).
* **Migration manifests** — the source store publishes the Merkle root
  of all record digests; the destination proves completeness by
  recomputing it, and any single lost/altered record changes the root.
* **Backup verification** — restored data is checked against the
  backed-up root.

The construction follows RFC 6962 (Certificate Transparency) in shape —
an unbalanced tree recurses on the largest power of two smaller than n —
but is instantiated over BLAKE2b-256 with *personalization*-based
leaf/node domain separation instead of SHA-256 with prefix bytes.
BLAKE2b's lower per-call overhead wins on the 32–64 byte node inputs
these trees hash in their update loops, and personalization means the
forest-merge loop streams child digests straight into the hasher with
no ``prefix + left + right`` concatenation.  Leaves may be any buffer
(``bytes``, ``bytearray``, ``memoryview``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import IntegrityError, ValidationError

_LEAF_PERSON = b"merkle/leaf"
_NODE_PERSON = b"merkle/node"

EMPTY_ROOT = hashlib.blake2b(b"", digest_size=32).digest()
"""Root of the empty tree (hash of the empty string, as in RFC 6962)."""


def _leaf_hash(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=32, person=_LEAF_PERSON).digest()


def leaf_hash(data: bytes) -> bytes:
    """The domain-separated leaf hash of *data*.

    Public so verifiers can compare independently derived bytes against
    a tree's stored leaf digests (see :meth:`MerkleTree.leaf_digest`)
    without rebuilding any tree structure.
    """
    return _leaf_hash(data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    hasher = hashlib.blake2b(digest_size=32, person=_NODE_PERSON)
    hasher.update(left)
    hasher.update(right)
    return hasher.digest()


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than n (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


def _subtree_root(leaves: list[bytes]) -> bytes:
    if len(leaves) == 1:
        return leaves[0]
    split = _largest_power_of_two_below(len(leaves))
    return _node_hash(_subtree_root(leaves[:split]), _subtree_root(leaves[split:]))


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof: the path of sibling hashes from a leaf to the root.

    ``path`` entries are ``(sibling_digest, sibling_is_left)``.
    """

    leaf_index: int
    tree_size: int
    path: tuple[tuple[bytes, bool], ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        """Serializable form (for embedding in manifests/reports)."""
        return {
            "leaf_index": self.leaf_index,
            "tree_size": self.tree_size,
            "path": [[digest, is_left] for digest, is_left in self.path],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MerkleProof":
        return cls(
            leaf_index=data["leaf_index"],
            tree_size=data["tree_size"],
            path=tuple((digest, bool(is_left)) for digest, is_left in data["path"]),
        )


class MerkleTree:
    """An append-only Merkle tree over byte-string leaves.

    Appends maintain an incremental *forest* of perfect-subtree roots
    (the binary-counter construction used by CT log servers), so
    :meth:`root` is O(log n) hashing instead of a full O(n) rebuild —
    the audit log reads the root on every anchor, and the engine's
    batch commits read it once per batch.
    """

    def __init__(self, leaves: list[bytes] | None = None) -> None:
        self._leaf_hashes: list[bytes] = []
        # (size, subtree_root) with sizes strictly decreasing powers of
        # two; together they cover all leaves left to right.
        self._forest: list[tuple[int, bytes]] = []
        for leaf in leaves or []:
            self.append(leaf)

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    def _push_leaf(self, leaf_hash: bytes) -> int:
        self._leaf_hashes.append(leaf_hash)
        self._forest.append((1, leaf_hash))
        # Merge equal-size perfect subtrees (binary-counter carry).
        while len(self._forest) >= 2 and self._forest[-1][0] == self._forest[-2][0]:
            right_size, right = self._forest.pop()
            left_size, left = self._forest.pop()
            self._forest.append((left_size + right_size, _node_hash(left, right)))
        return len(self._leaf_hashes) - 1

    def append(self, leaf: bytes) -> int:
        """Append a leaf; returns its index."""
        if not isinstance(leaf, (bytes, bytearray, memoryview)):
            raise ValidationError("Merkle leaves must be bytes")
        return self._push_leaf(_leaf_hash(leaf))

    def append_hash(self, leaf_hash: bytes) -> int:
        """Append a pre-hashed leaf (32 bytes, already leaf-hashed)."""
        if len(leaf_hash) != 32:
            raise ValidationError("leaf hash must be 32 bytes")
        return self._push_leaf(bytes(leaf_hash))

    def root(self) -> bytes:
        """Current root digest (EMPTY_ROOT for the empty tree).

        Folds the incremental forest right-to-left, which reproduces
        the RFC 6962 recursion: the split point is always the largest
        power of two below the range size, i.e. the leftmost forest
        entry at every level.
        """
        if not self._forest:
            return EMPTY_ROOT
        acc = self._forest[-1][1]
        for _, subtree in reversed(self._forest[:-1]):
            acc = _node_hash(subtree, acc)
        return acc

    def root_at(self, size: int) -> bytes:
        """Root of the historical tree containing only the first *size* leaves."""
        if size < 0 or size > len(self._leaf_hashes):
            raise ValidationError(f"size {size} out of range 0..{len(self._leaf_hashes)}")
        if size == 0:
            return EMPTY_ROOT
        if size == len(self._leaf_hashes):
            return self.root()  # O(log n) forest fold, not an O(n) rebuild
        return _subtree_root(self._leaf_hashes[:size])

    def leaf_digest(self, index: int) -> bytes:
        """The stored leaf hash at *index* (already leaf-hashed).

        Incremental audit verification compares device-derived bytes
        against these trusted in-memory digests: a sealed-prefix frame
        whose re-derived :func:`leaf_hash` disagrees has been tampered
        with on the raw device.
        """
        if index < 0 or index >= len(self._leaf_hashes):
            raise ValidationError(
                f"leaf index {index} out of range 0..{len(self._leaf_hashes) - 1}"
            )
        return self._leaf_hashes[index]

    def prove_inclusion(self, index: int) -> MerkleProof:
        """Produce an inclusion proof for the leaf at *index*."""
        n = len(self._leaf_hashes)
        if index < 0 or index >= n:
            raise ValidationError(f"leaf index {index} out of range 0..{n - 1}")
        path: list[tuple[bytes, bool]] = []

        def walk(lo: int, hi: int, target: int) -> None:
            if hi - lo == 1:
                return
            split = lo + _largest_power_of_two_below(hi - lo)
            if target < split:
                walk(lo, split, target)
                path.append((_subtree_root(self._leaf_hashes[split:hi]), False))
            else:
                walk(split, hi, target)
                path.append((_subtree_root(self._leaf_hashes[lo:split]), True))

        walk(0, n, index)
        return MerkleProof(leaf_index=index, tree_size=n, path=tuple(path))

    def prove_inclusion_all(self) -> list[MerkleProof]:
        """Inclusion proofs for every leaf against the current root.

        Computes each recursion range's subtree root exactly once (O(n)
        hashing for the whole batch) instead of re-deriving sibling
        ranges per proof — :meth:`prove_inclusion` in a loop would cost
        O(n^2).  Aggregated batch signing attaches one of these proofs
        to every record in the batch.
        """
        n = len(self._leaf_hashes)
        if n == 0:
            return []
        memo: dict[tuple[int, int], bytes] = {}

        def build(lo: int, hi: int) -> bytes:
            if hi - lo == 1:
                digest = self._leaf_hashes[lo]
            else:
                split = lo + _largest_power_of_two_below(hi - lo)
                digest = _node_hash(build(lo, split), build(split, hi))
            memo[(lo, hi)] = digest
            return digest

        build(0, n)
        proofs = []
        for index in range(n):
            path: list[tuple[bytes, bool]] = []
            lo, hi = 0, n
            spans: list[tuple[int, int]] = []
            while hi - lo > 1:
                spans.append((lo, hi))
                split = lo + _largest_power_of_two_below(hi - lo)
                if index < split:
                    hi = split
                else:
                    lo = split
            for span_lo, span_hi in reversed(spans):
                split = span_lo + _largest_power_of_two_below(span_hi - span_lo)
                if index < split:
                    path.append((memo[(split, span_hi)], False))
                else:
                    path.append((memo[(span_lo, split)], True))
            proofs.append(MerkleProof(leaf_index=index, tree_size=n, path=tuple(path)))
        return proofs

    def prove_inclusion_at(self, index: int, size: int) -> MerkleProof:
        """Inclusion proof against the *historical* tree of the first
        ``size`` leaves (proofs must match the root they verify against,
        e.g. a previously published anchor)."""
        if size < 1 or size > len(self._leaf_hashes):
            raise ValidationError(f"size {size} out of range 1..{len(self._leaf_hashes)}")
        historical = MerkleTree.__new__(MerkleTree)
        historical._leaf_hashes = self._leaf_hashes[:size]
        historical._forest = []  # proofs recurse over leaf hashes only
        return historical.prove_inclusion(index)

    def prove_consistency(self, old_size: int) -> list[bytes]:
        """Consistency proof that the current tree extends the tree of
        *old_size* leaves (RFC 6962 §2.1.2, simplified recursive form)."""
        n = len(self._leaf_hashes)
        if old_size < 0 or old_size > n:
            raise ValidationError(f"old_size {old_size} out of range 0..{n}")
        if old_size == 0 or old_size == n:
            return []

        proof: list[bytes] = []

        def subproof(lo: int, hi: int, m: int, complete: bool) -> None:
            # Proves the subtree over [lo, hi) is consistent with its
            # first (m - lo) leaves. `complete` means the old subtree
            # equals the whole [lo, split) range at some ancestor.
            if m == hi:
                if not complete:
                    proof.append(_subtree_root(self._leaf_hashes[lo:hi]))
                return
            split = lo + _largest_power_of_two_below(hi - lo)
            if m <= split:
                subproof(lo, split, m, complete)
                proof.append(_subtree_root(self._leaf_hashes[split:hi]))
            else:
                subproof(split, hi, m, False)
                proof.append(_subtree_root(self._leaf_hashes[lo:split]))

        subproof(0, n, old_size, True)
        return proof


def verify_inclusion(leaf: bytes, proof: MerkleProof, root: bytes) -> None:
    """Verify an inclusion proof; raises :class:`IntegrityError` on failure."""
    digest = _leaf_hash(leaf)
    for sibling, sibling_is_left in proof.path:
        if sibling_is_left:
            digest = _node_hash(sibling, digest)
        else:
            digest = _node_hash(digest, sibling)
    if digest != root:
        raise IntegrityError(
            f"Merkle inclusion proof failed for leaf index {proof.leaf_index}"
        )


def verify_consistency(
    old_root: bytes,
    new_root: bytes,
    old_size: int,
    new_size: int,
    proof: list[bytes],
) -> None:
    """Verify a consistency proof produced by :meth:`MerkleTree.prove_consistency`.

    Raises :class:`IntegrityError` if *new_root* does not extend *old_root*.
    """
    if old_size == 0:
        return  # the empty tree is a prefix of everything
    if old_size == new_size:
        if old_root != new_root:
            raise IntegrityError("equal-size trees with different roots")
        return
    if old_size > new_size:
        raise IntegrityError("old tree is larger than new tree")

    # Reconstruct both roots from the proof hashes by replaying the
    # same recursion shape used by prove_consistency.
    proof_iter = iter(proof)

    def reconstruct(lo: int, hi: int, m: int, complete: bool) -> tuple[bytes, bytes]:
        # returns (old_subtree_root, new_subtree_root) for range [lo, hi)
        if m == hi:
            if complete:
                # verifier knows this subtree root: it's old_root itself
                return old_root, old_root
            digest = next(proof_iter)
            return digest, digest
        split = lo + _largest_power_of_two_below(hi - lo)
        if m <= split:
            # The old tree's first m leaves lie entirely in the left child,
            # so the old root of this range is the old root of the left child.
            old_left, new_left = reconstruct(lo, split, m, complete)
            right = next(proof_iter)
            return old_left, _node_hash(new_left, right)
        old_right, new_right = reconstruct(split, hi, m, False)
        left = next(proof_iter)
        return _node_hash(left, old_right), _node_hash(left, new_right)

    try:
        computed_old, computed_new = reconstruct(0, new_size, old_size, True)
    except StopIteration:
        raise IntegrityError("consistency proof truncated") from None
    remaining = list(proof_iter)
    if remaining:
        raise IntegrityError("consistency proof has extra hashes")
    if computed_old != old_root:
        raise IntegrityError("consistency proof does not reproduce the old root")
    if computed_new != new_root:
        raise IntegrityError("consistency proof does not reproduce the new root")
