"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``serve`` — run the v1 wire API (asyncio HTTP frontend) over a
  sharded cluster; ``--seed-demo`` enrolls demo principals and prints
  their login secrets.
* ``client`` — talk to a running service over the wire: ``login``,
  ``store``, ``read``, ``audit-query``, ``verify``, ``break-glass``,
  ``healthz``.  Every call is authenticated, authorized, and audited
  server-side; there is no direct-engine path here by design.
* ``demo`` — the quickstart flow over the wire: serve in-process,
  login, store, search, read, show the audit trail (including the
  denial left by an unauthorized probe).
* ``matrix`` — run the full E1 requirements matrix (slow: probes all
  six models with the attack suite).
* ``thirty-years`` — the OSHA retention simulation with media refresh.
* ``audit-ops`` — build a small deployment, drift it, and print the
  operational-findings report.
* ``metrics`` — ingest a small workload both ways (looped vs batched)
  and print the performance counters.
* ``verify`` — crash-consistency sweep, differential conformance
  across all six models, and the incremental-vs-full detection-
  equivalence oracle; ``--incremental``/``--deep`` demo the
  watermarked verification fast path; ``--shards N`` additionally
  runs the cross-shard detection-equivalence oracle against an
  N-shard cluster; non-zero exit on any violation/divergence.
* ``cluster-demo`` — build a sharded :class:`CuratorCluster`, route a
  workload across it, and print per-shard counters and the merged
  verification reports.
* ``policy lint`` — static checks (duplicates, shadowing, uncovered
  actions) over the default declarative rulesets; non-zero exit on any
  error-severity finding.
* ``policy explain <actor> <action> [resource]`` — trace one access
  decision through the compiled default ruleset and print the rules
  consulted; exit status mirrors allow/deny.
* ``info`` — library version and subsystem inventory.
"""

from __future__ import annotations

import argparse
import secrets
import sys


def _cmd_info(_args) -> int:
    import repro

    print(f"repro (Curator) {repro.__version__}")
    print(__doc__)
    subsystems = [
        "crypto", "storage", "worm", "records", "audit", "provenance",
        "index", "access", "retention", "migration", "backup", "cost",
        "workload", "threats", "baselines", "compliance", "core",
    ]
    print("subsystems: " + ", ".join(f"repro.{s}" for s in subsystems))
    return 0


def _quickstart() -> int:
    """The demo now runs over the wire: an in-process server, a real
    login, and every operation attributed to the authenticated session
    actor — the direct-engine path the old demo used bypassed exactly
    the attribution this PR's front door enforces."""
    from repro import CuratorCluster, CuratorConfig
    from repro.access import Role, User
    from repro.records import ClinicalNote
    from repro.service import (
        CuratorService,
        ServiceClient,
        ServiceClientError,
        ServiceConfig,
        ServiceServer,
    )

    cluster = CuratorCluster(
        CuratorConfig(master_key=secrets.token_bytes(32), site_id="demo"), shards=2
    )
    service = CuratorService(cluster, ServiceConfig(port=0))
    secret = service.enroll(
        User.make("dr-demo", "Dr Demo", [Role.PHYSICIAN], "cardiology",
                  treating={"pat-1"})
    )
    server = ServiceServer(service).start()
    print(f"in-process service on {server.base_url}")
    try:
        client = ServiceClient(server.host, server.port)
        envelope = client.login("dr-demo", secret)
        print(f"logged in as {envelope.user_id} (session {envelope.session_id})")
        note = ClinicalNote.create(
            record_id="rec-1",
            patient_id="pat-1",
            created_at=1.17e9,
            author="dr-demo",
            specialty="cardiology",
            text="patient reports palpitations; echocardiogram ordered",
        )
        stored = client.store(note.to_dict())
        print(f"stored {stored.record_id} (version {stored.versions})")
        print("search('palpitations') ->", list(client.search("palpitations").record_ids))
        record = client.read("rec-1")
        print(f"read {record.record_id}: {record.body['text']!r}")
        try:  # an unauthorized probe: physicians may not read the audit trail
            client.audit_query()
        except ServiceClientError as exc:
            print(f"audit probe denied: {exc.status} {exc.code} "
                  f"(rule {exc.rule_id or 'default:deny'})")
        print("service audit chain (every wire call, including the denial):")
        for event in service.audit_events():
            print(f"  [{event.sequence:03d}] {event.action.value:<17} "
                  f"{event.actor_id:<10} {event.subject_id}")
        service.verify_service_audit()
        print("service audit chain verifies")
    finally:
        server.stop()
        cluster.close()
    return 0


def _serve(args) -> int:
    from repro import CuratorCluster, CuratorConfig
    from repro.access import Role, User
    from repro.service import CuratorService, ServiceConfig, ServiceServer

    cluster = CuratorCluster(
        CuratorConfig(master_key=secrets.token_bytes(32), site_id="serve"),
        shards=args.shards,
        workers=args.workers,
        vnodes=args.vnodes,
    )
    service = CuratorService(
        cluster,
        ServiceConfig(
            host=args.host,
            port=args.port,
            queue_limit=args.queue_limit,
            rate_capacity=args.rate_capacity,
            rate_refill_per_second=args.rate_refill,
        ),
    )
    if args.seed_demo:
        demo_users = (
            User.make("dr-demo", "Dr Demo", [Role.PHYSICIAN], "cardiology",
                      treating={"pat-1", "pat-2"}),
            User.make("nurse-demo", "Nurse Demo", [Role.NURSE], "er",
                      treating={"pat-1"}),
            User.make("po-demo", "Privacy Officer", [Role.PRIVACY_OFFICER],
                      "privacy"),
        )
        print("seeded demo principals (login with `repro client login`):")
        for user in demo_users:
            secret = service.enroll(user)
            roles = ",".join(sorted(r.value for r in user.roles))
            print(f"  {user.user_id:<12} roles={roles:<16} secret={secret.hex()}")
    server = ServiceServer(service)
    print(f"serving v1 API on http://{args.host}:{args.port} "
          f"({args.shards} shards, {args.workers} workers); Ctrl-C to stop")
    try:
        server.run_forever()
    finally:
        cluster.close()
    return 0


def _client(args) -> int:
    from repro.service import ServiceClient, ServiceClientError

    client = ServiceClient(args.host, args.port)
    client.bearer = getattr(args, "token", "") or ""
    try:
        return _client_dispatch(args, client)
    except ServiceClientError as exc:
        print(f"error: {exc.status} {exc.code}: {exc.error.message}",
              file=sys.stderr)
        if exc.rule_id:
            print(f"  denied by rule {exc.rule_id}", file=sys.stderr)
            for entry in exc.trace:
                print(f"    consulted {entry.get('rule', '?')}: "
                      f"{entry.get('outcome', '?')}", file=sys.stderr)
        return 1


def _client_dispatch(args, client) -> int:
    import json as _json

    command = args.client_command
    if command == "login":
        envelope = client.login(args.user, bytes.fromhex(args.secret))
        print(f"user: {envelope.user_id}")
        print(f"session: {envelope.session_id} (expires {envelope.expires_at})")
        print(f"token: {envelope.token}")
        return 0
    if command == "healthz":
        health = client.healthz()
        print(f"status: {health.status}")
        print(f"shards: {', '.join(health.shards)}")
        print(f"queue: {health.queue_depth}/{health.queue_limit}; "
              f"sessions: {health.active_sessions}")
        return 0
    if command == "store":
        from repro.records import ClinicalNote

        note = ClinicalNote.create(
            record_id=args.record_id,
            patient_id=args.patient_id,
            created_at=args.created_at,
            author=args.author or "wire-client",
            specialty=args.specialty,
            text=args.text,
        )
        stored = client.store(note.to_dict())
        print(f"stored {stored.record_id} for {stored.patient_id} "
              f"(version {stored.versions})")
        return 0
    if command == "read":
        record = client.read(args.record_id, purpose=args.purpose)
        print(_json.dumps(record.to_wire(), indent=2, sort_keys=True))
        return 0
    if command == "audit-query":
        result = client.audit_query(
            actor_id=args.actor, action=args.action, limit=args.limit
        )
        print(f"{result.total} matching event(s); showing {len(result.events)}:")
        for event in result.events:
            print(f"  [{event.get('sequence', '?')}] {event.get('action'):<18} "
                  f"{event.get('actor_id'):<12} {event.get('subject_id')}")
        return 0
    if command == "verify":
        report = client.verify(incremental=args.incremental)
        print(f"ok: {report.ok}")
        print(f"integrity: {report.integrity_summary}")
        print(f"audit:     {report.audit_summary}")
        for violation in report.violations:
            print(f"  violation: {violation}")
        return 0 if report.ok else 1
    if command == "break-glass":
        grant = client.break_glass(args.patient_id, args.justification)
        print(f"grant {grant.grant_id}: {grant.user_id} -> {grant.patient_id}")
        return 0
    print(f"unknown client command {command!r}", file=sys.stderr)
    return 2


def _matrix() -> int:
    from repro.baselines import (
        EncryptedStore,
        HippocraticStore,
        ObjectStore,
        PlainWormStore,
        RelationalStore,
    )
    from repro.compliance import ComplianceChecker, render_matrix
    from repro.core import CuratorConfig, CuratorStore
    from repro.util import SimulatedClock

    master = bytes(range(32))

    def curator():
        clock = SimulatedClock(start=1.17e9)
        return CuratorStore(CuratorConfig(master_key=master, clock=clock)), clock

    def plainworm():
        clock = SimulatedClock(start=1.17e9)
        return PlainWormStore(clock=clock), clock

    factories = {
        "relational": lambda: (RelationalStore(), None),
        "encrypted": lambda: (EncryptedStore(), None),
        "hippocratic": lambda: (HippocraticStore(), None),
        "objectstore": lambda: (ObjectStore(), None),
        "plainworm": plainworm,
        "curator": curator,
    }
    print("probing all six models with the attack suite (this takes a few minutes)...")
    print(render_matrix(ComplianceChecker().evaluate_all(factories)))
    return 0


def _thirty_years(_args) -> int:
    from repro import ArchiveLifecycle, CuratorConfig, CuratorStore
    from repro.util import SimulatedClock
    from repro.workload import WorkloadGenerator

    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=secrets.token_bytes(32), clock=clock))
    generator = WorkloadGenerator("cli", clock)
    generator.create_population(10)
    for _ in range(12):
        g = generator.exposure_record()
        store.store(g.record, g.author_id)
    lifecycle = ArchiveLifecycle(store, clock, media_refresh_years=5.0, backup_every_years=1.0)
    report = lifecycle.run_years(31.0, step_years=1.0)
    print(f"simulated {report.years_simulated:.0f} years: "
          f"{report.media_refreshes} media refreshes, "
          f"{report.backups_taken} backups, "
          f"{report.records_disposed} records disposed, "
          f"{len(report.integrity_failures)} integrity failures")
    print("audit trail verifies:", store.verify_audit_trail().summary())
    return 0


def _audit_ops(_args) -> int:
    from repro import CuratorConfig, CuratorStore
    from repro.access import Role, User
    from repro.compliance.operations import operational_findings, render_findings
    from repro.records import ClinicalNote
    from repro.util import SimulatedClock

    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=secrets.token_bytes(32), clock=clock))
    note = ClinicalNote.create(
        record_id="rec-1", patient_id="pat-1", created_at=clock.now(),
        author="dr-a", specialty="oncology", text="routine followup",
    )
    store.store(note, author_id="dr-a")
    store.register_user(User.make("dr-er", "ER", [Role.PHYSICIAN]))
    store.break_glass("dr-er", "pat-1", "emergency override during night shift")
    clock.advance_years(8)  # age the media, expire the note, miss the review
    print(render_findings(operational_findings(store)))
    return 0


def _metrics(_args) -> int:
    from repro import CuratorConfig, CuratorStore
    from repro.util import SimulatedClock
    from repro.util.metrics import METRICS
    from repro.workload import WorkloadGenerator

    def build():
        clock = SimulatedClock(start=1.17e9)
        store = CuratorStore(CuratorConfig(master_key=bytes(range(32)), clock=clock))
        generator = WorkloadGenerator("cli-metrics", clock)
        generator.create_population(8)
        return store, [generator.encounter_record() for _ in range(16)]

    METRICS.reset()
    store, batch = build()
    for generated in batch:
        store.store(generated.record, generated.author_id)
    for record_id in store.record_ids()[:4]:
        store.read(record_id, actor_id="system")
        store.read(record_id, actor_id="system")  # second read hits the LRU
    looped = METRICS.snapshot()

    METRICS.reset()
    store, batch = build()
    store.store_many([g.record for g in batch], batch[0].author_id)
    batched = METRICS.snapshot()

    names = sorted(set(looped) | set(batched))
    width = max(len(n) for n in names)
    print(f"{'counter':<{width}}  {'looped':>12}  {'batched':>12}")
    for name in names:
        print(f"{name:<{width}}  {looped.get(name, 0):>12}  {batched.get(name, 0):>12}")

    # tier traffic: age the batch, demote it cold, then serve reads
    # from each tier so the counters and ratios have something to say
    from repro.archive import DemotionPolicy

    METRICS.reset()
    clock = store._clock  # noqa: SLF001 — demo plumbing
    record_ids = store.record_ids()
    for record_id in record_ids[:4]:
        store.read(record_id, actor_id="system")   # warm miss
        store.read(record_id, actor_id="system")   # hot LRU hit
    clock.advance_years(3.0)
    store.demotion_sweep(DemotionPolicy(), actor_id="cli-metrics")
    store.read(record_ids[0], actor_id="system")    # read-through recall
    store.read(record_ids[0], actor_id="system")    # hot again post-recall

    tiers = METRICS.snapshot()
    hot = tiers.get("tier_hot_hits", 0)
    warm = tiers.get("tier_warm_reads", 0)
    cold = tiers.get("tier_cold_reads", 0)
    served = hot + warm + cold
    stats = store.tier_stats()
    print()
    print("tier traffic (post-demotion scenario)")
    for name in sorted(n for n in tiers if n.startswith("tier_")):
        print(f"  {name:<24}  {tiers[name]:>8}")
    if served:
        print(f"  {'hot hit ratio':<24}  {hot / served:>8.2f}")
        print(f"  {'warm read ratio':<24}  {warm / served:>8.2f}")
        print(f"  {'cold recall ratio':<24}  {cold / served:>8.2f}")
    print(
        f"  occupancy: {stats['warm_records']} warm / "
        f"{stats['cold_records']} cold in {stats['cold_segments']} "
        f"segment(s); {stats['warm_bytes']} warm bytes, "
        f"{stats['cold_bytes']} cold bytes"
    )

    # wire service: serve a short in-process burst (logins, reads, a
    # denial, an unknown endpoint) so the request/denial/queue counters
    # have real traffic behind them
    from repro import CuratorCluster
    from repro.access import Role, User
    from repro.records import ClinicalNote
    from repro.service import (
        CuratorService,
        ServiceClient,
        ServiceClientError,
        ServiceConfig,
        ServiceServer,
    )

    METRICS.reset()
    cluster = CuratorCluster(
        CuratorConfig(master_key=bytes(range(32)), site_id="cli-metrics"), shards=2
    )
    service = CuratorService(cluster, ServiceConfig(port=0))
    secret = service.enroll(
        User.make("dr-m", "Dr M", [Role.PHYSICIAN], "cardio", treating={"pat-1"})
    )
    server = ServiceServer(service).start()
    try:
        wire = ServiceClient(server.host, server.port)
        wire.login("dr-m", secret)
        wire.store(ClinicalNote.create(
            record_id="rec-m", patient_id="pat-1", created_at=1.17e9,
            author="dr-m", specialty="cardio", text="metrics demo note",
        ).to_dict())
        for _ in range(3):
            wire.read("rec-m")
        for call in (wire.audit_query, wire.healthz):  # one denial, one ok
            try:
                call()
            except ServiceClientError:
                pass
        try:
            wire.request("GET", "/v1/nope")
        except ServiceClientError:
            pass
    finally:
        server.stop()
        cluster.close()
    snapshot = METRICS.snapshot()
    print()
    print("wire service (in-process burst)")
    for name in sorted(snapshot):
        if name.startswith("service_"):
            print(f"  {name:<36}  {snapshot[name]:>8}")
    return 0


def _cluster_demo(args) -> int:
    from repro import CuratorCluster, CuratorConfig
    from repro.records import ClinicalNote
    from repro.util import SimulatedClock
    from repro.util.metrics import METRICS

    clock = SimulatedClock(start=1.17e9)
    cluster = CuratorCluster(
        CuratorConfig(master_key=secrets.token_bytes(32), clock=clock),
        shards=args.shards,
    )
    METRICS.reset()
    for n in range(12):
        cluster.store(
            ClinicalNote.create(
                record_id=f"rec-{n:02d}",
                patient_id=f"pat-{n % 8}",
                created_at=clock.now(),
                author="dr-demo",
                specialty="cardiology",
                text=f"cluster demo note {n}: sinus rhythm",
            ),
            author_id="dr-demo",
        )
    for n in range(12):
        cluster.read(f"rec-{n:02d}", actor_id="dr-demo")
    hits = cluster.search("rhythm", actor_id="dr-demo")

    print(f"cluster {cluster.manifest.cluster_id}: "
          f"{cluster.shard_count} shards, {len(cluster.record_ids())} records")
    print(f"merged search('rhythm') -> {len(hits)} records")
    for name in ("cluster_stores", "cluster_reads", "cluster_searches"):
        print(f"  {name}: {METRICS.labelled(name)}")
    integrity = cluster.verify_integrity()
    audit = cluster.verify_audit_trail()
    print("integrity:", integrity.summary())
    print("audit:    ", audit.summary())
    return 0 if (integrity.ok and audit.ok) else 1


def _cluster_rebalance(args) -> int:
    """Demo of online elastic resharding: grow (or shrink) a live
    seeded cluster, then re-verify every move's MigrationProof and the
    cluster's own integrity and audit paths."""
    from repro import CuratorCluster, CuratorConfig
    from repro.records import ClinicalNote
    from repro.util import SimulatedClock

    clock = SimulatedClock(start=1.17e9)
    cluster = CuratorCluster(
        CuratorConfig(master_key=secrets.token_bytes(32), clock=clock),
        shards=args.shards,
        vnodes=args.vnodes,
    )
    for n in range(args.patients):
        cluster.store(
            ClinicalNote.create(
                record_id=f"rec-{n:03d}",
                patient_id=f"pat-{n:03d}",
                created_at=clock.now(),
                author="dr-demo",
                specialty="cardiology",
                text=f"rebalance demo note {n}: sinus rhythm",
            ),
            author_id="dr-demo",
        )
        clock.advance(1.0)

    report = cluster.rebalance(target_shards=args.target, actor_id="ops")
    print(
        f"rebalanced {len(report.from_shards)} -> {len(report.to_shards)} "
        f"shards (epoch {report.epoch}): moved {report.moved} of "
        f"{args.patients} patients"
    )
    if report.added:
        print(f"  added:   {', '.join(report.added)}")
    if report.removed:
        print(f"  removed: {', '.join(report.removed)}")
    failures = 0
    for proof in report.proofs:
        try:
            cluster.verify_move_proof(proof)
        except Exception as exc:  # surface, then count: the gate is the exit code
            failures += 1
            print(f"  proof FAILED {proof.patient_id}: {exc}")
    print(
        f"  proofs:  {report.moved - failures}/{report.moved} re-verified "
        f"({failures} failures)"
    )
    for proof in report.proofs[: args.show]:
        print(
            f"    {proof.patient_id}: {proof.source_shard} -> "
            f"{proof.destination_shard}, {proof.object_count} extents, "
            f"epoch {proof.epoch}"
        )
    integrity = cluster.verify_integrity()
    audit = cluster.verify_audit_trail()
    print("integrity:", integrity.summary())
    print("audit:    ", audit.summary())
    ok = integrity.ok and audit.ok and failures == 0
    return 0 if ok else 1


def _verify(args) -> int:
    from repro.verify import (
        render_conformance,
        run_conformance,
        run_crash_sweep,
        run_detection_equivalence,
    )

    status = 0

    if args.incremental or args.deep:
        # A live verification pass on a demo engine showing the two
        # modes side by side; --deep forces the full rescan through the
        # incremental entry point (the escape hatch operators use when
        # they stop trusting the watermark).
        status = max(status, _verify_modes(deep=args.deep))
        print()

    if not args.skip_sweep:
        limit = args.limit if args.limit and args.limit > 0 else None
        scope = f"{limit} sampled crash points" if limit else "every write boundary"
        print(f"crash-consistency sweep ({scope}, clean + torn variants)...")
        report = run_crash_sweep(limit=limit)
        print(report.summary())
        if not report.ok:
            status = 1
        print()

    if not args.skip_conformance:
        print("differential conformance across all six models...")
        reports = run_conformance()
        print(render_conformance(reports))
        if any(not report.conformant for report in reports.values()):
            status = 1
        print()

    if not args.skip_equivalence:
        print("detection equivalence (incremental vs full verification)...")
        equivalence = run_detection_equivalence()
        print(equivalence.summary())
        if not equivalence.ok:
            status = 1

    if args.shards:
        from repro.verify import run_cluster_detection_equivalence

        print()
        print(f"cluster detection equivalence ({args.shards} shards, "
              f"tamper re-run per shard)...")
        cluster_eq = run_cluster_detection_equivalence(shards=args.shards)
        print(cluster_eq.summary())
        if not cluster_eq.ok:
            status = 1

    print()
    print("verify:", "PASS" if status == 0 else "FAIL")
    return status


def _verify_modes(deep: bool) -> int:
    from repro import CuratorConfig, CuratorStore
    from repro.records import ClinicalNote
    from repro.util import SimulatedClock
    from repro.util.metrics import METRICS

    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(
        CuratorConfig(master_key=secrets.token_bytes(32), clock=clock)
    )
    for n in range(24):
        store.store(
            ClinicalNote.create(
                record_id=f"rec-{n}",
                patient_id=f"pat-{n % 6}",
                created_at=clock.now(),
                author="dr-verify",
                specialty="cardiology",
                text=f"verification demo note {n}",
            ),
            author_id="dr-verify",
        )
    METRICS.reset()
    full = store.audit_log.verify_chain()  # seals the watermark
    for n in range(4):
        store.read(f"rec-{n}", actor_id="dr-verify")
    result = store.audit_log.verify_chain(incremental=True, deep=deep)
    label = "deep (forced full rescan)" if deep else "incremental"
    print(
        f"audit verification [{label}]: mode={result.mode} "
        f"ok={result.ok} events_checked={result.events_checked} "
        f"spot_checked={result.spot_checked} escalated={result.escalated}"
    )
    print(
        f"  full pass: {full.events_checked} events; timers: "
        f"full={METRICS.ms('audit_verify_full_ns'):.2f}ms "
        f"incremental={METRICS.ms('audit_verify_incremental_ns'):.2f}ms"
    )
    integrity = store.verify_integrity(incremental=not deep)
    print(f"  integrity: {integrity.summary()}")
    return 0 if (full.ok and result.ok and integrity.ok) else 1


def _policy_lint(_args) -> int:
    from repro.policy.lint import lint_default_rulesets

    findings = lint_default_rulesets()
    for finding in findings:
        print(finding)
    errors = [f for f in findings if f.severity == "error"]
    print(
        f"policy lint: {len(findings)} finding(s), {len(errors)} error(s) "
        "across default/session/disposition/break-glass rulesets"
    )
    return 1 if errors else 0


def _policy_explain(args) -> int:
    from repro.access.principals import User
    from repro.access.rbac import Purpose, Role
    from repro.policy import PolicyContext, PolicyEngine, PolicyEnv
    from repro.policy.compiler import compile_default_ruleset, default_purpose_for

    try:
        roles = [Role(value) for value in args.roles.split(",") if value]
    except ValueError as exc:
        print(f"unknown role: {exc}", file=sys.stderr)
        return 2
    if not roles:
        print("at least one role is required", file=sys.stderr)
        return 2
    treating = [p for p in args.treating.split(",") if p]
    actor = User.make(args.actor, args.actor, roles, treating=treating)
    if args.purpose is not None:
        try:
            purpose = Purpose(args.purpose)
        except ValueError:
            print(f"unknown purpose: {args.purpose!r}", file=sys.stderr)
            return 2
    else:
        purpose = default_purpose_for(actor)
    engine = PolicyEngine(compile_default_ruleset(), env=PolicyEnv())
    context = PolicyContext(
        purpose=purpose,
        patient_id=args.patient or None,
        own_record=args.own_record,
    )
    decision = engine.decide(actor, args.action, args.resource, context)
    print(
        f"request: actor={args.actor} roles={sorted(r.value for r in roles)} "
        f"action={args.action} resource={args.resource!r} "
        f"purpose={purpose.value}"
    )
    print(decision.explain())
    return 0 if decision.allowed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Curator: compliant secure storage for healthcare records",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="version and subsystem inventory").set_defaults(
        func=_cmd_info
    )
    sub.add_parser(
        "demo", help="wire-API walkthrough: serve in-process, login, store, audit"
    ).set_defaults(func=lambda _a: _quickstart())
    serve = sub.add_parser("serve", help="run the v1 wire API over a cluster")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8471, help="bind port")
    serve.add_argument("--shards", type=int, default=4, help="shard count")
    serve.add_argument(
        "--workers", type=int, default=0, help="process-backed shard workers (0 = in-process)"
    )
    serve.add_argument(
        "--vnodes", type=int, default=0, help="virtual nodes per shard (0 = modulo routing)"
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64, help="max in-flight requests before 503"
    )
    serve.add_argument(
        "--rate-capacity", type=float, default=50.0, help="per-actor burst budget"
    )
    serve.add_argument(
        "--rate-refill", type=float, default=25.0, help="per-actor sustained requests/s"
    )
    serve.add_argument(
        "--seed-demo",
        action="store_true",
        help="enroll demo principals and print their login secrets",
    )
    serve.set_defaults(func=_serve)
    client = sub.add_parser("client", help="call a running service over the wire")
    client.add_argument("--host", default="127.0.0.1", help="service address")
    client.add_argument("--port", type=int, default=8471, help="service port")
    client_sub = client.add_subparsers(dest="client_command", required=True)
    c_login = client_sub.add_parser("login", help="challenge-response login")
    c_login.add_argument("--user", required=True, help="enrolled user id")
    c_login.add_argument("--secret", required=True, help="enrollment secret (hex)")
    client_sub.add_parser("healthz", help="liveness, shards, queue")
    c_store = client_sub.add_parser("store", help="store a clinical note")
    c_store.add_argument("--token", required=True, help="bearer token from login")
    c_store.add_argument("--record-id", required=True)
    c_store.add_argument("--patient-id", required=True)
    c_store.add_argument("--created-at", type=float, default=1.17e9)
    c_store.add_argument("--author", default="", help="display author (informational)")
    c_store.add_argument("--specialty", default="general")
    c_store.add_argument("--text", required=True, help="note text")
    c_read = client_sub.add_parser("read", help="read one record")
    c_read.add_argument("--token", required=True)
    c_read.add_argument("--record-id", required=True)
    c_read.add_argument("--purpose", default="", help="purpose-of-use value")
    c_audit = client_sub.add_parser("audit-query", help="query the audit stream")
    c_audit.add_argument("--token", required=True)
    c_audit.add_argument("--actor", default="", help="filter by actor id")
    c_audit.add_argument("--action", default="", help="filter by action")
    c_audit.add_argument("--limit", type=int, default=20)
    c_verify = client_sub.add_parser(
        "verify", help="run integrity + audit verification server-side"
    )
    c_verify.add_argument("--token", required=True)
    c_verify.add_argument("--incremental", action="store_true")
    c_bg = client_sub.add_parser("break-glass", help="emergency access override")
    c_bg.add_argument("--token", required=True)
    c_bg.add_argument("--patient-id", required=True)
    c_bg.add_argument("--justification", required=True)
    client.set_defaults(func=_client)
    sub.add_parser("matrix", help="run the E1 requirements matrix (slow)").set_defaults(
        func=lambda _a: _matrix()
    )
    sub.add_parser(
        "thirty-years", help="simulate 30-year OSHA retention"
    ).set_defaults(func=_thirty_years)
    sub.add_parser(
        "audit-ops", help="operational compliance findings on a drifted deployment"
    ).set_defaults(func=_audit_ops)
    sub.add_parser(
        "metrics", help="performance counters for looped vs batched ingest"
    ).set_defaults(func=_metrics)
    verify = sub.add_parser(
        "verify", help="crash-consistency sweep + differential conformance"
    )
    verify.add_argument(
        "--limit",
        type=int,
        default=0,
        help="sweep only N evenly-spaced crash points (0 = every boundary)",
    )
    verify.add_argument(
        "--skip-sweep", action="store_true", help="skip the crash sweep"
    )
    verify.add_argument(
        "--skip-conformance", action="store_true", help="skip conformance"
    )
    verify.add_argument(
        "--skip-equivalence",
        action="store_true",
        help="skip the incremental-vs-full detection-equivalence oracle",
    )
    verify.add_argument(
        "--incremental",
        action="store_true",
        help="also demo the watermarked incremental verification fast path",
    )
    verify.add_argument(
        "--deep",
        action="store_true",
        help="force a full rescan through the incremental entry point",
    )
    verify.add_argument(
        "--shards",
        type=int,
        default=0,
        help="also run the cross-shard detection-equivalence oracle "
        "against an N-shard cluster (0 = skip)",
    )
    verify.set_defaults(func=_verify)
    cluster_demo = sub.add_parser(
        "cluster-demo",
        help="route a workload across a sharded cluster and verify it",
    )
    cluster_demo.add_argument(
        "--shards", type=int, default=4, help="shard count (default 4)"
    )
    cluster_demo.set_defaults(func=_cluster_demo)
    cluster = sub.add_parser(
        "cluster", help="operate on a sharded cluster"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    rebalance = cluster_sub.add_parser(
        "rebalance",
        help="grow/shrink a live seeded cluster and re-verify every "
        "move's MigrationProof",
    )
    rebalance.add_argument(
        "--shards", type=int, default=4, help="starting shard count (default 4)"
    )
    rebalance.add_argument(
        "--target", type=int, default=8, help="target shard count (default 8)"
    )
    rebalance.add_argument(
        "--patients",
        type=int,
        default=24,
        help="seeded patients, one record each (default 24)",
    )
    rebalance.add_argument(
        "--vnodes",
        type=int,
        default=32,
        help="virtual nodes per shard (default 32)",
    )
    rebalance.add_argument(
        "--show",
        type=int,
        default=4,
        help="print the first N move proofs (default 4)",
    )
    rebalance.set_defaults(func=_cluster_rebalance)
    policy = sub.add_parser(
        "policy", help="inspect the declarative policy rulesets"
    )
    policy_sub = policy.add_subparsers(dest="policy_command", required=True)
    policy_sub.add_parser(
        "lint",
        help="static checks over the default rulesets (exit 1 on errors)",
    ).set_defaults(func=_policy_lint)
    explain = policy_sub.add_parser(
        "explain",
        help="trace one access decision through the default ruleset",
    )
    explain.add_argument("actor", help="actor id")
    explain.add_argument("action", help="permission value, e.g. read_record")
    explain.add_argument(
        "resource", nargs="?", default="", help="resource id (optional)"
    )
    explain.add_argument(
        "--roles",
        default="physician",
        help="comma-separated role values (default: physician)",
    )
    explain.add_argument(
        "--purpose",
        default=None,
        help="purpose-of-use value (default: the actor's role default)",
    )
    explain.add_argument(
        "--patient", default="", help="patient id the resource belongs to"
    )
    explain.add_argument(
        "--own-record",
        action="store_true",
        help="the resource is the actor's own record",
    )
    explain.add_argument(
        "--treating",
        default="",
        help="comma-separated patient ids the actor treats",
    )
    explain.set_defaults(func=_policy_explain)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
