"""Deterministic crash-point injection over block devices.

A :class:`CrashController` interposes on every media commit of an
engine's devices (checked *and* raw — shred passes and frame reseals
must be killable too) through the write-hook seam in
:class:`~repro.storage.block.BlockDevice`.  Armed at write K, it lets
writes 1..K-1 through, then kills write K:

* **clean** — the K-th write vanishes whole (power died before the
  controller cached anything);
* **torn** — the first half of the K-th write reaches the medium, the
  rest does not (power died mid-transfer).

Either way the controller raises :class:`~repro.errors.CrashError` and
the process model is dead: every later write on any attached device
refuses with the same error, so a workload driver that swallows the
first crash cannot accidentally keep mutating "post-mortem" state.

What survives a crash is the media image, not the Python objects —
:func:`surviving_image` clones a device's raw bytes into a fresh
:class:`~repro.storage.block.MemoryDevice` whose allocator is parked at
capacity (the true extent died with the process; recovery scans find
the valid tail themselves).
"""

from __future__ import annotations

from repro.errors import CrashError
from repro.storage.block import BlockDevice, MemoryDevice


class CrashController:
    """Shared write counter + kill switch across one engine's devices."""

    def __init__(self) -> None:
        self._writes = 0
        self._crash_at: int | None = None
        self._torn = False
        self.crashed = False
        self._devices: list[BlockDevice] = []

    # -- wiring ----------------------------------------------------------

    def attach(self, devices: list[BlockDevice]) -> None:
        """Install the hook on every device; the counter is shared, so
        K indexes the engine's global write sequence, not one device's."""
        for device in devices:
            device.install_write_hook(self._hook)
            self._devices.append(device)

    def detach(self) -> None:
        for device in self._devices:
            device.clear_write_hook()
        self._devices = []

    def arm(self, crash_at: int, torn: bool = False) -> None:
        """Kill the ``crash_at``-th write from now (1-based)."""
        if crash_at < 1:
            raise ValueError("crash_at is 1-based: the first write is 1")
        self._crash_at = crash_at
        self._torn = torn

    @property
    def writes_observed(self) -> int:
        """Writes that committed (a dry run's total = the sweep range)."""
        return self._writes

    # -- the hook --------------------------------------------------------

    def _hook(self, device: BlockDevice, offset: int, data: bytes) -> bytes:
        if self.crashed:
            raise CrashError(
                f"write to {device.device_id} after the crash: "
                "the process model is dead"
            )
        if self._crash_at is not None and self._writes + 1 >= self._crash_at:
            self.crashed = True
            partial = bytes(data[: len(data) // 2]) if self._torn else None
            kind = "torn" if partial else "clean"
            raise CrashError(
                f"simulated {kind} crash at write {self._crash_at} "
                f"({device.device_id}, offset {offset}, {len(data)} bytes)",
                partial=partial,
            )
        self._writes += 1
        return data


def surviving_image(device: BlockDevice) -> MemoryDevice:
    """What a restart finds on the medium: the raw bytes, and nothing
    else.  Allocator position, hooks, stats, write-protect latches were
    process state — the clone's allocator is parked at capacity so
    recovery scans see the whole medium and locate the valid tail."""
    image = MemoryDevice(device.device_id, device.capacity)
    image.raw_write(0, device.raw_read(0, device.capacity))
    image.reset_allocation(image.capacity)
    return image
