"""The verification substrate: crash-consistency sweeps and differential
conformance for every storage model.

Two harnesses live here, both consumed by ``python -m repro verify``
and by the tier-1 tests:

* :mod:`repro.verify.crashpoint` / :mod:`repro.verify.oracle` — arm a
  deterministic crash at the K-th device write of a seeded workload
  (clean or torn), recover the engine from the surviving device images,
  and assert the durability contract at every write boundary;
* :mod:`repro.verify.reference` / :mod:`repro.verify.conformance` —
  replay one scripted workload through the curator and all five
  baselines, diffing each model's observable behaviour against a pure-
  python reference parameterized by the model's declared features;
* :mod:`repro.verify.equivalence` — plant raw-device tampering and
  assert the incremental verification fast path (watermarks, dirty
  sets, spot-checks, escalation) loses no detection power against a
  full rescan.
"""

from repro.verify.conformance import (
    ConformanceReport,
    Divergence,
    render_conformance,
    run_conformance,
)
from repro.verify.crashpoint import CrashController, surviving_image
from repro.verify.equivalence import (
    EquivalenceCase,
    EquivalenceReport,
    run_cluster_detection_equivalence,
    run_detection_equivalence,
    run_rebalance_detection_equivalence,
)
from repro.verify.oracle import CrashSweepReport, Violation, run_crash_sweep
from repro.verify.reference import ReferenceModel
from repro.verify.workload import WorkloadRun, run_seeded_workload

__all__ = [
    "ConformanceReport",
    "CrashController",
    "CrashSweepReport",
    "Divergence",
    "EquivalenceCase",
    "EquivalenceReport",
    "ReferenceModel",
    "Violation",
    "WorkloadRun",
    "render_conformance",
    "run_cluster_detection_equivalence",
    "run_conformance",
    "run_crash_sweep",
    "run_detection_equivalence",
    "run_rebalance_detection_equivalence",
    "run_seeded_workload",
    "surviving_image",
]
