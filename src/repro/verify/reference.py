"""The pure-python reference model for differential conformance.

A few dictionaries and sets — no devices, no crypto, no journals —
that compute what each scripted operation *should* observably do.  The
reference is feature-aware: it is parameterized by the feature set the
model under test declares (plus two capability probes read off the
model's interface), because the conformance question is not "does every
model behave like the curator" but "does every model behave exactly as
its declared feature set implies".  A plain WORM store *refusing* a
correction is conformant; silently accepting one would be a divergence.

Outcome vocabulary (shared with the runner in
:mod:`repro.verify.conformance`):

====================  ====================================================
``ok``                the operation succeeded; detail carries the payload
``unsupported``       :class:`~repro.baselines.interface.UnsupportedOperation`
``denied``            :class:`~repro.errors.AccessDeniedError`
``retention-refused`` :class:`~repro.errors.RetentionError`
``not-found``         :class:`~repro.errors.RecordNotFoundError`
====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Observation:
    """One comparable behaviour sample: (operation, outcome, detail)."""

    op: str
    outcome: str
    detail: str = ""


class ReferenceModel:
    """Feature-parameterized oracle of observable storage behaviour."""

    def __init__(
        self,
        features: frozenset[str],
        *,
        has_version_history: bool,
        has_break_glass: bool,
    ) -> None:
        self._features = features
        self._has_history = has_version_history
        self._has_break_glass = has_break_glass
        self._versions: dict[str, list[str]] = {}  # record_id -> texts
        self._live: set[str] = set()
        self._expired = False  # set once the script advances past terms

    # -- state helpers ---------------------------------------------------

    def _text(self, record_id: str) -> str:
        return self._versions[record_id][-1]

    def _search_hits(self, term: str) -> list[str]:
        return sorted(
            record_id
            for record_id in self._live
            if term in self._text(record_id).split()
        )

    # -- the op vocabulary ----------------------------------------------

    def store(self, op: str, record_id: str, text: str) -> Observation:
        self._versions[record_id] = [text]
        self._live.add(record_id)
        return Observation(op, "ok")

    def store_many(self, op: str, items: list[tuple[str, str]]) -> Observation:
        for record_id, text in items:
            self._versions[record_id] = [text]
            self._live.add(record_id)
        return Observation(op, "ok", str(len(items)))

    def read(self, op: str, record_id: str) -> Observation:
        if record_id not in self._live:
            return Observation(op, "not-found")
        return Observation(op, "ok", self._text(record_id))

    def read_probe(self, op: str, record_id: str) -> Observation:
        """Read as an unauthorized actor the probe prepared."""
        if "access_control" in self._features:
            return Observation(op, "denied")
        return self.read(op, record_id)

    def correct(self, op: str, record_id: str, text: str) -> Observation:
        if "correct" not in self._features:
            return Observation(op, "unsupported")
        if record_id not in self._live:
            return Observation(op, "not-found")
        self._versions[record_id].append(text)
        return Observation(op, "ok")

    def read_version(self, op: str, record_id: str, version: int) -> Observation:
        if not self._has_history:
            return Observation(op, "unsupported")
        return Observation(op, "ok", self._versions[record_id][version])

    def search(self, op: str, term: str) -> Observation:
        return Observation(op, "ok", ",".join(self._search_hits(term)))

    def advance_years(self, op: str) -> Observation:
        self._expired = True
        return Observation(op, "ok")

    def dispose(self, op: str, record_id: str) -> Observation:
        if record_id not in self._live:
            return Observation(op, "not-found")
        if "retention" in self._features and not self._expired:
            return Observation(op, "retention-refused")
        self._live.discard(record_id)
        return Observation(op, "ok")

    def break_glass_read(self, op: str, record_id: str) -> Observation:
        if not self._has_break_glass:
            return Observation(op, "unsupported")
        return Observation(op, "ok", f"denied-then:{self._text(record_id)}")

    def audit_check(self, op: str) -> Observation:
        if "audit" in self._features:
            return Observation(op, "ok", "verify=True,events=some")
        return Observation(op, "ok", "verify=None,events=none")

    def integrity_check(self, op: str) -> Observation:
        return Observation(op, "ok", "")
