"""Detection-equivalence oracle for incremental verification.

The incremental fast path (watermarked audit verification, dirty-set
integrity checks) is only admissible if it gives up **no detection
power**: every tampering a raw-device insider plants must still be
caught — either directly by an incremental pass, or by the escalation
machinery (missing/forged watermarks force a full rescan; the forced-
rescan cadence bounds how long probabilistic spot-checking may miss;
the rotating clean sample bounds how long clean-object rot may hide).

This oracle states that as an executable property.  For each tamper
case it:

1. builds a small engine, verifies it fully (sealing a watermark and
   clearing the dirty sets — the adversary strikes *after* the system
   believes itself clean, the hardest case for an incremental checker);
2. plants the tampering on the raw devices;
3. runs the **bounded incremental policy**: up to ``full_rescan_every``
   incremental passes (modelling successive operational health checks)
   followed by one full pass (the forced rescan the cadence guarantees);
4. runs an unconditional full verification at the end.

A case **violates** detection equivalence when the full pass detects
the tampering but the bounded policy never did — or, for the
no-tamper control, when the incremental path reports a problem that
does not exist (false positive).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.checkpoint import CheckpointStore
from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.crypto.kdf import derive_key
from repro.storage.journal import Journal
from repro.util.clock import SimulatedClock
from repro.util.encoding import canonical_bytes, canonical_loads
from repro.records.model import ClinicalNote

_FULL_RESCAN_EVERY = 4
_SPOT_CHECKS = 6
_CLEAN_SAMPLE = 4


@dataclass(frozen=True)
class EquivalenceCase:
    """Outcome of one tamper scenario."""

    name: str
    tampered: bool  # the tamper actually landed on a device
    incremental_detects: bool  # the bounded policy caught it
    full_detects: bool  # an unconditional full pass catches it
    caught_by: str  # "incremental" | "escalation" | "none" | "n/a"
    attempts: int  # passes the bounded policy ran before detection

    @property
    def violation(self) -> bool:
        if not self.tampered:
            # control case: incremental must not cry wolf
            return self.incremental_detects or self.full_detects
        return self.full_detects and not self.incremental_detects


@dataclass
class EquivalenceReport:
    """Outcome of the whole suite."""

    cases: tuple[EquivalenceCase, ...]

    @property
    def violations(self) -> list[EquivalenceCase]:
        return [case for case in self.cases if case.violation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"detection equivalence: {len(self.cases)} cases, "
            f"{len(self.violations)} violations"
        ]
        for case in self.cases:
            status = "VIOLATION" if case.violation else "ok"
            lines.append(
                f"  [{status}] {case.name}: caught_by={case.caught_by} "
                f"attempts={case.attempts} full_detects={case.full_detects}"
            )
        return "\n".join(lines)


def _build(master_key: bytes) -> CuratorStore:
    clock = SimulatedClock(start=1.17e9)
    config = CuratorConfig(
        master_key=master_key,
        clock=clock,
        device_capacity=1 << 20,
        audit_spot_checks=_SPOT_CHECKS,
        audit_full_rescan_every=_FULL_RESCAN_EVERY,
        integrity_clean_sample=_CLEAN_SAMPLE,
    )
    store = CuratorStore(config)
    for n in range(6):
        store.store(
            ClinicalNote.create(
                record_id=f"rec-{n}",
                patient_id=f"pat-{n}",
                created_at=clock.now(),
                author="dr-eq",
                specialty="cardiology",
                text=f"equivalence seed note {n} with distinctive text",
            ),
            author_id="dr-eq",
        )
    for n in range(3):
        store.read(f"rec-{n}", actor_id="dr-eq")
    # The system believes itself clean: watermark sealed, dirty sets
    # empty.  Tampering lands on top of this state.
    assert store.verify_audit_trail() is True
    assert store.verify_integrity() == []
    return store


def _append_delta(store: CuratorStore, reads: int = 2) -> None:
    """Grow the log past the watermark (the incremental delta)."""
    for n in range(reads):
        store.read(f"rec-{n % 6}", actor_id="dr-eq")


def _checkpoint_key(store: CuratorStore) -> bytes:
    return derive_key(store._config.master_key, "curator/audit-checkpoint")  # noqa: SLF001


# -- tamper behaviours (each returns True when the tamper landed) --------


def _tamper_audit_frame(store: CuratorStore, index: int, mutate) -> bool:
    device = store.audit_log.device
    for position, (offset, payload) in enumerate(
        Journal.iter_device_frames(device)
    ):
        if position != index:
            continue
        forged = mutate(payload)
        if forged is None or forged == payload:
            return False
        Journal.forge_frame(device, offset, forged)
        return True
    return False


def _rewrite_actor(payload: bytes) -> bytes | None:
    if b"dr-eq" not in payload:
        return None
    return payload.replace(b"dr-eq", b"xr-eq", 1)


def _flip_chain_digest(payload: bytes) -> bytes | None:
    entry = canonical_loads(payload)
    chain = entry["chain"]
    entry["chain"] = chain[:-1] + bytes([chain[-1] ^ 0x01])
    return canonical_bytes(entry)


def _tamper_prefix(store: CuratorStore) -> bool:
    watermark = store.audit_log.watermark
    assert watermark is not None and watermark.size > 3
    ok = _tamper_audit_frame(store, 2, _rewrite_actor)
    _append_delta(store)
    return ok


def _tamper_suffix(store: CuratorStore) -> bool:
    watermark = store.audit_log.watermark
    assert watermark is not None
    _append_delta(store)
    return _tamper_audit_frame(store, watermark.size, _rewrite_actor)


def _tamper_chain_field(store: CuratorStore) -> bool:
    ok = _tamper_audit_frame(store, 1, _flip_chain_digest)
    _append_delta(store)
    return ok


def _truncate_tail(store: CuratorStore) -> bool:
    _append_delta(store)
    device = store.audit_log.device
    last_offset = None
    for offset, _payload in Journal.iter_device_frames(device):
        last_offset = offset
    if last_offset is None:
        return False
    device.raw_write(last_offset, b"\x00" * 8)  # smash the frame header
    return True


def _destroy_watermarks(store: CuratorStore) -> bool:
    """Prefix tamper + wipe every persisted seal + process restart.

    The adversary cannot forge a seal (MAC) but can destroy them all.
    The in-memory watermark dies with the process; on restart the log
    adopts whatever the wiped checkpoint journal still holds — nothing —
    and the first incremental request must escalate to a full rescan.
    """
    ok = _tamper_audit_frame(store, 2, _rewrite_actor)
    device = store.checkpoints.device
    device.raw_write(0, b"\x00" * device.capacity)
    store.audit_log.adopt_checkpoints(
        CheckpointStore.recover(device, key=_checkpoint_key(store))
    )
    return ok


def _forge_watermark(store: CuratorStore) -> bool:
    """Prefix tamper + a forged seal claiming the tampered state clean.

    The forged frame carries no valid MAC (the adversary lacks the
    derived key), so on restart ``latest()`` must skip it and fall back
    to the genuine older seal — the tamper stays catchable by the
    spot-check/cadence machinery.  If the forgery were trusted, the
    suffix replay would start past the tampering and detection could be
    laundered away entirely.
    """
    ok = _tamper_audit_frame(store, 2, _rewrite_actor)
    log = store.audit_log
    forged = canonical_bytes(
        {
            "size": len(log),
            "head": log.head_digest,
            "merkle_root": log.merkle_root(),
            "verified_at": 0.0,
            "incremental_runs": 0,
        }
    )
    device = store.checkpoints.device
    journal = Journal.recover(device)
    journal.append(b"\x11" * 32 + forged)  # tag the adversary cannot compute
    store.audit_log.adopt_checkpoints(
        CheckpointStore.recover(device, key=_checkpoint_key(store))
    )
    return ok


def _rot_worm_object(store: CuratorStore, object_id: str) -> bool:
    device = store.worm.device
    marker = object_id.encode("utf-8")
    for offset, payload in Journal.iter_device_frames(device):
        if marker not in payload:
            continue
        forged = payload[:-1] + bytes([payload[-1] ^ 0x5A])
        Journal.forge_frame(device, offset, forged)
        return True
    return False


def _rot_dirty_object(store: CuratorStore) -> bool:
    store.store(
        ClinicalNote.create(
            record_id="rec-dirty",
            patient_id="pat-dirty",
            created_at=store._clock.now(),  # noqa: SLF001 — test substrate
            author="dr-eq",
            specialty="cardiology",
            text="written after the last full sweep",
        ),
        author_id="dr-eq",
    )
    return _rot_worm_object(store, "rec-dirty@v0")


def _rot_clean_object(store: CuratorStore) -> bool:
    return _rot_worm_object(store, "rec-0@v0")


# -- the bounded policy ---------------------------------------------------


def _run_policy(incremental_check, full_check) -> tuple[bool, str, int]:
    """Up to ``full_rescan_every`` incremental passes, then one full.

    Returns ``(detected, caught_by, attempts)``.  ``caught_by`` is
    ``"incremental"`` when a pass before the final forced full caught it
    (including internal escalations the cadence itself triggered),
    ``"escalation"`` when only the terminal full rescan did.
    """
    for attempt in range(1, _FULL_RESCAN_EVERY + 1):
        if incremental_check():
            return True, "incremental", attempt
    if full_check():
        return True, "escalation", _FULL_RESCAN_EVERY + 1
    return False, "none", _FULL_RESCAN_EVERY + 1


def _audit_case(name: str, tamper) -> EquivalenceCase:
    store = _build(bytes(range(32)))
    tampered = tamper(store)
    detected, caught_by, attempts = _run_policy(
        lambda: store.verify_audit_trail(incremental=True) is False,
        lambda: store.verify_audit_trail() is False,
    )
    full_detects = store.verify_audit_trail() is False
    return EquivalenceCase(
        name=name,
        tampered=tampered,
        incremental_detects=detected,
        full_detects=full_detects or detected,
        caught_by=caught_by if tampered else "n/a",
        attempts=attempts,
    )


def _integrity_case(name: str, tamper) -> EquivalenceCase:
    store = _build(bytes(range(32)))
    tampered = tamper(store)
    detected, caught_by, attempts = _run_policy(
        lambda: bool(store.verify_integrity(incremental=True)),
        lambda: bool(store.verify_integrity()),
    )
    full_detects = bool(store.verify_integrity())
    return EquivalenceCase(
        name=name,
        tampered=tampered,
        incremental_detects=detected,
        full_detects=full_detects or detected,
        caught_by=caught_by if tampered else "n/a",
        attempts=attempts,
    )


def _control_case() -> EquivalenceCase:
    store = _build(bytes(range(32)))
    _append_delta(store)
    audit_fp = any(
        store.verify_audit_trail(incremental=True) is False
        for _ in range(_FULL_RESCAN_EVERY)
    )
    integrity_fp = any(
        bool(store.verify_integrity(incremental=True))
        for _ in range(_FULL_RESCAN_EVERY)
    )
    full_fp = store.verify_audit_trail() is False or bool(store.verify_integrity())
    return EquivalenceCase(
        name="no_tamper_control",
        tampered=False,
        incremental_detects=audit_fp or integrity_fp,
        full_detects=full_fp,
        caught_by="n/a",
        attempts=_FULL_RESCAN_EVERY,
    )


def run_detection_equivalence() -> EquivalenceReport:
    """Run every tamper case; see the module docstring for the policy."""
    cases = [
        _control_case(),
        _audit_case("audit_prefix_rewrite", _tamper_prefix),
        _audit_case("audit_suffix_rewrite", _tamper_suffix),
        _audit_case("audit_chain_field_edit", _tamper_chain_field),
        _audit_case("audit_truncation", _truncate_tail),
        _audit_case("watermark_destruction", _destroy_watermarks),
        _audit_case("watermark_forgery", _forge_watermark),
        _integrity_case("worm_dirty_object_rot", _rot_dirty_object),
        _integrity_case("worm_clean_object_rot", _rot_clean_object),
    ]
    return EquivalenceReport(cases=tuple(cases))
