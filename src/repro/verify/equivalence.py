"""Detection-equivalence oracle for incremental verification.

The incremental fast path (watermarked audit verification, dirty-set
integrity checks) is only admissible if it gives up **no detection
power**: every tampering a raw-device insider plants must still be
caught — either directly by an incremental pass, or by the escalation
machinery (missing/forged watermarks force a full rescan; the forced-
rescan cadence bounds how long probabilistic spot-checking may miss;
the rotating clean sample bounds how long clean-object rot may hide).

This oracle states that as an executable property.  For each tamper
case it:

1. builds a small deployment, verifies it fully (sealing a watermark
   and clearing the dirty sets — the adversary strikes *after* the
   system believes itself clean, the hardest case for an incremental
   checker);
2. plants the tampering on the raw devices;
3. runs the **bounded incremental policy**: up to ``full_rescan_every``
   incremental passes (modelling successive operational health checks)
   followed by one full pass (the forced rescan the cadence guarantees);
4. runs an unconditional full verification at the end.

A case **violates** detection equivalence when the full pass detects
the tampering but the bounded policy never did — or, for the
no-tamper control, when the incremental path reports a problem that
does not exist (false positive).

The oracle runs over two *substrates*: a single engine
(:func:`run_detection_equivalence`) and a sharded
:class:`~repro.cluster.router.CuratorCluster`
(:func:`run_cluster_detection_equivalence`), where every tamper case
is re-run once per shard — the adversary attacks one shard's raw
devices and detection must surface through the cluster's merged,
fan-out verification.  Sharding must not dilute detection power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.audit.checkpoint import CheckpointStore
from repro.cluster.ring import HashRing
from repro.cluster.router import CuratorCluster
from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.crypto.kdf import derive_key
from repro.crypto.rsa import generate_keypair
from repro.errors import CrashError, IntegrityError, MigrationError
from repro.storage.journal import HEADER_SIZE, Journal
from repro.util.clock import SimulatedClock
from repro.util.encoding import canonical_bytes, canonical_loads
from repro.records.model import ClinicalNote

_FULL_RESCAN_EVERY = 4
_SPOT_CHECKS = 6
_CLEAN_SAMPLE = 4

# Shared across cluster builds so each tamper case does not pay an RSA
# keygen (the keypair models one HSM-held site identity anyway).
_CLUSTER_KEYPAIR = None


@dataclass(frozen=True)
class EquivalenceCase:
    """Outcome of one tamper scenario."""

    name: str
    tampered: bool  # the tamper actually landed on a device
    incremental_detects: bool  # the bounded policy caught it
    full_detects: bool  # an unconditional full pass catches it
    caught_by: str  # "incremental" | "escalation" | "none" | "n/a"
    attempts: int  # passes the bounded policy ran before detection
    expected_flag: str = ""  # record the full pass must implicate, alone
    flagged: tuple[str, ...] = ()  # records the full pass implicated

    @property
    def violation(self) -> bool:
        if not self.tampered:
            # control case: incremental must not cry wolf
            return self.incremental_detects or self.full_detects
        if self.full_detects and not self.incremental_detects:
            return True
        if self.expected_flag and self.flagged != (self.expected_flag,):
            # Detection that cannot localize the damage is a weaker
            # guarantee: a batched write must not smear blame across its
            # siblings, nor hide the victim in a pile of false flags.
            return True
        return False


@dataclass
class EquivalenceReport:
    """Outcome of the whole suite."""

    cases: tuple[EquivalenceCase, ...]

    @property
    def violations(self) -> list[EquivalenceCase]:
        return [case for case in self.cases if case.violation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"detection equivalence: {len(self.cases)} cases, "
            f"{len(self.violations)} violations"
        ]
        for case in self.cases:
            status = "VIOLATION" if case.violation else "ok"
            lines.append(
                f"  [{status}] {case.name}: caught_by={case.caught_by} "
                f"attempts={case.attempts} full_detects={case.full_detects}"
            )
        return "\n".join(lines)


@dataclass
class _Substrate:
    """One deployment under attack.

    ``surface`` is the API the operator verifies and works through (an
    engine, or the whole cluster); ``target`` is the engine whose raw
    devices the adversary reaches (for a cluster, one shard); the
    seeded ``records`` and ``dirty_patient`` are guaranteed resident on
    the target, so every tamper lands where the adversary can write.
    """

    surface: object
    target: CuratorStore
    records: tuple[str, ...]
    dirty_patient: str
    clock: SimulatedClock


def _seed_note(record_id: str, patient_id: str, clock: SimulatedClock, n: int):
    return ClinicalNote.create(
        record_id=record_id,
        patient_id=patient_id,
        created_at=clock.now(),
        author="dr-eq",
        specialty="cardiology",
        text=f"equivalence seed note {n} with distinctive text",
    )


def _build_single() -> _Substrate:
    clock = SimulatedClock(start=1.17e9)
    config = CuratorConfig(
        master_key=bytes(range(32)),
        clock=clock,
        device_capacity=1 << 20,
        audit_spot_checks=_SPOT_CHECKS,
        audit_full_rescan_every=_FULL_RESCAN_EVERY,
        integrity_clean_sample=_CLEAN_SAMPLE,
    )
    store = CuratorStore(config)
    for n in range(6):
        store.store(_seed_note(f"rec-{n}", f"pat-{n}", clock, n), author_id="dr-eq")
    for n in range(3):
        store.read(f"rec-{n}", actor_id="dr-eq")
    # The system believes itself clean: watermark sealed, dirty sets
    # empty.  Tampering lands on top of this state.
    assert store.verify_audit_trail().ok
    assert store.verify_integrity().ok
    return _Substrate(
        surface=store,
        target=store,
        records=tuple(f"rec-{n}" for n in range(6)),
        dirty_patient="pat-dirty",
        clock=clock,
    )


def _patients_on_shard(ring: HashRing, shard: int, count: int, tag: str) -> list[str]:
    """Deterministic patient ids the ring places on *shard*."""
    found: list[str] = []
    candidate = 0
    while len(found) < count:
        patient_id = f"pat-{tag}-{candidate}"
        if ring.shard_for(patient_id) == shard:
            found.append(patient_id)
        candidate += 1
    return found


def _build_cluster(shards: int, target_shard: int) -> _Substrate:
    global _CLUSTER_KEYPAIR
    if _CLUSTER_KEYPAIR is None:
        _CLUSTER_KEYPAIR = generate_keypair(768)
    clock = SimulatedClock(start=1.17e9)
    config = CuratorConfig(
        master_key=bytes(range(32)),
        clock=clock,
        device_capacity=1 << 20,
        audit_spot_checks=_SPOT_CHECKS,
        audit_full_rescan_every=_FULL_RESCAN_EVERY,
        integrity_clean_sample=_CLEAN_SAMPLE,
        signing_keypair=_CLUSTER_KEYPAIR,
    )
    cluster = CuratorCluster(config, shards=shards)
    target_records: list[str] = []
    n = 0
    # three resident records per shard, stored and read through the
    # cluster so every shard's audit log grows past the prefix-tamper
    # minimum before its watermark seals
    for shard in range(shards):
        for patient_id in _patients_on_shard(cluster.ring, shard, 3, f"s{shard}"):
            record_id = f"rec-{shard}-{n}"
            cluster.store(_seed_note(record_id, patient_id, clock, n), "dr-eq")
            cluster.read(record_id, actor_id="dr-eq")
            if shard == target_shard:
                target_records.append(record_id)
            n += 1
    assert cluster.verify_audit_trail().ok
    assert cluster.verify_integrity().ok
    return _Substrate(
        surface=cluster,
        target=cluster.shards[target_shard],
        records=tuple(target_records),
        dirty_patient=_patients_on_shard(
            cluster.ring, target_shard, 1, "dirty"
        )[0],
        clock=clock,
    )


def _append_delta(sub: _Substrate, reads: int = 2) -> None:
    """Grow the target's log past the watermark (the incremental delta)."""
    for n in range(reads):
        sub.surface.read(sub.records[n % len(sub.records)], actor_id="dr-eq")


def _checkpoint_key(sub: _Substrate) -> bytes:
    return derive_key(
        sub.target._config.master_key, "curator/audit-checkpoint"  # noqa: SLF001
    )


# -- tamper behaviours (each returns True when the tamper landed) --------


def _tamper_audit_frame(sub: _Substrate, index: int, mutate) -> bool:
    device = sub.target.audit_log.device
    for position, (offset, payload) in enumerate(
        Journal.iter_device_frames(device)
    ):
        if position != index:
            continue
        forged = mutate(payload)
        if forged is None or forged == payload:
            return False
        Journal.forge_frame(device, offset, forged)
        return True
    return False


def _rewrite_actor(payload: bytes) -> bytes | None:
    if b"dr-eq" not in payload:
        return None
    return payload.replace(b"dr-eq", b"xr-eq", 1)


def _flip_chain_digest(payload: bytes) -> bytes | None:
    entry = canonical_loads(payload)
    chain = entry["chain"]
    entry["chain"] = chain[:-1] + bytes([chain[-1] ^ 0x01])
    return canonical_bytes(entry)


def _tamper_prefix(sub: _Substrate) -> bool:
    watermark = sub.target.audit_log.watermark
    assert watermark is not None and watermark.size > 3
    ok = _tamper_audit_frame(sub, 2, _rewrite_actor)
    _append_delta(sub)
    return ok


def _tamper_suffix(sub: _Substrate) -> bool:
    watermark = sub.target.audit_log.watermark
    assert watermark is not None
    _append_delta(sub)
    return _tamper_audit_frame(sub, watermark.size, _rewrite_actor)


def _tamper_chain_field(sub: _Substrate) -> bool:
    ok = _tamper_audit_frame(sub, 1, _flip_chain_digest)
    _append_delta(sub)
    return ok


def _truncate_tail(sub: _Substrate) -> bool:
    _append_delta(sub)
    device = sub.target.audit_log.device
    last_offset = None
    for offset, _payload in Journal.iter_device_frames(device):
        last_offset = offset
    if last_offset is None:
        return False
    device.raw_write(last_offset, b"\x00" * 8)  # smash the frame header
    return True


def _destroy_watermarks(sub: _Substrate) -> bool:
    """Prefix tamper + wipe every persisted seal + process restart.

    The adversary cannot forge a seal (MAC) but can destroy them all.
    The in-memory watermark dies with the process; on restart the log
    adopts whatever the wiped checkpoint journal still holds — nothing —
    and the first incremental request must escalate to a full rescan.
    """
    ok = _tamper_audit_frame(sub, 2, _rewrite_actor)
    device = sub.target.checkpoints.device
    device.raw_write(0, b"\x00" * device.capacity)
    sub.target.audit_log.adopt_checkpoints(
        CheckpointStore.recover(device, key=_checkpoint_key(sub))
    )
    return ok


def _forge_watermark(sub: _Substrate) -> bool:
    """Prefix tamper + a forged seal claiming the tampered state clean.

    The forged frame carries no valid MAC (the adversary lacks the
    derived key), so on restart ``latest()`` must skip it and fall back
    to the genuine older seal — the tamper stays catchable by the
    spot-check/cadence machinery.  If the forgery were trusted, the
    suffix replay would start past the tampering and detection could be
    laundered away entirely.
    """
    ok = _tamper_audit_frame(sub, 2, _rewrite_actor)
    log = sub.target.audit_log
    forged = canonical_bytes(
        {
            "size": len(log),
            "head": log.head_digest,
            "merkle_root": log.merkle_root(),
            "verified_at": 0.0,
            "incremental_runs": 0,
        }
    )
    device = sub.target.checkpoints.device
    journal = Journal.recover(device)
    journal.append(b"\x11" * 32 + forged)  # tag the adversary cannot compute
    sub.target.audit_log.adopt_checkpoints(
        CheckpointStore.recover(device, key=_checkpoint_key(sub))
    )
    return ok


def _rot_worm_object(sub: _Substrate, object_id: str) -> bool:
    device = sub.target.worm.device
    marker = object_id.encode("utf-8")
    for offset, payload in Journal.iter_device_frames(device):
        if marker not in payload:
            continue
        forged = payload[:-1] + bytes([payload[-1] ^ 0x5A])
        Journal.forge_frame(device, offset, forged)
        return True
    return False


def _rot_dirty_object(sub: _Substrate) -> bool:
    sub.surface.store(
        ClinicalNote.create(
            record_id="rec-dirty",
            patient_id=sub.dirty_patient,
            created_at=sub.clock.now(),
            author="dr-eq",
            specialty="cardiology",
            text="written after the last full sweep",
        ),
        "dr-eq",
    )
    return _rot_worm_object(sub, "rec-dirty@v0")


def _rot_clean_object(sub: _Substrate) -> bool:
    return _rot_worm_object(sub, f"{sub.records[0]}@v0")


# -- cold-tier tampers -------------------------------------------------------
#
# The tiered archive adds a fourth attack surface: compacted cold
# segments on their own device.  The adversary model is the same smart
# insider as the warm cases — raw device access, knows the segment
# layout, recomputes the frame checksum after writing — and the demand
# is the same: the bounded incremental policy must catch what a full
# pass catches, blaming exactly the tampered record.

_COLD_VICTIM = 1  # seeded record demoted (with one sibling) before tampering


def _stage_cold(sub: _Substrate) -> str:
    """Demote the victim (plus a sibling that must stay unblamed) and
    verify fully, so the tamper lands on a segment the system already
    believes clean — the hardest case for the incremental checker."""
    victim = sub.records[_COLD_VICTIM]
    sibling = sub.records[_COLD_VICTIM + 1]
    demoted = sub.target.demote_records([victim, sibling], actor_id="dr-eq")
    assert set(demoted) == {victim, sibling}
    assert sub.surface.verify_integrity().ok
    return victim


def _forge_cold_payload(engine, record_id: str, mutate) -> bool:
    """Rewrite the victim's segment frame the way a raw-media insider
    would: mutate the payload bytes, then recompute the frame checksum."""
    segment = engine.cold.segment_of(record_id)
    device = engine.cold.device
    payload = bytearray(
        device.raw_read(segment.frame_offset + HEADER_SIZE, segment.payload_length)
    )
    member = segment.manifest.member(record_id)
    member_start = (
        segment.member_area - (segment.frame_offset + HEADER_SIZE) + member.offset
    )
    if not mutate(payload, member_start, member.length):
        return False
    Journal.forge_frame(device, segment.frame_offset, bytes(payload))
    return True


def _cold_body_rot(sub: _Substrate) -> str | None:
    """Flip one byte in the middle of the victim's sealed member."""
    victim = _stage_cold(sub)

    def flip(payload: bytearray, start: int, length: int) -> bool:
        payload[start + length // 2] ^= 0x5A
        return True

    return victim if _forge_cold_payload(sub.target, victim, flip) else None


def _cold_recall_truncation(sub: _Substrate) -> str | None:
    """Zero the tail half of the victim's member — the shape a torn
    device leaves.  The sealed bytes no longer match their leaf, so the
    recall path must refuse to repatriate anything."""
    victim = _stage_cold(sub)

    def truncate(payload: bytearray, start: int, length: int) -> bool:
        payload[start + length // 2 : start + length] = bytes(
            length - length // 2
        )
        return True

    if not _forge_cold_payload(sub.target, victim, truncate):
        return None
    # the recall path itself must refuse the damaged member
    recall_refused = False
    try:
        sub.surface.read(victim, actor_id="dr-eq")
    except IntegrityError:
        recall_refused = True
    assert recall_refused, "recall repatriated a truncated cold member"
    return victim


def _cold_manifest_rot(sub: _Substrate) -> str | None:
    """Rewrite the victim's manifest entry in place (same compressed
    length, recomputed frame checksum).  The member bytes are intact —
    only the trusted-manifest comparison can catch this, with blame on
    exactly the forged entry."""
    from repro.archive.segment import reforge_manifest
    from repro.crypto.hashing import sha256 as _sha256

    victim = _stage_cold(sub)
    segment = sub.target.cold.segment_of(victim)
    device = sub.target.cold.device
    payload = device.raw_read(
        segment.frame_offset + HEADER_SIZE, segment.payload_length
    )
    for salt in range(64):  # a random digest may compress larger; retry
        def swap_leaf(manifest: dict, salt=salt) -> dict:
            for entry in manifest["members"]:
                if entry["record_id"] == victim:
                    entry["leaf_digest"] = _sha256(
                        b"forged-cold-leaf" + bytes([salt])
                    )
            return manifest

        try:
            forged = reforge_manifest(payload, swap_leaf)
        except Exception:  # noqa: BLE001 — did not fit, retry with new salt
            continue
        Journal.forge_frame(device, segment.frame_offset, forged)
        return victim
    return None


_BATCH_SIZE = 5
_BATCH_VICTIM = 2


def _rot_batch_extent(sub: _Substrate, object_id: str) -> bool:
    """Flip one byte inside *object_id*'s extent of a batched WORM frame.

    ``put_many`` writes the whole batch as one scattered frame: a
    manifest header, a NUL separator, then every member's bytes
    back-to-back.  A raw-media adversary who knows the layout can target
    one member's bytes exactly; the manifest locates the extent.
    """
    device = sub.target.worm.device
    for offset, payload in Journal.iter_device_frames(device):
        separator = payload.find(b"\x00")
        if separator < 0:
            continue
        try:
            header = canonical_loads(payload[:separator])
        except Exception:
            continue
        if not isinstance(header, dict) or "batch" not in header:
            continue
        start = separator + 1
        for entry in header["batch"]:
            if entry["object_id"] == object_id:
                target = start + entry["size"] // 2
                forged = bytearray(payload)
                forged[target] ^= 0x5A
                Journal.forge_frame(device, offset, bytes(forged))
                return True
            start += entry["size"]
    return False


def _tamper_batch_member(sub: _Substrate) -> str | None:
    """Rot exactly one member of a ``store_many`` batch.

    The batched ingest path writes all of a batch's WORM objects through
    one scattered flush and covers them with a single aggregated custody
    signature — a shared fate the per-record paths never had.  Detection
    must still localize: the pass that catches the rot has to implicate
    the tampered record and *only* the tampered record, or the batch's
    siblings are collateral damage in every forensic follow-up.
    """
    notes = [
        ClinicalNote.create(
            record_id=f"rec-batch-{n}",
            patient_id=sub.dirty_patient,
            created_at=sub.clock.now(),
            author="dr-eq",
            specialty="cardiology",
            text=f"batched note {n} landing in one scattered flush",
        )
        for n in range(_BATCH_SIZE)
    ]
    sub.surface.store_many(notes, "dr-eq")
    victim = f"rec-batch-{_BATCH_VICTIM}"
    return victim if _rot_batch_extent(sub, f"{victim}@v0") else None


def _rot_extent(engine, object_id: str) -> bool:
    """Flip one byte inside *object_id*'s extent wherever it lives — a
    single-object frame or one member of a batched flush.  Every frame
    carrying the id is rotted (a migration round trip can leave several;
    recovery is last-frame-wins, so only rotting all of them guarantees
    the live extent is hit)."""
    device = engine.worm.device
    landed = False
    for offset, payload in Journal.iter_device_frames(device):
        separator = payload.find(b"\x00")
        if separator < 0:
            continue
        try:
            header = canonical_loads(payload[:separator])
        except Exception:  # noqa: BLE001 — foreign frame
            continue
        if not isinstance(header, dict):
            continue
        entries = header["batch"] if "batch" in header else [header]
        start = separator + 1
        for entry in entries:
            if not isinstance(entry, dict) or "object_id" not in entry:
                break
            if entry["object_id"] == object_id:
                forged = bytearray(payload)
                forged[start + entry["size"] // 2] ^= 0x5A
                Journal.forge_frame(device, offset, bytes(forged))
                landed = True
                break
            start += entry["size"]
    return landed


# -- the bounded policy ---------------------------------------------------


def _run_policy(incremental_check, full_check) -> tuple[bool, str, int]:
    """Up to ``full_rescan_every`` incremental passes, then one full.

    Returns ``(detected, caught_by, attempts)``.  ``caught_by`` is
    ``"incremental"`` when a pass before the final forced full caught it
    (including internal escalations the cadence itself triggered),
    ``"escalation"`` when only the terminal full rescan did.
    """
    for attempt in range(1, _FULL_RESCAN_EVERY + 1):
        if incremental_check():
            return True, "incremental", attempt
    if full_check():
        return True, "escalation", _FULL_RESCAN_EVERY + 1
    return False, "none", _FULL_RESCAN_EVERY + 1


def _audit_case(name: str, tamper, build: Callable[[], _Substrate]) -> EquivalenceCase:
    sub = build()
    tampered = tamper(sub)
    detected, caught_by, attempts = _run_policy(
        lambda: not sub.surface.verify_audit_trail(incremental=True).ok,
        lambda: not sub.surface.verify_audit_trail().ok,
    )
    full_detects = not sub.surface.verify_audit_trail().ok
    return EquivalenceCase(
        name=name,
        tampered=tampered,
        incremental_detects=detected,
        full_detects=full_detects or detected,
        caught_by=caught_by if tampered else "n/a",
        attempts=attempts,
    )


def _integrity_case(
    name: str, tamper, build: Callable[[], _Substrate]
) -> EquivalenceCase:
    sub = build()
    tampered = tamper(sub)
    detected, caught_by, attempts = _run_policy(
        lambda: not sub.surface.verify_integrity(incremental=True).ok,
        lambda: not sub.surface.verify_integrity().ok,
    )
    full_detects = not sub.surface.verify_integrity().ok
    return EquivalenceCase(
        name=name,
        tampered=tampered,
        incremental_detects=detected,
        full_detects=full_detects or detected,
        caught_by=caught_by if tampered else "n/a",
        attempts=attempts,
    )


def _batch_integrity_case(
    name: str, tamper, build: Callable[[], _Substrate]
) -> EquivalenceCase:
    """Like :func:`_integrity_case`, but also demands exact blame.

    ``flagged`` records what the terminal full pass implicated (cluster
    shard labels stripped); the case is a violation unless that is
    precisely the tampered record.
    """
    sub = build()
    victim = tamper(sub)
    detected, caught_by, attempts = _run_policy(
        lambda: not sub.surface.verify_integrity(incremental=True).ok,
        lambda: not sub.surface.verify_integrity().ok,
    )
    report = sub.surface.verify_integrity()
    return EquivalenceCase(
        name=name,
        tampered=victim is not None,
        incremental_detects=detected,
        full_detects=(not report.ok) or detected,
        caught_by=caught_by if victim is not None else "n/a",
        attempts=attempts,
        expected_flag=victim or "",
        flagged=tuple(v.rsplit(":", 1)[-1] for v in report.violations),
    )


def _control_case(build: Callable[[], _Substrate], name: str) -> EquivalenceCase:
    sub = build()
    _append_delta(sub)
    audit_fp = any(
        not sub.surface.verify_audit_trail(incremental=True).ok
        for _ in range(_FULL_RESCAN_EVERY)
    )
    integrity_fp = any(
        not sub.surface.verify_integrity(incremental=True).ok
        for _ in range(_FULL_RESCAN_EVERY)
    )
    full_fp = (
        not sub.surface.verify_audit_trail().ok
        or not sub.surface.verify_integrity().ok
    )
    return EquivalenceCase(
        name=name,
        tampered=False,
        incremental_detects=audit_fp or integrity_fp,
        full_detects=full_fp,
        caught_by="n/a",
        attempts=_FULL_RESCAN_EVERY,
    )


_TAMPER_CASES: tuple[tuple[str, str, Callable[[_Substrate], bool]], ...] = (
    ("audit", "audit_prefix_rewrite", _tamper_prefix),
    ("audit", "audit_suffix_rewrite", _tamper_suffix),
    ("audit", "audit_chain_field_edit", _tamper_chain_field),
    ("audit", "audit_truncation", _truncate_tail),
    ("audit", "watermark_destruction", _destroy_watermarks),
    ("audit", "watermark_forgery", _forge_watermark),
    ("integrity", "worm_dirty_object_rot", _rot_dirty_object),
    ("integrity", "worm_clean_object_rot", _rot_clean_object),
    ("batch", "worm_batch_member_rot", _tamper_batch_member),
    ("batch", "cold_segment_body_rot", _cold_body_rot),
    ("batch", "cold_manifest_rot", _cold_manifest_rot),
    ("batch", "cold_recall_truncation", _cold_recall_truncation),
)

_CASE_RUNNERS = {
    "audit": _audit_case,
    "integrity": _integrity_case,
    "batch": _batch_integrity_case,
}


def _run_cases(
    build: Callable[[], _Substrate], prefix: str = ""
) -> list[EquivalenceCase]:
    cases = []
    for kind, name, tamper in _TAMPER_CASES:
        cases.append(_CASE_RUNNERS[kind](f"{prefix}{name}", tamper, build))
    return cases


# -- migration-aware cases -------------------------------------------------
#
# Verifiable migration (media refresh on one engine, patient moves in a
# rebalancing cluster) adds a third detector to the incremental/full
# pair: the migration verifier itself.  The equivalence demand extends
# naturally — tampering planted *mid-migration* must abort the move with
# the source still authoritative, tampering planted *post-migration*
# must be blamed on the record's **current** home, and extents a
# completed move left behind must never draw blame to the stale home.


def _migration_blocks_refresh_case() -> EquivalenceCase:
    """Rot a source extent, then refresh media: the migration manifest
    check must refuse to certify the copy (mid-migration detection),
    and the terminal full pass must blame exactly the rotted record."""
    sub = _build_single()
    victim = sub.records[0]
    tampered = _rot_extent(sub.target, f"{victim}@v0")
    blocked = False
    try:
        sub.target.refresh_media()
    except IntegrityError:
        blocked = True
    detected, caught_by, attempts = _run_policy(
        lambda: not sub.surface.verify_integrity(incremental=True).ok,
        lambda: not sub.surface.verify_integrity().ok,
    )
    report = sub.surface.verify_integrity()
    return EquivalenceCase(
        name="migration_source_rot_blocks_refresh",
        tampered=tampered,
        incremental_detects=blocked or detected,
        full_detects=(not report.ok) or detected,
        caught_by="migration-verify" if blocked else caught_by,
        attempts=0 if blocked else attempts,
        expected_flag=victim,
        flagged=tuple(report.violations),
    )


def _migration_post_refresh_case() -> EquivalenceCase:
    """Refresh media cleanly, then rot the *new* medium: detection must
    follow the data to its current home with exact blame."""
    sub = _build_single()
    victim = sub.records[1]
    sub.target.refresh_media()
    tampered = _rot_extent(sub.target, f"{victim}@v0")
    detected, caught_by, attempts = _run_policy(
        lambda: not sub.surface.verify_integrity(incremental=True).ok,
        lambda: not sub.surface.verify_integrity().ok,
    )
    report = sub.surface.verify_integrity()
    return EquivalenceCase(
        name="migration_post_refresh_rot",
        tampered=tampered,
        incremental_detects=detected,
        full_detects=(not report.ok) or detected,
        caught_by=caught_by,
        attempts=attempts,
        expected_flag=victim,
        flagged=tuple(report.violations),
    )


def run_detection_equivalence() -> EquivalenceReport:
    """Every tamper case against a single engine (the module policy)."""
    cases = [_control_case(_build_single, "no_tamper_control")]
    cases.extend(_run_cases(_build_single))
    cases.append(_migration_blocks_refresh_case())
    cases.append(_migration_post_refresh_case())
    return EquivalenceReport(cases=tuple(cases))


def run_cluster_detection_equivalence(shards: int = 2) -> EquivalenceReport:
    """Every tamper case re-run once per shard of a cluster.

    The adversary writes to one shard's raw devices; the operator only
    ever calls the cluster's fan-out ``verify_*``.  Zero violations
    means sharding preserved the single-engine detection guarantees —
    the cluster acceptance bar for the scaling benchmark.
    """
    cases = [
        _control_case(
            lambda: _build_cluster(shards, 0), "cluster:no_tamper_control"
        )
    ]
    for target in range(shards):
        cases.extend(
            _run_cases(
                lambda target=target: _build_cluster(shards, target),
                prefix=f"shard-{target:02d}:",
            )
        )
    return EquivalenceReport(cases=tuple(cases))


# -- rebalance-aware oracle ------------------------------------------------

_REBALANCE_VNODES = 32
_REBALANCE_PATIENTS = 10


@dataclass
class _RebalanceSub:
    """A virtual-node cluster about to be (or just) reshaped."""

    cluster: CuratorCluster
    clock: SimulatedClock
    patients: tuple[str, ...]
    record_of: dict[str, str]

    def mover(self) -> str:
        """A seeded patient the 2 -> 4 grow will displace."""
        ring = self.cluster.ring
        final = ring.with_added("shard-02").with_added("shard-03")
        displaced = ring.diff(final).displaced(self.patients)
        assert displaced, "no seeded patient is displaced by the grow"
        return displaced[0]

    def home_shard_id(self, patient_id: str) -> str:
        return self.cluster.shard_ids[self.cluster.shard_for(patient_id)]

    def policy(self) -> tuple[bool, str, int]:
        return _run_policy(
            lambda: not self.cluster.verify_integrity(incremental=True).ok,
            lambda: not self.cluster.verify_integrity().ok,
        )


def _build_rebalance() -> _RebalanceSub:
    global _CLUSTER_KEYPAIR
    if _CLUSTER_KEYPAIR is None:
        _CLUSTER_KEYPAIR = generate_keypair(768)
    clock = SimulatedClock(start=1.17e9)
    config = CuratorConfig(
        master_key=bytes(range(32)),
        clock=clock,
        device_capacity=1 << 20,
        audit_spot_checks=_SPOT_CHECKS,
        audit_full_rescan_every=_FULL_RESCAN_EVERY,
        integrity_clean_sample=_CLEAN_SAMPLE,
        signing_keypair=_CLUSTER_KEYPAIR,
    )
    cluster = CuratorCluster(config, shards=2, vnodes=_REBALANCE_VNODES)
    patients, record_of = [], {}
    for n in range(_REBALANCE_PATIENTS):
        patient_id, record_id = f"pat-rb-{n}", f"rec-rb-{n}"
        cluster.store(_seed_note(record_id, patient_id, clock, n), "dr-eq")
        cluster.read(record_id, actor_id="dr-eq")
        patients.append(patient_id)
        record_of[patient_id] = record_id
        clock.advance(1.0)
    assert cluster.verify_audit_trail().ok
    assert cluster.verify_integrity().ok
    return _RebalanceSub(
        cluster=cluster,
        clock=clock,
        patients=tuple(patients),
        record_of=record_of,
    )


def _rebalance_control_case() -> EquivalenceCase:
    """A clean online grow: every move's proof verifies, and neither
    verification path reports a problem that does not exist."""
    sub = _build_rebalance()
    clean = True
    try:
        report = sub.cluster.rebalance(target_shards=4, actor_id="oracle")
        for proof in report.proofs:
            sub.cluster.verify_move_proof(proof)
        clean = report.moved > 0
    except Exception:  # noqa: BLE001 — any failure here is a violation
        clean = False
    false_positive = any(
        not sub.cluster.verify_integrity(incremental=True).ok
        for _ in range(_FULL_RESCAN_EVERY)
    ) or not sub.cluster.verify_integrity().ok
    return EquivalenceCase(
        name="rebalance:no_tamper_control",
        tampered=False,
        incremental_detects=false_positive,
        full_detects=not clean,
        caught_by="n/a",
        attempts=_FULL_RESCAN_EVERY,
    )


def _rebalance_mid_move_source_rot_case() -> EquivalenceCase:
    """Kill the rebalancer at a victim's cutover boundary, rot the
    source copy, salvage — detection must blame exactly the record on
    its **current** (post-salvage: source) shard."""
    sub = _build_rebalance()
    victim = sub.mover()
    record_id = sub.record_of[victim]

    def crash_at_cutover(stage: str, patient_id: str) -> None:
        if stage == "cutover" and patient_id == victim:
            raise CrashError(f"oracle crash before cutover of {patient_id}")

    crashed = False
    try:
        sub.cluster.rebalance(
            target_shards=4, actor_id="oracle", hook=crash_at_cutover
        )
    except CrashError:
        crashed = True
    tampered = crashed and _rot_extent(
        sub.cluster.shards[sub.cluster.shard_for(victim)], f"{record_id}@v0"
    )
    sub.cluster.recover_interrupted_moves(actor_id="oracle")
    detected, caught_by, attempts = sub.policy()
    report = sub.cluster.verify_integrity()
    return EquivalenceCase(
        name="rebalance:mid_move_source_rot",
        tampered=tampered,
        incremental_detects=detected,
        full_detects=(not report.ok) or detected,
        caught_by=caught_by if tampered else "n/a",
        attempts=attempts,
        expected_flag=f"{sub.home_shard_id(victim)}:{record_id}",
        flagged=tuple(report.violations),
    )


def _rebalance_post_move_dest_rot_case() -> EquivalenceCase:
    """Complete the grow, then rot a moved patient's extent at its new
    home — blame must land on the destination shard, exactly."""
    sub = _build_rebalance()
    victim = sub.mover()
    record_id = sub.record_of[victim]
    report = sub.cluster.rebalance(target_shards=4, actor_id="oracle")
    assert any(proof.patient_id == victim for proof in report.proofs)
    tampered = _rot_extent(
        sub.cluster.shards[sub.cluster.shard_for(victim)], f"{record_id}@v0"
    )
    detected, caught_by, attempts = sub.policy()
    full = sub.cluster.verify_integrity()
    return EquivalenceCase(
        name="rebalance:post_move_dest_rot",
        tampered=tampered,
        incremental_detects=detected,
        full_detects=(not full.ok) or detected,
        caught_by=caught_by if tampered else "n/a",
        attempts=attempts,
        expected_flag=f"{sub.home_shard_id(victim)}:{record_id}",
        flagged=tuple(full.violations),
    )


def _rebalance_stale_source_rot_case() -> EquivalenceCase:
    """Rot the expatriated extents a completed move left on the source.
    The bytes are dead — custody moved with the patient — so *any*
    detection here is false blame against the stale home (modelled as a
    control: the case is a violation if anything fires)."""
    sub = _build_rebalance()
    victim = sub.mover()
    record_id = sub.record_of[victim]
    source_id = sub.home_shard_id(victim)
    sub.cluster.rebalance(target_shards=4, actor_id="oracle")
    assert sub.home_shard_id(victim) != source_id
    source = sub.cluster.shards[sub.cluster.shard_ids.index(source_id)]
    landed = _rot_extent(source, f"{record_id}@v0")
    false_positive = any(
        not sub.cluster.verify_integrity(incremental=True).ok
        for _ in range(_FULL_RESCAN_EVERY)
    ) or not sub.cluster.verify_integrity().ok
    return EquivalenceCase(
        name="rebalance:stale_source_rot",
        tampered=not landed,  # must land, as a tombstoned extent
        incremental_detects=false_positive,
        full_detects=false_positive,
        caught_by="n/a",
        attempts=_FULL_RESCAN_EVERY,
    )


def _rebalance_mid_move_dest_tamper_case() -> EquivalenceCase:
    """Rot the destination's freshly imported copy before the move's
    verify stage: the double-read against the signed manifest must
    abort the move with the source still authoritative and intact."""
    sub = _build_rebalance()
    victim = sub.mover()
    record_id = sub.record_of[victim]
    source_id = sub.home_shard_id(victim)
    tampered = {"landed": False}

    def rot_dest_copy(stage: str, patient_id: str) -> None:
        if stage != "verify" or patient_id != victim:
            return
        ticket = sub.cluster._moves.get(patient_id)  # noqa: SLF001
        if ticket is not None:
            tampered["landed"] = _rot_extent(
                sub.cluster.shards[ticket.dest_slot], f"{record_id}@v0"
            )

    aborted = False
    try:
        sub.cluster.rebalance(
            target_shards=4, actor_id="oracle", hook=rot_dest_copy
        )
    except (MigrationError, IntegrityError):
        aborted = True
    intact = (
        sub.home_shard_id(victim) == source_id
        and sub.cluster.read(record_id, actor_id="dr-eq") is not None
        and sub.cluster.verify_integrity().ok
        and sub.cluster.verify_audit_trail().ok
    )
    return EquivalenceCase(
        name="rebalance:mid_move_dest_tamper_aborts",
        tampered=tampered["landed"],
        incremental_detects=aborted and intact,
        full_detects=True,
        caught_by="migration-verify" if aborted else "none",
        attempts=1,
    )


def run_rebalance_detection_equivalence() -> EquivalenceReport:
    """Tamper cases staged around an online elastic rebalance.

    The adversary strikes while (or right after) patients move between
    shards; zero violations means the move machinery neither loses nor
    dilutes detection power: mid-move tampering aborts the move or is
    blamed on the still-authoritative source, post-move tampering is
    blamed on the new home, and extents the move retired draw no blame
    at all.  This is the E6b acceptance oracle.
    """
    return EquivalenceReport(
        cases=(
            _rebalance_control_case(),
            _rebalance_mid_move_source_rot_case(),
            _rebalance_post_move_dest_rot_case(),
            _rebalance_stale_source_rot_case(),
            _rebalance_mid_move_dest_tamper_case(),
        )
    )
