"""Differential conformance: one scripted workload, six storage models,
one feature-aware reference.

The runner replays a fixed script — stores, an atomic batch, reads
(authorized and not), search, a correction, premature and lawful
disposal, a historical-version read, break-glass, audit and integrity
checks — through each model behind the common
:class:`~repro.baselines.interface.StorageModel` facade, and records
every operation as an :class:`~repro.verify.reference.Observation`.
The expected observation comes from the pure-python
:class:`~repro.verify.reference.ReferenceModel`, parameterized by the
model's declared features: a declared-unsupported operation *refusing*
is conformant, silently succeeding is a divergence, and so is any
drift in served text, search hits, or error class.

A model is conformant when its observation stream matches the
reference's exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.interface import StorageModel, UnsupportedOperation
from repro.errors import (
    AccessDeniedError,
    RecordNotFoundError,
    RetentionError,
)
from repro.records.model import ClinicalNote, HealthRecord
from repro.util.clock import SimulatedClock
from repro.verify.reference import Observation, ReferenceModel

_EPOCH = 1.17e9

# record_id -> (patient_id, text); one unique leading term per record
_RECORDS: dict[str, tuple[str, str]] = {
    "rec-A": ("pat-1", "amber gradient noted on scan"),
    "rec-B": ("pat-2", "basil allergy documented today"),
    "rec-C": ("pat-1", "cobalt bruise on left arm"),
    "rec-D": ("pat-3", "dahlia rash persistent"),
}
_REVISED_B = "basil allergy documented today revised entry"


@dataclass(frozen=True)
class ScriptedOp:
    """One step of the conformance script."""

    kind: str
    args: dict = field(default_factory=dict)


def conformance_script() -> list[ScriptedOp]:
    """The fixed differential workload (order matters)."""
    return [
        ScriptedOp("store", {"record_id": "rec-A"}),
        ScriptedOp("store", {"record_id": "rec-B"}),
        ScriptedOp("store_many", {"record_ids": ("rec-C", "rec-D")}),
        ScriptedOp("read", {"record_id": "rec-A"}),
        ScriptedOp("read_probe", {"record_id": "rec-A"}),
        ScriptedOp("search", {"term": "cobalt"}),
        ScriptedOp("correct", {"record_id": "rec-B", "text": _REVISED_B}),
        ScriptedOp("read", {"record_id": "rec-B"}),
        ScriptedOp("read_version", {"record_id": "rec-B", "version": 0}),
        ScriptedOp("search", {"term": "revised"}),
        ScriptedOp("dispose", {"record_id": "rec-C"}),  # inside retention
        ScriptedOp("advance_years", {"years": 8.0}),
        ScriptedOp("dispose", {"record_id": "rec-C"}),  # past retention
        ScriptedOp("read", {"record_id": "rec-C"}),
        ScriptedOp("search", {"term": "cobalt"}),
        ScriptedOp("break_glass_read", {"record_id": "rec-D"}),
        ScriptedOp("audit_check", {}),
        ScriptedOp("integrity_check", {}),
    ]


@dataclass(frozen=True)
class Divergence:
    """One behaviour mismatch between a model and its reference."""

    op: str
    expected: str
    actual: str


@dataclass
class ConformanceReport:
    """Differential verdict for one model."""

    model_name: str
    ops_run: int
    divergences: tuple[Divergence, ...]

    @property
    def conformant(self) -> bool:
        return not self.divergences


# ---------------------------------------------------------------------------
# executing the script against a real model
# ---------------------------------------------------------------------------


def _note(record_id: str, clock: SimulatedClock | None) -> HealthRecord:
    patient_id, text = _RECORDS[record_id]
    return ClinicalNote.create(
        record_id=record_id,
        patient_id=patient_id,
        created_at=clock.now() if clock is not None else _EPOCH,
        author="dr-a",
        specialty="dermatology",
        text=text,
    )


def _observe(label: str, fn: Callable[[], str]) -> Observation:
    try:
        detail = fn()
    except UnsupportedOperation:
        return Observation(label, "unsupported")
    except AccessDeniedError:
        return Observation(label, "denied")
    except RetentionError:
        return Observation(label, "retention-refused")
    except RecordNotFoundError:
        return Observation(label, "not-found")
    return Observation(label, "ok", detail)


def _execute(
    model: StorageModel, clock: SimulatedClock | None, label: str, op: ScriptedOp
) -> Observation:
    kind, args = op.kind, op.args
    if kind == "store":
        return _observe(
            label, lambda: (model.store(_note(args["record_id"], clock), "dr-a"), "")[1]
        )
    if kind == "store_many":
        notes = [_note(rid, clock) for rid in args["record_ids"]]
        return _observe(label, lambda: str(model.store_many(notes, "dr-a")))
    if kind == "read":
        return _observe(
            label,
            lambda: model.read(args["record_id"], actor_id="system").body.get(
                "text", ""
            ),
        )
    if kind == "read_probe":
        model.prepare_access_probe("probe-intruder")
        return _observe(
            label,
            lambda: model.read(
                args["record_id"], actor_id="probe-intruder"
            ).body.get("text", ""),
        )
    if kind == "correct":
        original = _note(args["record_id"], clock)
        corrected = HealthRecord(
            record_id=original.record_id,
            record_type=original.record_type,
            patient_id=original.patient_id,
            created_at=original.created_at,
            body={**original.body, "text": args["text"]},
        )
        return _observe(
            label, lambda: (model.correct(corrected, "dr-a", "amended"), "")[1]
        )
    if kind == "read_version":
        return _observe(
            label,
            lambda: model.read_version(
                args["record_id"], args["version"], actor_id="system"
            ).body.get("text", ""),
        )
    if kind == "search":
        return _observe(
            label,
            lambda: ",".join(
                sorted(set(model.search(args["term"], actor_id="system")))
            ),
        )
    if kind == "advance_years":
        if clock is not None:
            clock.advance_years(args["years"])
        return Observation(label, "ok", "")
    if kind == "dispose":
        return _observe(
            label,
            lambda: (
                model.dispose(args["record_id"], actor_id="records-manager"),
                "",
            )[1],
        )
    if kind == "break_glass_read":
        return _break_glass_read(model, label, args["record_id"])
    if kind == "audit_check":
        report = model.verify_audit_trail()
        # render the report back to the tri-state the reference scripts
        # were written against: True / False / None (no audit machinery)
        verify = report.ok if report is not None else None
        events = "some" if model.audit_events() else "none"
        return Observation(label, "ok", f"verify={verify},events={events}")
    if kind == "integrity_check":
        return Observation(label, "ok", ",".join(model.verify_integrity().violations))
    raise ValueError(f"unknown scripted op {kind!r}")


def _break_glass_read(model: StorageModel, label: str, record_id: str) -> Observation:
    """Emergency access is native curator API, not part of the common
    facade: a model without it observes ``unsupported`` (which the
    reference expects of it)."""
    if not hasattr(model, "break_glass"):
        return Observation(label, "unsupported")
    from repro.access.principals import Role, User

    patient_id, _ = _RECORDS[record_id]
    model.register_user(User.make("dr-er", "ER physician", [Role.PHYSICIAN]))

    def attempt() -> str:
        try:
            model.read(record_id, actor_id="dr-er")
            return "not-denied"
        except AccessDeniedError:
            pass
        model.break_glass("dr-er", patient_id, "night-shift emergency")
        record = model.read(record_id, actor_id="dr-er")
        return f"denied-then:{record.body.get('text', '')}"

    return _observe(label, attempt)


# ---------------------------------------------------------------------------
# the reference's expectation for the same script
# ---------------------------------------------------------------------------


def _expect(reference: ReferenceModel, label: str, op: ScriptedOp) -> Observation:
    kind, args = op.kind, op.args
    if kind == "store":
        return reference.store(label, args["record_id"], _RECORDS[args["record_id"]][1])
    if kind == "store_many":
        return reference.store_many(
            label, [(rid, _RECORDS[rid][1]) for rid in args["record_ids"]]
        )
    if kind == "read":
        return reference.read(label, args["record_id"])
    if kind == "read_probe":
        return reference.read_probe(label, args["record_id"])
    if kind == "correct":
        return reference.correct(label, args["record_id"], args["text"])
    if kind == "read_version":
        return reference.read_version(label, args["record_id"], args["version"])
    if kind == "search":
        return reference.search(label, args["term"])
    if kind == "advance_years":
        return reference.advance_years(label)
    if kind == "dispose":
        return reference.dispose(label, args["record_id"])
    if kind == "break_glass_read":
        return reference.break_glass_read(label, args["record_id"])
    if kind == "audit_check":
        return reference.audit_check(label)
    if kind == "integrity_check":
        return reference.integrity_check(label)
    raise ValueError(f"unknown scripted op {kind!r}")


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------

ModelFactory = Callable[[], tuple[StorageModel, SimulatedClock | None]]


def default_model_factories() -> dict[str, ModelFactory]:
    """Fresh-instance factories for all six models (script ops are
    destructive, so every conformance run gets its own instances)."""
    from repro.baselines import (
        EncryptedStore,
        HippocraticStore,
        ObjectStore,
        PlainWormStore,
        RelationalStore,
    )
    from repro.core.config import CuratorConfig
    from repro.core.engine import CuratorStore

    master = bytes(range(32))

    def curator() -> tuple[StorageModel, SimulatedClock]:
        clock = SimulatedClock(start=_EPOCH)
        return CuratorStore(CuratorConfig(master_key=master, clock=clock)), clock

    def plainworm() -> tuple[StorageModel, SimulatedClock]:
        clock = SimulatedClock(start=_EPOCH)
        return PlainWormStore(clock=clock), clock

    return {
        "relational": lambda: (RelationalStore(), None),
        "encrypted": lambda: (EncryptedStore(), None),
        "hippocratic": lambda: (HippocraticStore(), None),
        "objectstore": lambda: (ObjectStore(), None),
        "plainworm": plainworm,
        "curator": curator,
    }


def run_model_conformance(
    model: StorageModel, clock: SimulatedClock | None
) -> ConformanceReport:
    """Replay the script through one model, diffing against its reference."""
    reference = ReferenceModel(
        model.declared_features(),
        has_version_history=(
            type(model).read_version is not StorageModel.read_version
        ),
        has_break_glass=hasattr(model, "break_glass"),
    )
    divergences: list[Divergence] = []
    script = conformance_script()
    for index, op in enumerate(script):
        target = next(iter(op.args.values()), "") if op.args else ""
        label = f"{index:02d}:{op.kind}" + (f":{target}" if target else "")
        expected = _expect(reference, label, op)
        actual = _execute(model, clock, label, op)
        if expected != actual:
            divergences.append(
                Divergence(
                    op=label,
                    expected=f"{expected.outcome}/{expected.detail}",
                    actual=f"{actual.outcome}/{actual.detail}",
                )
            )
    return ConformanceReport(
        model_name=model.model_name,
        ops_run=len(script),
        divergences=tuple(divergences),
    )


def run_conformance(
    factories: dict[str, ModelFactory] | None = None,
) -> dict[str, ConformanceReport]:
    """Run the differential script over every model; returns per-model
    reports keyed by model name."""
    factories = factories or default_model_factories()
    reports: dict[str, ConformanceReport] = {}
    for name, factory in factories.items():
        model, clock = factory()
        reports[name] = run_model_conformance(model, clock)
    return reports


def render_conformance(reports: dict[str, ConformanceReport]) -> str:
    """Human-readable conformance table with divergence details."""
    width = max(len(name) for name in reports)
    lines = ["differential conformance (vs feature-aware reference):"]
    for name in sorted(reports):
        report = reports[name]
        verdict = (
            "CONFORMANT"
            if report.conformant
            else f"{len(report.divergences)} DIVERGENCES"
        )
        lines.append(f"  {name:<{width}}  {report.ops_run:3d} ops  {verdict}")
        for divergence in report.divergences:
            lines.append(
                f"    {divergence.op}: expected {divergence.expected}, "
                f"got {divergence.actual}"
            )
    return "\n".join(lines)
