"""The crash-recovery oracle: sweep every write boundary, hold
recovery to the durability contract.

The contract, stated once and asserted at every crash point:

1. **Acked is durable** — every record whose ``store``/``store_many``/
   ``correct``/``dispose`` call returned before the crash is served
   after recovery exactly as acknowledged: byte-equal current text,
   full version count, findable through the index; disposed records
   stay gone.  Acked creations also keep their ``record_created``
   audit events (the engine only acks after the audit flush).
2. **In-flight is atomic** — the one interrupted operation is all-or-
   nothing.  A ``store_many`` batch never recovers partially; a
   correction serves either the old or the new text, never a mixture;
   an interrupted disposal leaves the record either fully served or
   fully unreadable.
3. **Evidence verifies** — the recovered audit hash chain verifies
   against the surviving external witnesses (anchored prefix
   included), and the engine's own integrity check is clean.
4. **The engine lives on** — the recovered engine accepts and serves a
   fresh write (the allocator really found the valid tail).

:func:`run_crash_sweep` first dry-runs the seeded workload to count
write boundaries, then re-runs it once per (boundary, variant) pair —
variant *clean* drops the K-th write whole, variant *torn* commits its
first half — recovering from surviving images each time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.events import AuditAction
from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.errors import RecordNotFoundError
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock
from repro.verify.crashpoint import CrashController, surviving_image
from repro.verify.workload import WorkloadRun, run_seeded_workload


@dataclass(frozen=True)
class Violation:
    """One broken clause of the durability contract."""

    crash_at: int
    torn: bool
    description: str


@dataclass
class CrashSweepReport:
    """Outcome of one full sweep."""

    boundaries: int
    cases_run: int
    crash_points: tuple[int, ...]
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"crash sweep: {self.boundaries} write boundaries, "
            f"{len(self.crash_points)} swept, {self.cases_run} cases "
            f"(clean + torn), {len(self.violations)} violations"
        ]
        for violation in self.violations:
            kind = "torn" if violation.torn else "clean"
            lines.append(
                f"  VIOLATION at write {violation.crash_at} ({kind}): "
                f"{violation.description}"
            )
        return "\n".join(lines)


def _build(master_key: bytes) -> tuple[CuratorStore, SimulatedClock, CuratorConfig]:
    clock = SimulatedClock(start=1.17e9)
    config = CuratorConfig(
        master_key=master_key,
        clock=clock,
        device_capacity=1 << 20,
        anchor_every_events=8,  # small threshold: crash points inside
    )                           # the anchor/flush path, not around it
    return CuratorStore(config), clock, config


def _check_recovery(
    recovered: CuratorStore, run: WorkloadRun, fail
) -> None:
    """Assert the durability contract clauses 1-4 (see module doc)."""
    flight_ids = set(run.in_flight.record_ids) if run.in_flight else set()

    # clause 3: evidence
    if not recovered.verify_audit_trail().ok:
        fail("recovered audit chain/anchors do not verify")
    integrity = recovered.verify_integrity()
    if integrity.violations:
        fail(f"recovered integrity check flagged {integrity.violations}")

    # clause 1: acked state
    events = recovered.audit_events()
    created = {
        event["subject_id"]
        for event in events
        if event["action"] == AuditAction.RECORD_CREATED.value
    }
    live = recovered.record_ids()
    for record_id, exp in run.expected.items():
        if record_id in flight_ids:
            # the crash interrupted an operation on this record; clause 2
            # owns it (either the old acked state or the new one is legal)
            continue
        if exp.disposed:
            if record_id in live:
                fail(f"disposed record {record_id} is served after recovery")
            try:
                recovered.read(record_id, actor_id="system")
                fail(f"disposed record {record_id} is readable after recovery")
            except RecordNotFoundError:
                pass
            if record_id in recovered.search(exp.term, actor_id="system"):
                fail(f"disposed record {record_id} is indexed after recovery")
            continue
        try:
            record = recovered.read(record_id, actor_id="system")
        except Exception as exc:  # noqa: BLE001 — any failure is a finding
            fail(f"acked record {record_id} unreadable after recovery: {exc!r}")
            continue
        if record.body.get("text") != exp.text:
            fail(
                f"acked record {record_id} text drifted: "
                f"{record.body.get('text')!r} != {exp.text!r}"
            )
        if recovered.version_count(record_id) != exp.versions:
            fail(
                f"acked record {record_id} has "
                f"{recovered.version_count(record_id)} versions, "
                f"expected {exp.versions}"
            )
        if record_id not in recovered.search(exp.term, actor_id="system"):
            fail(f"acked record {record_id} lost from the index after recovery")
        if record_id not in created:
            fail(f"acked record {record_id} has no record_created audit event")

    # clause 2: in-flight atomicity
    flight = run.in_flight
    if flight is not None and flight.kind in ("store", "store_many"):
        present = [rid for rid in flight.record_ids if rid in live]
        if present and len(present) != len(flight.record_ids):
            fail(
                f"in-flight {flight.kind} partially visible: "
                f"{present} of {list(flight.record_ids)}"
            )
        for record_id in present:
            exp = flight.committed[record_id]
            record = recovered.read(record_id, actor_id="system")
            if record.body.get("text") != exp.text:
                fail(
                    f"in-flight {flight.kind} surfaced record {record_id} "
                    f"with wrong text {record.body.get('text')!r}"
                )
    elif flight is not None and flight.kind == "correct":
        (record_id,) = flight.record_ids
        before = run.expected.get(record_id)
        after = flight.committed[record_id]
        try:
            record = recovered.read(record_id, actor_id="system")
            versions = recovered.version_count(record_id)
        except Exception as exc:  # noqa: BLE001
            fail(f"record {record_id} lost to an in-flight correction: {exc!r}")
        else:
            old = (before.versions, before.text) if before else None
            new = (after.versions, after.text)
            if (versions, record.body.get("text")) not in {old, new}:
                fail(
                    f"in-flight correction of {record_id} left a mixture: "
                    f"{versions} versions, text {record.body.get('text')!r}"
                )
    elif flight is not None and flight.kind == "dispose":
        (record_id,) = flight.record_ids
        before = run.expected.get(record_id)
        try:
            record = recovered.read(record_id, actor_id="system")
        except RecordNotFoundError:
            pass  # destruction effectively completed — acceptable
        except Exception as exc:  # noqa: BLE001
            fail(
                f"in-flight disposal of {record_id} left it half-readable: "
                f"{exc!r}"
            )
        else:
            if before is not None and record.body.get("text") != before.text:
                fail(
                    f"in-flight disposal of {record_id} corrupted the "
                    f"still-live record"
                )

    # no resurrections: everything served must be accounted for
    expected_live = {
        record_id
        for record_id, exp in run.expected.items()
        if not exp.disposed
    }
    unexpected = set(live) - expected_live - flight_ids
    if unexpected:
        fail(f"recovery surfaced unexpected records {sorted(unexpected)}")

    # clause 4: the recovered engine accepts new work
    probe = ClinicalNote.create(
        record_id="probe-post-crash",
        patient_id="pat-probe",
        created_at=recovered._clock.now(),  # noqa: SLF001 — test substrate
        author="dr-probe",
        specialty="cardiology",
        text="probe after recovery",
    )
    try:
        recovered.store(probe, "dr-probe")
        stored = recovered.read("probe-post-crash", actor_id="system")
        if stored.body.get("text") != "probe after recovery":
            fail("post-recovery probe write read back wrong bytes")
    except Exception as exc:  # noqa: BLE001
        fail(f"recovered engine rejected a fresh write: {exc!r}")


def _run_case(
    master_key: bytes, crash_at: int, torn: bool
) -> list[Violation]:
    """One crash point: run, crash, recover from images, check."""
    violations: list[Violation] = []

    def fail(description: str) -> None:
        violations.append(Violation(crash_at, torn, description))

    store, clock, config = _build(master_key)
    controller = CrashController()
    controller.attach(store.devices())
    controller.arm(crash_at, torn=torn)
    run = run_seeded_workload(store, clock)
    if not run.crashed:
        fail("armed crash point was never reached")
        return violations
    (
        worm_device,
        _index_device,
        audit_device,
        key_device,
        checkpoint_device,
        cold_device,
    ) = store.devices()
    recovery_config = CuratorConfig(
        master_key=master_key,
        clock=clock,
        device_capacity=config.device_capacity,
        anchor_every_events=config.anchor_every_events,
    )
    try:
        recovered = CuratorStore.recover_from_devices(
            recovery_config,
            worm_device=surviving_image(worm_device),
            key_device=surviving_image(key_device),
            audit_device=surviving_image(audit_device),
            checkpoint_device=surviving_image(checkpoint_device),
            cold_device=surviving_image(cold_device),
            witnesses=[store.witness],
            signer=store.signer,
        )
    except Exception as exc:  # noqa: BLE001 — recovery must never die
        fail(f"recovery raised {exc!r}")
        return violations
    _check_recovery(recovered, run, fail)
    return violations


def run_crash_sweep(
    master_key: bytes | None = None,
    limit: int | None = None,
    torn: bool = True,
    progress=None,
) -> CrashSweepReport:
    """Sweep the seeded workload's write boundaries.

    ``limit`` bounds how many crash points are swept (an evenly-spaced
    sample that always includes the first and last boundary) so CI can
    run a cheap slice; the default sweeps every boundary.  ``torn``
    adds the torn-prefix variant at each point.  ``progress`` (crash_at,
    torn, violations_so_far) is called after each case.
    """
    master_key = master_key if master_key is not None else bytes(range(32))
    store, clock, _config = _build(master_key)
    controller = CrashController()
    controller.attach(store.devices())
    baseline = run_seeded_workload(store, clock)
    if baseline.crashed:
        raise RuntimeError("dry run crashed without an armed crash point")
    boundaries = controller.writes_observed
    if limit is not None and 0 < limit < boundaries:
        if limit == 1:
            points = [boundaries]
        else:
            step = (boundaries - 1) / (limit - 1)
            points = sorted({round(1 + i * step) for i in range(limit)})
    else:
        points = list(range(1, boundaries + 1))
    violations: list[Violation] = []
    cases = 0
    for crash_at in points:
        for torn_flag in (False, True) if torn else (False,):
            cases += 1
            violations.extend(_run_case(master_key, crash_at, torn_flag))
            if progress is not None:
                progress(crash_at, torn_flag, len(violations))
    return CrashSweepReport(
        boundaries=boundaries,
        cases_run=cases,
        crash_points=tuple(points),
        violations=tuple(violations),
    )
