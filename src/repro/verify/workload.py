"""The seeded workload the crash sweep drives.

Small and fully deterministic: short texts (few index terms) keep the
total device-write count bounded so the sweep can afford to crash at
*every* write boundary, while still exercising every durability-
relevant path — single store, atomic ``store_many`` batch, a reads/
search stretch (audit + anchor traffic), a correction (re-index +
version chain), a certified disposal (escrow tombstone, extent zeroing,
frame reseal), and a post-disposal store.

:func:`run_seeded_workload` records which operations were
*acknowledged* (the call returned) and the expected observable state
they imply; when a :class:`~repro.errors.CrashError` lands, it also
records exactly which operation was in flight.  The oracle
(:mod:`repro.verify.oracle`) holds recovery to that ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import CrashError
from repro.records.model import ClinicalNote, HealthRecord
from repro.util.clock import SimulatedClock


@dataclass(frozen=True)
class ExpectedRecord:
    """Observable state one record must show after recovery."""

    text: str
    versions: int
    term: str  # a search term unique to this record's current text
    disposed: bool = False


@dataclass(frozen=True)
class InFlight:
    """The operation the crash interrupted: its effects may be fully
    present or fully absent after recovery — never partial."""

    kind: str  # store | store_many | correct | dispose | read | search
    record_ids: tuple[str, ...]
    committed: dict[str, ExpectedRecord] = field(default_factory=dict)


@dataclass
class WorkloadRun:
    """Acknowledged-state ledger of one workload execution."""

    expected: dict[str, ExpectedRecord]
    acked: tuple[str, ...]
    in_flight: InFlight | None
    crashed: bool


_PATIENTS = {"rec-0": "pat-1", "rec-1": "pat-2", "rec-2": "pat-1",
             "rec-3": "pat-3", "rec-4": "pat-2"}

_TEXTS = {
    "rec-0": "alpha palpitations at baseline",
    "rec-1": "bravo fracture of the wrist",
    "rec-2": "charlie lesion biopsied",
    "rec-3": "delta rash persistent",
    "rec-4": "echo followup unremarkable",
}

_CORRECTED_TEXT = "alpha palpitations resolved amended"


def _note(record_id: str, clock: SimulatedClock) -> HealthRecord:
    return ClinicalNote.create(
        record_id=record_id,
        patient_id=_PATIENTS[record_id],
        created_at=clock.now(),
        author="dr-sweep",
        specialty="cardiology",
        text=_TEXTS[record_id],
    )


def run_seeded_workload(store, clock: SimulatedClock) -> WorkloadRun:
    """Drive the workload, stopping at the first simulated crash."""
    expected: dict[str, ExpectedRecord] = {}
    acked: list[str] = []
    outcome = WorkloadRun(expected=expected, acked=(), in_flight=None, crashed=False)

    def run(name, kind, ids, committed, op):
        """Run one op; on a crash, freeze the ledger and report False."""
        try:
            op()
        except CrashError:
            outcome.in_flight = InFlight(
                kind=kind, record_ids=tuple(ids), committed=committed
            )
            outcome.crashed = True
            outcome.acked = tuple(acked)
            return False
        expected.update(committed)
        acked.append(name)
        return True

    def exp(record_id, **overrides):
        base = ExpectedRecord(
            text=_TEXTS[record_id], versions=1, term=_TEXTS[record_id].split()[0]
        )
        return replace(base, **overrides)

    steps = [
        (
            "store:rec-0", "store", ["rec-0"], {"rec-0": exp("rec-0")},
            lambda: store.store(_note("rec-0", clock), "dr-sweep"),
        ),
        (
            "store_many:rec-1..3", "store_many", ["rec-1", "rec-2", "rec-3"],
            {rid: exp(rid) for rid in ("rec-1", "rec-2", "rec-3")},
            lambda: store.store_many(
                [_note(rid, clock) for rid in ("rec-1", "rec-2", "rec-3")],
                "dr-sweep",
            ),
        ),
        ("read:rec-2", "read", [], {}, lambda: store.read("rec-2", actor_id="system")),
        (
            "search:bravo", "search", [], {},
            lambda: store.search("bravo", actor_id="system"),
        ),
        (
            "correct:rec-0", "correct", ["rec-0"],
            {"rec-0": ExpectedRecord(text=_CORRECTED_TEXT, versions=2, term="amended")},
            lambda: store.correct(
                HealthRecord(
                    record_id="rec-0",
                    record_type=_note("rec-0", clock).record_type,
                    patient_id=_PATIENTS["rec-0"],
                    created_at=clock.now(),
                    body={**_note("rec-0", clock).body, "text": _CORRECTED_TEXT},
                ),
                "dr-sweep",
                "symptom resolved",
            ),
        ),
        (
            "dispose:rec-1", "dispose", ["rec-1"],
            {"rec-1": exp("rec-1", disposed=True)},
            lambda: (
                clock.advance_years(8.0),
                store.dispose("rec-1", actor_id="records-manager"),
            ),
        ),
        (
            "store:rec-4", "store", ["rec-4"], {"rec-4": exp("rec-4")},
            lambda: store.store(_note("rec-4", clock), "dr-sweep"),
        ),
        ("read:rec-0", "read", [], {}, lambda: store.read("rec-0", actor_id="system")),
    ]
    for name, kind, ids, committed, op in steps:
        if not run(name, kind, ids, committed, op):
            return outcome
    outcome.acked = tuple(acked)
    return outcome
