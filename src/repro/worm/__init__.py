"""Compliance WORM (write-once, read-many) storage.

The paper identifies compliance WORM as "the most promising technology
for secure storage of health records".  This package implements it:

* :mod:`repro.worm.store` — objects are written exactly once to a
  journal-backed device, each carrying a content digest and a retention
  term; overwrite attempts raise
  :class:`~repro.errors.WormViolationError`.
* :mod:`repro.worm.retention_lock` — per-object retention terms and
  litigation holds; deletion is *only* possible after expiry and with
  no hold in force, enforced at the store layer, not by caller
  convention.

The plain WORM baseline in :mod:`repro.baselines.plainworm` reuses this
store without the index/audit/provenance layers on top, reproducing the
paper's observation that WORM alone lacks corrections, trustworthy
indexing, and provenance.
"""

from repro.worm.retention_lock import RetentionLock, RetentionTerm
from repro.worm.store import StoredObject, WormStore

__all__ = ["RetentionLock", "RetentionTerm", "StoredObject", "WormStore"]
