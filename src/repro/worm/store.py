"""The WORM object store.

Objects are opaque byte strings keyed by caller-chosen ids.  Semantics:

* ``put`` writes exactly once — a second put of the same id raises
  :class:`~repro.errors.WormViolationError` even with identical bytes
  (real WORM controllers behave this way; idempotent rewrites would
  mask replay bugs upstream);
* each object carries the SHA-256 of its content, checked on every
  ``get`` — a bit-rotted or tampered object is reported, not returned;
* ``delete`` is gated by the object's retention term and holds (see
  :mod:`repro.worm.retention_lock`), and performs *logical* deletion:
  the slot is tombstoned.  Physical destruction of the bytes is the
  shredder's job (:mod:`repro.retention.shredder`) — the store records
  which device range held the object so the shredder can overwrite it.

The store persists through a :class:`~repro.storage.journal.Journal`,
so everything an insider could tamper with is on the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha256
from repro.errors import (
    IntegrityError,
    RecordNotFoundError,
    RetentionError,
    WormViolationError,
)
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import HEADER_SIZE, Journal
from repro.util.clock import Clock, WallClock
from repro.util.encoding import canonical_bytes, canonical_loads
from repro.util.metrics import METRICS
from repro.worm.retention_lock import RetentionLock, RetentionTerm


@dataclass(frozen=True)
class StoredObject:
    """Metadata for one WORM object."""

    object_id: str
    size: int
    content_digest: bytes
    written_at: float
    journal_sequence: int
    payload_offset: int  # device offset of the object bytes (for shredding)
    data_start: int = 0  # offset of the object bytes within the frame payload
    deleted: bool = False


class WormStore:
    """Write-once object store with retention enforcement."""

    def __init__(
        self,
        device: BlockDevice | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._journal = Journal(device or MemoryDevice("worm-dev", 1 << 24))
        self._clock = clock or WallClock()
        self._objects: dict[str, StoredObject] = {}
        self.retention = RetentionLock()
        # Objects written since the last full digest sweep — the
        # incremental integrity path re-checks these plus a rotating
        # sample of clean ones (see verify_dirty).
        self._dirty: set[str] = set()
        self._clean_cursor = 0
        # Ids tombstoned by expatriation (custody moved away).  Unlike
        # disposal tombstones these may be re-admitted: a migration
        # round-trip brings the same immutable object home again.
        self._expatriated: set[str] = set()

    @property
    def device(self) -> BlockDevice:
        return self._journal.device

    def __len__(self) -> int:
        return sum(1 for meta in self._objects.values() if not meta.deleted)

    def __contains__(self, object_id: str) -> bool:
        meta = self._objects.get(object_id)
        return meta is not None and not meta.deleted

    # -- write --------------------------------------------------------------

    def put(
        self,
        object_id: str,
        data: bytes,
        retention: RetentionTerm | None = None,
    ) -> StoredObject:
        """Write an object exactly once, with an optional retention term.

        When *retention* is omitted, a zero-duration term starting now is
        attached — the object is immediately past retention (but still
        write-once: WORM immutability and retention are independent).
        """
        if object_id in self._objects:
            if object_id in self._expatriated:
                self._readmit(object_id)
            else:
                raise WormViolationError(
                    f"object {object_id} already written (WORM is write-once)"
                )
        written_at = self._clock.now()
        header = canonical_bytes(
            {
                "object_id": object_id,
                "size": len(data),
                "digest": sha256(data),
                "written_at": written_at,
            }
        )
        entry = self._journal.append(header + b"\x00" + data)
        meta = StoredObject(
            object_id=object_id,
            size=len(data),
            content_digest=sha256(data),
            written_at=written_at,
            journal_sequence=entry.sequence,
            payload_offset=entry.offset + HEADER_SIZE + len(header) + 1,
            data_start=len(header) + 1,
        )
        self._objects[object_id] = meta
        self._dirty.add(object_id)
        term = retention or RetentionTerm(start=written_at, duration_seconds=0.0)
        self.retention.set_term(object_id, term)
        return meta

    def put_many(
        self,
        items: list[tuple[str, bytes, RetentionTerm | None]],
    ) -> list[StoredObject]:
        """Write a batch of objects as ONE journal frame.

        The batch is all-or-nothing at the durability layer: a single
        frame carries a single checksum, so a crash that tears the write
        drops the *entire* batch at recovery — there is no prefix of a
        batch that survives.  This is what gives the engine's
        ``store_many`` its atomic acknowledgement semantics.
        """
        if not items:
            return []
        seen: set[str] = set()
        readmit: list[str] = []
        for object_id, _, _ in items:
            if object_id in seen or (
                object_id in self._objects
                and object_id not in self._expatriated
            ):
                raise WormViolationError(
                    f"object {object_id} already written (WORM is write-once)"
                )
            if object_id in self._objects:
                readmit.append(object_id)
            seen.add(object_id)
        for object_id in readmit:
            self._readmit(object_id)
        written_at = self._clock.now()
        digests = [sha256(data) for _, data, _ in items]
        manifest = [
            {
                "object_id": object_id,
                "size": len(data),
                "digest": digest,
                "written_at": written_at,
            }
            for (object_id, data, _), digest in zip(items, digests)
        ]
        header = canonical_bytes({"batch": manifest})
        # One scattered frame: the header chunk plus each object's bytes
        # go to the device by reference — the batch blob is never
        # materialized, and the single frame checksum still makes the
        # whole batch all-or-nothing at recovery.
        chunks: list[bytes] = [header, b"\x00"]
        starts = []
        data_start = len(header) + 1
        for _, data, _ in items:
            starts.append(data_start)
            chunks.append(data)
            data_start += len(data)
        entry = self._journal.append_scattered(chunks)
        metas = []
        for (object_id, data, retention), data_start, digest in zip(
            items, starts, digests
        ):
            meta = StoredObject(
                object_id=object_id,
                size=len(data),
                content_digest=digest,
                written_at=written_at,
                journal_sequence=entry.sequence,
                payload_offset=entry.offset + HEADER_SIZE + data_start,
                data_start=data_start,
            )
            self._objects[object_id] = meta
            self._dirty.add(object_id)
            term = retention or RetentionTerm(start=written_at, duration_seconds=0.0)
            self.retention.set_term(object_id, term)
            metas.append(meta)
        return metas

    # -- read ----------------------------------------------------------------

    def _meta(self, object_id: str) -> StoredObject:
        meta = self._objects.get(object_id)
        if meta is None:
            raise RecordNotFoundError(f"object {object_id} does not exist")
        return meta

    def metadata(self, object_id: str) -> StoredObject:
        """Metadata for an object (including tombstoned ones)."""
        return self._meta(object_id)

    def get(self, object_id: str) -> bytes:
        """Read an object, verifying its content digest."""
        meta = self._meta(object_id)
        if meta.deleted:
            raise RecordNotFoundError(f"object {object_id} was deleted")
        payload = self._journal.read(meta.journal_sequence)
        data = self._extract_data(payload, meta)
        if sha256(data) != meta.content_digest:
            raise IntegrityError(
                f"object {object_id} failed its content digest check"
            )
        return data

    @staticmethod
    def _extract_data(payload: bytes, meta: StoredObject) -> bytes:
        # Objects are sliced by extent: a frame may hold one object or a
        # whole batch, and concatenated object bytes may contain NULs, so
        # the first-NUL heuristic only locates the header boundary.
        start = meta.data_start
        if start == 0:
            # Legacy metadata (no recorded extent): the canonical-JSON
            # header contains no NUL byte, so the first NUL separates it.
            start = payload.index(b"\x00") + 1
        data = payload[start : start + meta.size]
        if len(data) != meta.size:
            raise IntegrityError(
                f"object {meta.object_id}: stored size {len(data)} != {meta.size}"
            )
        return data

    def object_ids(self, include_deleted: bool = False) -> list[str]:
        """Ids of stored objects, sorted."""
        return sorted(
            object_id
            for object_id, meta in self._objects.items()
            if include_deleted or not meta.deleted
        )

    def verify_all(self) -> list[str]:
        """Digest-check every live object; returns ids that fail.

        A clean full sweep resets the dirty set — everything has just
        been read back and checked.  Failing objects stay dirty so the
        incremental path keeps reporting them.
        """
        failures = []
        for object_id in self.object_ids():
            try:
                self.get(object_id)
            except IntegrityError:
                failures.append(object_id)
        METRICS.incr("worm_integrity_objects_checked", len(self))
        self._dirty = set(failures)
        self._clean_cursor = 0
        return failures

    def dirty_ids(self) -> list[str]:
        """Objects written (or found failing) since the last full sweep."""
        return sorted(self._dirty)

    def verify_dirty(self, clean_sample: int = 8) -> list[str]:
        """Digest-check only dirty objects plus a rotating sample of
        clean ones; returns ids that fail.

        The dirty set covers everything that *changed* since the last
        full sweep; the rotating clean sample bounds how long silent
        bit-rot in already-verified objects can hide — every clean
        object is revisited within ``ceil(clean / clean_sample)``
        incremental passes.  Verified dirty objects become clean;
        failures stay (or become) dirty.
        """
        failures = []
        checked = 0
        for object_id in sorted(self._dirty):
            meta = self._objects.get(object_id)
            if meta is None or meta.deleted:
                self._dirty.discard(object_id)
                continue
            checked += 1
            try:
                self.get(object_id)
                self._dirty.discard(object_id)
            except IntegrityError:
                failures.append(object_id)
        clean = [oid for oid in self.object_ids() if oid not in self._dirty]
        if clean and clean_sample > 0:
            count = min(clean_sample, len(clean))
            for step in range(count):
                object_id = clean[(self._clean_cursor + step) % len(clean)]
                checked += 1
                try:
                    self.get(object_id)
                except IntegrityError:
                    failures.append(object_id)
                    self._dirty.add(object_id)
            self._clean_cursor = (self._clean_cursor + count) % len(clean)
        METRICS.incr("worm_integrity_objects_checked", checked)
        return sorted(failures)

    # -- delete -----------------------------------------------------------------

    def delete(self, object_id: str, *, authorization=None) -> StoredObject:
        """Tombstone an object.  Only lawful after retention expiry and
        with no litigation hold; raises :class:`RetentionError` otherwise.

        *authorization*, when provided, must be an allow
        :class:`~repro.policy.model.Decision` for the destruction
        action covering this object (the disposition workflow passes
        its own decision through).  Recovery paths that restore
        tombstones for records whose keys were already lawfully
        shredded pass ``None`` — the retention gate above still holds.
        """
        meta = self._meta(object_id)
        if meta.deleted:
            raise RecordNotFoundError(f"object {object_id} already deleted")
        if authorization is not None:
            from repro.policy.model import ensure_destruction_authorized

            ensure_destruction_authorized(authorization, object_id)
        self.retention.check_deletable(object_id, self._clock.now())
        tombstoned = StoredObject(
            object_id=meta.object_id,
            size=meta.size,
            content_digest=meta.content_digest,
            written_at=meta.written_at,
            journal_sequence=meta.journal_sequence,
            payload_offset=meta.payload_offset,
            data_start=meta.data_start,
            deleted=True,
        )
        self._objects[object_id] = tombstoned
        return tombstoned

    def expatriate(self, object_id: str) -> StoredObject:
        """Tombstone an object whose custody moved to another store.

        Unlike :meth:`delete` this bypasses the retention gate: the data
        is not being destroyed — it lives on, under its original
        retention term, at the migration destination — so refusing to
        drop the source copy would leave two authoritative homes for one
        record, which is the worse compliance failure.  Idempotent, so
        salvage paths can re-run it after a crash.
        """
        meta = self._meta(object_id)
        if meta.deleted:
            return meta
        tombstoned = StoredObject(
            object_id=meta.object_id,
            size=meta.size,
            content_digest=meta.content_digest,
            written_at=meta.written_at,
            journal_sequence=meta.journal_sequence,
            payload_offset=meta.payload_offset,
            data_start=meta.data_start,
            deleted=True,
        )
        self._objects[object_id] = tombstoned
        self._dirty.discard(object_id)
        self._expatriated.add(object_id)
        return tombstoned

    def _readmit(self, object_id: str) -> None:
        """Clear an expatriated tombstone so the same object id can be
        written again.  This is the one sanctioned exception to
        write-once: the incoming bytes are the *same logical object*
        (the migration manifest digest-checks that upstream), merely
        re-sealed by its returning custodian."""
        self._expatriated.discard(object_id)
        self.retention.clear_term(object_id)
        del self._objects[object_id]

    def physical_extent(self, object_id: str) -> tuple[int, int]:
        """(device_offset, size) of the object's raw bytes — consumed by
        the shredder for physical overwrite after logical deletion."""
        meta = self._meta(object_id)
        return meta.payload_offset, meta.size

    def reseal_shredded(self, object_id: str) -> None:
        """Recompute the containing frame's checksum after the shredder
        zeroed *object_id*'s extent.  Certified destruction punches an
        intentional hole; resealing keeps crash recovery from reading it
        as a torn write and discarding the frame's surviving neighbours
        (batch frames hold many objects) and the journal tail."""
        meta = self._meta(object_id)
        self._journal.reseal(meta.journal_sequence)

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(
        cls,
        device: BlockDevice,
        clock: Clock | None = None,
        salvage_check=None,
    ) -> "WormStore":
        """Rebuild the object table from a surviving device image.

        A frame that fails its checksum is dropped *whole* — and because
        a ``put_many`` batch is one frame, a crash-torn batch write
        drops the batch whole: there is never a surviving prefix of an
        acknowledged-atomic batch.

        One legitimate exception: authorized destruction zeroes an
        object's extent inside a frame and then re-seals the frame's
        checksum (:meth:`reseal_shredded`).  A crash *between* the zero
        passes and the reseal leaves a broken frame that is a certified
        hole, not a torn write — dropping it would take the shredded
        object's innocent batch neighbours with it.  ``salvage_check``
        (object_ids → bool), wired by the engine to the key escrow's
        shred tombstones, identifies those frames; recovery completes
        the interrupted reseal and keeps the frame.  Without a
        ``salvage_check``, every broken frame is treated as torn.

        Retention terms are restored as zero-duration terms anchored at
        the recorded write time; the layer that granted longer terms
        re-extends them (see ``CuratorStore.recover_from_devices``).
        """
        store = cls.__new__(cls)
        store._clock = clock or WallClock()
        store._objects = {}
        store.retention = RetentionLock()
        journal = Journal.__new__(Journal)
        journal._device = device
        journal._entries = []
        journal._flush_count = 0
        store._journal = journal
        end = 0
        for frame_offset, payload, checksum_ok in Journal.walk_frames(device):
            separator = payload.find(b"\x00")
            manifest = None
            if separator != -1:
                try:
                    header = canonical_loads(payload[:separator])
                    manifest = header["batch"] if "batch" in header else [header]
                except Exception:  # noqa: BLE001 — damaged or foreign header
                    manifest = None
            if manifest is None:
                continue  # torn/foreign frame: never registered
            if not checksum_ok:
                ids = [item["object_id"] for item in manifest]
                if salvage_check is None or not salvage_check(ids):
                    continue  # torn write: drop the frame whole
                # A shred was interrupted before its reseal — finish it,
                # so the frame's surviving neighbours stay readable.
                Journal.forge_frame(device, frame_offset, payload)
            sequence = len(journal._entries)
            journal._entries.append((frame_offset, len(payload)))
            end = frame_offset + HEADER_SIZE + len(payload)
            data_start = separator + 1
            for item in manifest:
                meta = StoredObject(
                    object_id=item["object_id"],
                    size=item["size"],
                    content_digest=item["digest"],
                    written_at=item.get("written_at", 0.0),
                    journal_sequence=sequence,
                    payload_offset=frame_offset + HEADER_SIZE + data_start,
                    data_start=data_start,
                )
                if meta.object_id in store._objects:
                    # A later frame re-using an id is a WORM re-admission
                    # (migration round trip re-imported an expatriated
                    # object): last frame wins, placeholder term included.
                    store.retention.clear_term(meta.object_id)
                store._objects[meta.object_id] = meta
                store.retention.set_term(
                    meta.object_id,
                    RetentionTerm(start=meta.written_at, duration_seconds=0.0),
                )
                data_start += meta.size
        device.truncate_to(end)
        # Post-crash the device is maximally untrusted: every recovered
        # object is dirty until a digest check clears it.
        store._dirty = set(store._objects)
        store._clean_cursor = 0
        store._expatriated = set()
        return store

    def attempt_overwrite(self, object_id: str, data: bytes) -> None:
        """Explicitly attempt an in-place overwrite; always raises.

        Exists so callers (and tests) exercise the enforcement path
        rather than relying on put()'s duplicate check alone.
        """
        self._meta(object_id)
        raise WormViolationError(
            f"object {object_id} is write-once; corrections must be new versions"
        )
