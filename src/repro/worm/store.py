"""The WORM object store.

Objects are opaque byte strings keyed by caller-chosen ids.  Semantics:

* ``put`` writes exactly once — a second put of the same id raises
  :class:`~repro.errors.WormViolationError` even with identical bytes
  (real WORM controllers behave this way; idempotent rewrites would
  mask replay bugs upstream);
* each object carries the SHA-256 of its content, checked on every
  ``get`` — a bit-rotted or tampered object is reported, not returned;
* ``delete`` is gated by the object's retention term and holds (see
  :mod:`repro.worm.retention_lock`), and performs *logical* deletion:
  the slot is tombstoned.  Physical destruction of the bytes is the
  shredder's job (:mod:`repro.retention.shredder`) — the store records
  which device range held the object so the shredder can overwrite it.

The store persists through a :class:`~repro.storage.journal.Journal`,
so everything an insider could tamper with is on the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha256
from repro.errors import (
    IntegrityError,
    RecordNotFoundError,
    RetentionError,
    WormViolationError,
)
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import HEADER_SIZE, Journal
from repro.util.clock import Clock, WallClock
from repro.util.encoding import canonical_bytes
from repro.worm.retention_lock import RetentionLock, RetentionTerm


@dataclass(frozen=True)
class StoredObject:
    """Metadata for one WORM object."""

    object_id: str
    size: int
    content_digest: bytes
    written_at: float
    journal_sequence: int
    payload_offset: int  # device offset of the object bytes (for shredding)
    deleted: bool = False


class WormStore:
    """Write-once object store with retention enforcement."""

    def __init__(
        self,
        device: BlockDevice | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._journal = Journal(device or MemoryDevice("worm-dev", 1 << 24))
        self._clock = clock or WallClock()
        self._objects: dict[str, StoredObject] = {}
        self.retention = RetentionLock()

    @property
    def device(self) -> BlockDevice:
        return self._journal.device

    def __len__(self) -> int:
        return sum(1 for meta in self._objects.values() if not meta.deleted)

    def __contains__(self, object_id: str) -> bool:
        meta = self._objects.get(object_id)
        return meta is not None and not meta.deleted

    # -- write --------------------------------------------------------------

    def put(
        self,
        object_id: str,
        data: bytes,
        retention: RetentionTerm | None = None,
    ) -> StoredObject:
        """Write an object exactly once, with an optional retention term.

        When *retention* is omitted, a zero-duration term starting now is
        attached — the object is immediately past retention (but still
        write-once: WORM immutability and retention are independent).
        """
        if object_id in self._objects:
            raise WormViolationError(
                f"object {object_id} already written (WORM is write-once)"
            )
        header = canonical_bytes(
            {"object_id": object_id, "size": len(data), "digest": sha256(data)}
        )
        entry = self._journal.append(header + b"\x00" + data)
        payload_offset = entry.offset + HEADER_SIZE + len(header) + 1
        meta = StoredObject(
            object_id=object_id,
            size=len(data),
            content_digest=sha256(data),
            written_at=self._clock.now(),
            journal_sequence=entry.sequence,
            payload_offset=payload_offset,
        )
        self._objects[object_id] = meta
        term = retention or RetentionTerm(start=self._clock.now(), duration_seconds=0.0)
        self.retention.set_term(object_id, term)
        return meta

    # -- read ----------------------------------------------------------------

    def _meta(self, object_id: str) -> StoredObject:
        meta = self._objects.get(object_id)
        if meta is None:
            raise RecordNotFoundError(f"object {object_id} does not exist")
        return meta

    def metadata(self, object_id: str) -> StoredObject:
        """Metadata for an object (including tombstoned ones)."""
        return self._meta(object_id)

    def get(self, object_id: str) -> bytes:
        """Read an object, verifying its content digest."""
        meta = self._meta(object_id)
        if meta.deleted:
            raise RecordNotFoundError(f"object {object_id} was deleted")
        payload = self._journal.read(meta.journal_sequence)
        data = self._extract_data(payload, meta)
        if sha256(data) != meta.content_digest:
            raise IntegrityError(
                f"object {object_id} failed its content digest check"
            )
        return data

    @staticmethod
    def _extract_data(payload: bytes, meta: StoredObject) -> bytes:
        # The canonical-JSON header contains no NUL byte, so the first
        # NUL is the header/data separator.
        separator = payload.index(b"\x00")
        data = payload[separator + 1 :]
        if len(data) != meta.size:
            raise IntegrityError(
                f"object {meta.object_id}: stored size {len(data)} != {meta.size}"
            )
        return data

    def object_ids(self, include_deleted: bool = False) -> list[str]:
        """Ids of stored objects, sorted."""
        return sorted(
            object_id
            for object_id, meta in self._objects.items()
            if include_deleted or not meta.deleted
        )

    def verify_all(self) -> list[str]:
        """Digest-check every live object; returns ids that fail."""
        failures = []
        for object_id in self.object_ids():
            try:
                self.get(object_id)
            except IntegrityError:
                failures.append(object_id)
        return failures

    # -- delete -----------------------------------------------------------------

    def delete(self, object_id: str) -> StoredObject:
        """Tombstone an object.  Only lawful after retention expiry and
        with no litigation hold; raises :class:`RetentionError` otherwise."""
        meta = self._meta(object_id)
        if meta.deleted:
            raise RecordNotFoundError(f"object {object_id} already deleted")
        self.retention.check_deletable(object_id, self._clock.now())
        tombstoned = StoredObject(
            object_id=meta.object_id,
            size=meta.size,
            content_digest=meta.content_digest,
            written_at=meta.written_at,
            journal_sequence=meta.journal_sequence,
            payload_offset=meta.payload_offset,
            deleted=True,
        )
        self._objects[object_id] = tombstoned
        return tombstoned

    def physical_extent(self, object_id: str) -> tuple[int, int]:
        """(device_offset, size) of the object's raw bytes — consumed by
        the shredder for physical overwrite after logical deletion."""
        meta = self._meta(object_id)
        return meta.payload_offset, meta.size

    def attempt_overwrite(self, object_id: str, data: bytes) -> None:
        """Explicitly attempt an in-place overwrite; always raises.

        Exists so callers (and tests) exercise the enforcement path
        rather than relying on put()'s duplicate check alone.
        """
        self._meta(object_id)
        raise WormViolationError(
            f"object {object_id} is write-once; corrections must be new versions"
        )
