"""Retention terms and litigation holds for WORM objects.

A :class:`RetentionTerm` is the promise the store makes at write time:
"this object cannot be deleted before T".  Terms can be *extended*
(regulators sometimes lengthen retention) but never shortened — a
shortened term would let an insider schedule early destruction of
evidence, which is precisely what compliance storage must prevent.

Litigation holds sit on top: while any hold names an object, deletion
is blocked regardless of expiry (spoliation rules trump retention
schedules).
"""

from __future__ import annotations

import math

from dataclasses import dataclass

from repro.errors import RetentionError


@dataclass(frozen=True)
class RetentionTerm:
    """An immutable (start, duration) retention promise."""

    start: float
    duration_seconds: float

    def __post_init__(self) -> None:
        if self.duration_seconds < 0:
            raise RetentionError("retention duration must be non-negative")

    @property
    def expires_at(self) -> float:
        return self.start + self.duration_seconds

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class RetentionLock:
    """Per-object retention state: term + holds, extend-only."""

    def __init__(self) -> None:
        self._terms: dict[str, RetentionTerm] = {}
        self._holds: dict[str, set[str]] = {}

    def set_term(self, object_id: str, term: RetentionTerm) -> None:
        """Attach the initial retention term (write time only)."""
        if object_id in self._terms:
            raise RetentionError(
                f"object {object_id} already has a retention term; use extend_term"
            )
        self._terms[object_id] = term

    def clear_term(self, object_id: str) -> None:
        """Drop an object's term entirely.  Only the WORM store's
        re-admission path uses this: a migration round-trip re-writes an
        expatriated object id, and the incoming copy carries its own
        original term."""
        self._terms.pop(object_id, None)

    def term_for(self, object_id: str) -> RetentionTerm:
        term = self._terms.get(object_id)
        if term is None:
            raise RetentionError(f"object {object_id} has no retention term")
        return term

    def extend_term(self, object_id: str, new_expiry: float) -> RetentionTerm:
        """Lengthen the retention of an object.  Shortening raises."""
        term = self.term_for(object_id)
        if new_expiry < term.expires_at:
            raise RetentionError(
                f"retention terms can only be extended: "
                f"{new_expiry} < {term.expires_at}"
            )
        duration = new_expiry - term.start
        # Guard against float rounding shaving an ulp off the promised
        # expiry: the stored term must never expire before new_expiry.
        while term.start + duration < new_expiry:
            duration = math.nextafter(duration, math.inf)
        extended = RetentionTerm(start=term.start, duration_seconds=duration)
        self._terms[object_id] = extended
        return extended

    # -- holds -------------------------------------------------------------

    def place_hold(self, object_id: str, hold_id: str) -> None:
        """Place a litigation hold naming *object_id*."""
        self.term_for(object_id)  # must exist
        self._holds.setdefault(object_id, set()).add(hold_id)

    def release_hold(self, object_id: str, hold_id: str) -> None:
        holds = self._holds.get(object_id, set())
        if hold_id not in holds:
            raise RetentionError(
                f"no hold {hold_id!r} on object {object_id}"
            )
        holds.discard(hold_id)

    def holds_on(self, object_id: str) -> set[str]:
        return set(self._holds.get(object_id, set()))

    # -- the deletion gate ----------------------------------------------------

    def check_deletable(self, object_id: str, now: float) -> None:
        """Raise :class:`RetentionError` unless deletion is lawful now."""
        term = self.term_for(object_id)
        if not term.expired(now):
            raise RetentionError(
                f"object {object_id} is under retention until {term.expires_at}"
                f" (now {now})"
            )
        holds = self._holds.get(object_id)
        if holds:
            raise RetentionError(
                f"object {object_id} is under litigation hold(s): {sorted(holds)}"
            )

    def is_deletable(self, object_id: str, now: float) -> bool:
        try:
            self.check_deletable(object_id, now)
        except RetentionError:
            return False
        return True

    def expired_objects(self, now: float) -> list[str]:
        """Objects past retention with no hold — the disposition queue."""
        return sorted(
            object_id
            for object_id in self._terms
            if self.is_deletable(object_id, now)
        )
