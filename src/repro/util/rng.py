"""Deterministic random source for workloads and failure injection.

A thin wrapper over :class:`random.Random` that (a) forces an explicit
seed so experiments are reproducible by construction, and (b) adds the
sampling helpers the workload generator and fault injectors need
(weighted choice, zipf-ish skew, bernoulli).
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

from repro.errors import ValidationError

T = TypeVar("T")


class DeterministicRng:
    """Seeded RNG with workload-oriented sampling helpers."""

    def __init__(self, seed: int | str) -> None:
        self._rng = random.Random(seed)
        self._seed = seed

    @property
    def seed(self) -> int | str:
        return self._seed

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValidationError(f"probability must be in [0,1], got {probability}")
        return self._rng.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValidationError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Sample *count* distinct items."""
        if count > len(items):
            raise ValidationError(
                f"cannot sample {count} items from a sequence of {len(items)}"
            )
        return self._rng.sample(list(items), count)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a shuffled copy of *items*."""
        copied = list(items)
        self._rng.shuffle(copied)
        return copied

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choice with explicit weights."""
        if len(items) != len(weights):
            raise ValidationError("items and weights must have equal length")
        if not items:
            raise ValidationError("cannot choose from an empty sequence")
        return self._rng.choices(list(items), weights=list(weights), k=1)[0]

    def zipf_index(self, size: int, skew: float = 1.1) -> int:
        """Index in [0, size) with zipf-like skew (0 is the hottest).

        Used to model hot patients/keywords: a small set of records gets
        most of the accesses, matching real EHR access patterns.
        """
        if size <= 0:
            raise ValidationError("size must be positive")
        if skew <= 0:
            raise ValidationError("skew must be positive")
        weights = [1.0 / ((rank + 1) ** skew) for rank in range(size)]
        return self.weighted_choice(list(range(size)), weights)

    def bytes(self, count: int) -> bytes:
        """Deterministic pseudo-random bytes."""
        if count < 0:
            raise ValidationError("count must be non-negative")
        return self._rng.randbytes(count)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent, reproducible child stream."""
        return DeterministicRng(f"{self._seed}/{label}")
