"""Cheap process-wide performance counters and timers.

The write-path pipeline (batched ingest, keystream/KDF caching,
amortized journal flushes) needs observability to prove its caches hit
and its flushes coalesce — and later PRs need the same hooks to chase
regressions.  This module is the first such hook: named monotonic
counters (``kdf_cache_hits``, ``journal_flush_count`` ...) and
nanosecond accumulators (``encrypt_ns``) that hot paths bump with one
dict operation.

Design constraints:

* **Cheap.**  ``incr`` is a dict ``get`` + add; no locks, no logging,
  no allocation beyond the first touch of a name.  Hot loops (the
  ChaCha20 keystream cache, the journal) call it per operation.
* **No dependencies.**  This module imports nothing from ``repro`` so
  every layer — crypto, storage, index, engine — can use it without
  import cycles.
* **Inspectable anywhere.**  ``METRICS`` is the process-wide registry;
  benchmarks and the CLI dump :meth:`Metrics.snapshot` and tests call
  :meth:`Metrics.reset` between scenarios.

Counters are observability, not audit: nothing here persists, and no
security property may ever depend on a metric value.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Metrics:
    """A registry of named counters (ints, monotonically increasing)."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}

    def incr(self, name: str, delta: int = 1) -> None:
        """Add *delta* to counter *name* (created at 0 on first touch)."""
        self._counters[name] = self._counters.get(name, 0) + delta

    def get(self, name: str) -> int:
        """Current value of *name* (0 if never incremented)."""
        return self._counters.get(name, 0)

    def incr_labelled(self, name: str, label: str, delta: int = 1) -> None:
        """Add *delta* to the labelled counter ``name{label}`` — the
        per-shard flavour the cluster router bumps per routed request
        (``cluster_reads{shard-01}`` ...).  Same cost as :meth:`incr`;
        the label is folded into the counter name."""
        self._counters[f"{name}{{{label}}}"] = (
            self._counters.get(f"{name}{{{label}}}", 0) + delta
        )

    def labelled(self, name: str) -> dict[str, int]:
        """All labels recorded under *name*, as ``{label: value}``."""
        prefix = f"{name}{{"
        return {
            key[len(prefix) : -1]: value
            for key, value in sorted(self._counters.items())
            if key.startswith(prefix) and key.endswith("}")
        }

    def record_max(self, name: str, value: int) -> None:
        """Keep the high-water mark of *value* under *name* (e.g. the
        service's peak admission-queue depth).  Same cost class as
        :meth:`incr`; the counter is monotone like every other."""
        if value > self._counters.get(name, 0):
            self._counters[name] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wrapped block's wall time into ``<name>`` in
        nanoseconds (use names ending in ``_ns`` by convention)."""
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.incr(name, time.perf_counter_ns() - start)

    def ms(self, name: str) -> float:
        """A ``_ns`` accumulator read back in milliseconds (0.0 if
        never touched) — for benchmark tables and CLI reporting."""
        return self._counters.get(name, 0) / 1e6

    def snapshot(self) -> dict[str, int]:
        """All counters, sorted by name (a plain, serializable dict)."""
        return dict(sorted(self._counters.items()))

    def reset(self) -> None:
        """Zero every counter (test/benchmark isolation)."""
        self._counters.clear()


METRICS = Metrics()
"""The process-wide registry every subsystem increments."""
