"""Clock abstraction: wall-clock for production, simulated for tests.

Retention periods in healthcare regulation span decades (OSHA 29 CFR
1910.1020 mandates 30 years).  All retention, expiry, and audit
timestamping in the library is driven through the :class:`Clock`
protocol so that a :class:`SimulatedClock` can run a 30-year experiment
in milliseconds.

Timestamps are POSIX seconds as floats.  Helpers convert to ISO-8601
for human-readable report output.
"""

from __future__ import annotations

import datetime as _dt
import time as _time
from typing import Protocol, runtime_checkable

from repro.errors import ValidationError

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY


@runtime_checkable
class Clock(Protocol):
    """Anything that can report the current POSIX time."""

    def now(self) -> float:
        """Return the current time as POSIX seconds."""
        ...


class WallClock:
    """Real system time."""

    def now(self) -> float:
        return _time.time()


class SimulatedClock:
    """A manually-advanced clock for deterministic long-horizon tests.

    The clock is monotonic by construction: it can only be advanced,
    never rewound, matching the trusted-timestamp assumption compliance
    storage makes about its time source.
    """

    def __init__(self, start: float = 1_500_000_000.0) -> None:
        if start < 0:
            raise ValidationError("clock cannot start before the epoch")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by *seconds* and return the new time."""
        if seconds < 0:
            raise ValidationError("simulated time cannot move backwards")
        self._now += float(seconds)
        return self._now

    def advance_days(self, days: float) -> float:
        """Move time forward by *days*."""
        return self.advance(days * SECONDS_PER_DAY)

    def advance_years(self, years: float) -> float:
        """Move time forward by *years* (Julian years)."""
        return self.advance(years * SECONDS_PER_YEAR)

    def set(self, timestamp: float) -> float:
        """Jump directly to *timestamp* (must not move backwards)."""
        if timestamp < self._now:
            raise ValidationError("simulated time cannot move backwards")
        self._now = float(timestamp)
        return self._now


def isoformat(timestamp: float) -> str:
    """Render a POSIX timestamp as an ISO-8601 UTC string."""
    return _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc).isoformat()
