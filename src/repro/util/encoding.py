"""Canonical, deterministic serialization.

Everything that gets hashed, MACed, or signed in the library goes
through :func:`canonical_bytes`.  The encoding must be *canonical*:
two structurally equal values always produce identical bytes, on any
platform, in any process.  We use JSON with sorted keys, no whitespace,
explicit UTF-8, and a restricted type universe (None, bool, int, float,
str, bytes, list/tuple, dict with str keys).

Bytes values are JSON-unrepresentable, so they are wrapped as
``{"__bytes__": "<hex>"}`` on encode and unwrapped on decode.  Floats
are encoded with :func:`repr` semantics via the default JSON float
formatting, which round-trips exactly in CPython.
"""

from __future__ import annotations

import json
import math
from collections import OrderedDict
from typing import Any, Callable

from repro.errors import ValidationError
from repro.util.metrics import METRICS

_BYTES_KEY = "__bytes__"


def _encode_value(value: Any) -> Any:
    """Recursively convert *value* into a JSON-safe canonical structure."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ValidationError("NaN/Inf floats are not canonically encodable")
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {_BYTES_KEY: bytes(value).hex()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValidationError(
                    f"canonical dict keys must be str, got {type(key).__name__}"
                )
            if key == _BYTES_KEY:
                raise ValidationError(f"dict key {_BYTES_KEY!r} is reserved")
            encoded[key] = _encode_value(item)
        return encoded
    raise ValidationError(
        f"type {type(value).__name__} is not canonically encodable"
    )


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value` (lists stay lists)."""
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_KEY}:
            return bytes.fromhex(value[_BYTES_KEY])
        return {key: _decode_value(item) for key, item in value.items()}
    return value


def canonical_dumps(value: Any) -> str:
    """Serialize *value* to a canonical JSON string.

    Raises :class:`~repro.errors.ValidationError` for values outside the
    canonical type universe.
    """
    return json.dumps(
        _encode_value(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
        allow_nan=False,
    )


def canonical_bytes(value: Any) -> bytes:
    """Serialize *value* to canonical UTF-8 bytes (the hashing input)."""
    return canonical_dumps(value).encode("utf-8")


def canonical_loads(data: str | bytes) -> Any:
    """Parse a canonical JSON document produced by :func:`canonical_dumps`."""
    if isinstance(data, (bytes, bytearray)):
        data = bytes(data).decode("utf-8")
    try:
        raw = json.loads(data)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid canonical document: {exc}") from exc
    return _decode_value(raw)


class IdentityMemo:
    """Memo of derived bytes (canonical encodings, digests) keyed on
    the *identity* of a carrier object.

    Structures that get re-encoded while unchanged — a version chain's
    head re-digested on every correction, a record re-hashed during
    verification — pay full canonical-JSON cost each time.  This memo
    caches the derived bytes per carrier **object**, holding a strong
    reference to pin its ``id()`` (so a recycled id can never alias a
    dead object; entries are also identity-checked on lookup).

    Correctness contract: only use carriers that are immutable for
    their cached lifetime (frozen dataclasses such as
    :class:`~repro.records.versioning.RecordVersion`).  Mutating a
    cached carrier yields stale bytes — the same contract ``dict``
    keys place on ``__hash__``.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValidationError("memo capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, tuple[Any, bytes]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, carrier: Any, compute: Callable[[Any], bytes]) -> bytes:
        """Bytes for *carrier*, computing via ``compute(carrier)`` once."""
        key = id(carrier)
        hit = self._entries.get(key)
        if hit is not None and hit[0] is carrier:
            METRICS.incr("encoding_memo_hits")
            self._entries.move_to_end(key)
            return hit[1]
        METRICS.incr("encoding_memo_misses")
        data = compute(carrier)
        self._entries[key] = (carrier, data)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return data

    def clear(self) -> None:
        self._entries.clear()


def to_hex(data: bytes) -> str:
    """Render bytes as lowercase hex."""
    return bytes(data).hex()


def from_hex(text: str) -> bytes:
    """Parse lowercase/uppercase hex into bytes."""
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise ValidationError(f"invalid hex string: {text!r}") from exc
