"""Cross-cutting utilities: canonical encoding, clocks, ids, validation."""

from repro.util.clock import Clock, SimulatedClock, WallClock, SECONDS_PER_DAY, SECONDS_PER_YEAR
from repro.util.encoding import (
    canonical_dumps,
    canonical_loads,
    canonical_bytes,
    from_hex,
    to_hex,
)
from repro.util.identifiers import IdGenerator, new_id
from repro.util.rng import DeterministicRng
from repro.util.validation import (
    require,
    require_type,
    require_non_empty,
    require_range,
)

__all__ = [
    "Clock",
    "SimulatedClock",
    "WallClock",
    "SECONDS_PER_DAY",
    "SECONDS_PER_YEAR",
    "canonical_dumps",
    "canonical_loads",
    "canonical_bytes",
    "from_hex",
    "to_hex",
    "IdGenerator",
    "new_id",
    "DeterministicRng",
    "require",
    "require_type",
    "require_non_empty",
    "require_range",
]
