"""Identifier generation.

Two modes:

* :func:`new_id` draws from :mod:`secrets` — unique, unpredictable ids
  for production use.
* :class:`IdGenerator` is seeded and deterministic — reproducible ids
  for workloads, tests, and benchmarks, so two runs of an experiment
  produce byte-identical stores.

Ids are ``<prefix>-<16 hex chars>``; the prefix names the entity kind
(``pat`` patient, ``rec`` record, ``evt`` audit event, ...), which makes
logs and forensic reports readable.
"""

from __future__ import annotations

import hashlib
import secrets

from repro.errors import ValidationError

_ID_HEX_LEN = 16


def _check_prefix(prefix: str) -> None:
    if not prefix or not prefix.replace("_", "").isalnum():
        raise ValidationError(f"invalid id prefix: {prefix!r}")


def new_id(prefix: str) -> str:
    """Return a fresh unpredictable id like ``rec-9f2ab04c7d1e55aa``."""
    _check_prefix(prefix)
    return f"{prefix}-{secrets.token_hex(_ID_HEX_LEN // 2)}"


class IdGenerator:
    """Deterministic id factory seeded by a string.

    Successive calls hash ``seed || counter`` so the stream is stable
    across runs and platforms but has no visible sequence structure.
    """

    def __init__(self, seed: str = "repro") -> None:
        self._seed = seed
        self._counter = 0

    def next(self, prefix: str) -> str:
        """Return the next deterministic id for *prefix*."""
        _check_prefix(prefix)
        material = f"{self._seed}:{self._counter}".encode("utf-8")
        digest = hashlib.sha256(material).hexdigest()[:_ID_HEX_LEN]
        self._counter += 1
        return f"{prefix}-{digest}"

    @property
    def issued(self) -> int:
        """How many ids have been issued so far."""
        return self._counter
