"""Tiny validation helpers used at public API boundaries.

The library validates aggressively at its edges (per the HIPAA-derived
requirement that records be accurate) and raises
:class:`~repro.errors.ValidationError` with actionable messages, rather
than letting malformed data propagate into hashed/signed state where it
would be frozen forever.
"""

from __future__ import annotations

from typing import Any, Iterable, Sized

from repro.errors import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition*."""
    if not condition:
        raise ValidationError(message)


def require_type(value: Any, types: type | tuple[type, ...], name: str) -> None:
    """Raise unless *value* is an instance of *types*."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise ValidationError(
            f"{name} must be {expected}, got {type(value).__name__}"
        )


def require_non_empty(value: Sized, name: str) -> None:
    """Raise unless *value* has nonzero length."""
    if len(value) == 0:
        raise ValidationError(f"{name} must not be empty")


def require_range(
    value: float, name: str, low: float | None = None, high: float | None = None
) -> None:
    """Raise unless ``low <= value <= high`` (bounds optional)."""
    if low is not None and value < low:
        raise ValidationError(f"{name} must be >= {low}, got {value}")
    if high is not None and value > high:
        raise ValidationError(f"{name} must be <= {high}, got {value}")


def require_one_of(value: Any, allowed: Iterable[Any], name: str) -> None:
    """Raise unless *value* is one of *allowed*."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {allowed!r}, got {value!r}")
