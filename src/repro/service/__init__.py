"""``repro.service`` — the versioned wire frontend over the cluster.

The paper's requirements do not stop at the storage engine: a records
system is consumed over a network by many principals at once, and the
guarantees (authenticated principals, authorized and audited access,
predictable degradation under load) have to hold at that boundary too.
This package is that boundary:

* :mod:`repro.service.api` — the ``/v1`` wire schema and the stable
  error-code table;
* :mod:`repro.service.auth` — bearer-token sessions (login, refresh
  rotation, revocation) over the challenge-response authenticator;
* :mod:`repro.service.admission` — per-actor token buckets and the
  bounded admission queue, decided by policy;
* :mod:`repro.service.service` — the transport-independent dispatcher
  (routing, authorization, exception mapping, the service audit chain);
* :mod:`repro.service.http` — the asyncio HTTP/1.1 glue;
* :mod:`repro.service.client` — the blocking client the CLI, tests,
  and the E11 load generator use.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.api import ERROR_CODES, SERVICE_CODES, ErrorBody, ErrorCode
from repro.service.auth import SessionBroker, decode_token, encode_token
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import ServiceServer
from repro.service.service import (
    CuratorService,
    Request,
    Response,
    Route,
    ServiceConfig,
)

__all__ = [
    "AdmissionController",
    "CuratorService",
    "ERROR_CODES",
    "ErrorBody",
    "ErrorCode",
    "Request",
    "Response",
    "Route",
    "SERVICE_CODES",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceServer",
    "SessionBroker",
    "TokenBucket",
    "decode_token",
    "encode_token",
]
