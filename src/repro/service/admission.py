"""Admission control: per-actor token buckets and a bounded queue.

A hospital records service degrades *predictably* or it becomes a
clinical hazard: an unbounded backlog turns every read into a timeout
right when an emergency department is hammering the API.  So the front
door admits work through two gates, both expressed as policy decisions
over measured facts (``service_ruleset``):

* **rate** — each authenticated actor owns a token bucket
  (``capacity`` burst, ``refill_per_second`` sustained).  An empty
  bucket is the fact ``rate_exceeded`` → ``deny:service:rate-limited``
  → HTTP 429 with ``Retry-After``.
* **load** — at most ``queue_limit`` requests may be in flight.  Above
  that, ``queue_full`` → ``deny:service:queue-full`` → HTTP 503; a
  draining server rejects everything new with ``draining`` →
  ``deny:service:draining``.

The controller only *measures*; :func:`AdmissionController.admit`
returns the :class:`~repro.policy.model.Decision` so the dispatcher can
audit the denial with its rule id and trace like any other refusal.
"""

from __future__ import annotations

import threading

from repro.policy.compiler import service_ruleset
from repro.policy.engine import PolicyEngine
from repro.policy.model import Decision, PolicyContext
from repro.util.clock import Clock
from repro.util.metrics import METRICS


class TokenBucket:
    """Classic token bucket: ``capacity`` burst, ``refill_per_second``
    sustained rate, lazily refilled on each take."""

    def __init__(self, capacity: float, refill_per_second: float, now: float) -> None:
        self.capacity = capacity
        self.refill_per_second = refill_per_second
        self.tokens = capacity
        self.updated_at = now

    def take(self, now: float) -> bool:
        """Consume one token if available (refills lazily first)."""
        if now > self.updated_at:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self.updated_at) * self.refill_per_second,
            )
            self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until one token will be available (for Retry-After)."""
        if self.tokens >= 1.0:
            return 0.0
        if self.refill_per_second <= 0:
            return 60.0
        return (1.0 - self.tokens) / self.refill_per_second


class AdmissionController:
    """The two load gates, folded into one policy decision per request."""

    def __init__(
        self,
        clock: Clock,
        *,
        queue_limit: int,
        rate_capacity: float,
        rate_refill_per_second: float,
    ) -> None:
        self._clock = clock
        self._queue_limit = queue_limit
        self._rate_capacity = rate_capacity
        self._rate_refill = rate_refill_per_second
        self._policy = PolicyEngine(service_ruleset())
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._in_flight = 0
        self._draining = False

    # -- measurement --------------------------------------------------------

    def _bucket(self, actor_id: str, now: float) -> TokenBucket:
        # lock held by caller
        bucket = self._buckets.get(actor_id)
        if bucket is None:
            bucket = TokenBucket(self._rate_capacity, self._rate_refill, now)
            self._buckets[actor_id] = bucket
        return bucket

    # -- the gate -----------------------------------------------------------

    def admit(self, actor_id: str) -> tuple[Decision, float]:
        """Decide admission for one authenticated request.

        Returns ``(decision, retry_after_seconds)``.  On allow the
        caller MUST pair this with exactly one :meth:`release`.  Denials
        never consume queue slots or tokens beyond the one measured.
        """
        now = self._clock.now()
        with self._lock:
            queue_full = self._in_flight >= self._queue_limit
            # Only charge the bucket when the queue has room — a 503'd
            # request shouldn't also burn the actor's rate budget.
            rate_ok = True
            retry_after = 0.0
            if not self._draining and not queue_full:
                bucket = self._bucket(actor_id, now)
                rate_ok = bucket.take(now)
                if not rate_ok:
                    retry_after = bucket.retry_after(now)
            decision = self._policy.decide(
                actor_id,
                "admit_request",
                context=PolicyContext(
                    facts={
                        "draining": self._draining,
                        "queue_full": queue_full,
                        "rate_exceeded": not rate_ok,
                    }
                ),
            )
            if decision.allowed:
                self._in_flight += 1
                METRICS.record_max("service_queue_peak", self._in_flight)
        return decision, retry_after

    def release(self) -> None:
        """Return the queue slot taken by an admitted request."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)

    # -- lifecycle / introspection ------------------------------------------

    def start_draining(self) -> None:
        """Stop admitting; in-flight work keeps its slots until done."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def queue_limit(self) -> int:
        return self._queue_limit

    def idle(self) -> bool:
        with self._lock:
            return self._in_flight == 0
