"""The asyncio HTTP/1.1 transport (stdlib only, no frameworks).

This layer is deliberately thin: parse bytes into a
:class:`~repro.service.service.Request`, hand it to
:meth:`CuratorService.handle_request` on an executor thread (engine
calls do real crypto and I/O; they must not block the event loop), and
write the :class:`Response` back.  Policy, auth, admission, and audit
all live below in the service core — a unit test that never opens a
socket exercises the identical pipeline.

Transport behaviors owned here:

* **keep-alive** with a bounded idle timeout (closed silently — an
  idle connection is not a request, so it is not audited);
* **slow-client cutoff** — a peer that starts a request but does not
  finish it within ``slow_client_timeout`` gets a structured 408 and
  the connection is closed (slowloris containment);
* **graceful drain** — :meth:`ServiceServer.stop` flips the service to
  draining (new work is refused with 503 ``service_draining``), waits
  for in-flight requests to finish up to ``drain_timeout``, then closes
  the listener.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service import api
from repro.service.service import CuratorService, Request, Response, _Deny

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024
IDLE_KEEPALIVE_SECONDS = 30.0


def _parse_query(raw: str) -> dict[str, str]:
    query: dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[_unquote(key)] = _unquote(value)
    return query


def _unquote(text: str) -> str:
    from urllib.parse import unquote_plus

    return unquote_plus(text)


def _render(response: Response, *, keep_alive: bool) -> bytes:
    body = json.dumps(response.body).encode("utf-8")
    lines = [
        f"HTTP/1.1 {response.status} {_REASONS.get(response.status, 'Status')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceServer:
    """One asyncio server over one :class:`CuratorService`.

    Usable two ways: ``run_forever()`` on the current thread (the CLI's
    ``repro serve``), or ``start()``/``stop()`` with the loop on a
    background thread (tests, benchmarks, the in-process demo).
    """

    def __init__(self, service: CuratorService, executor_workers: int = 16) -> None:
        self.service = service
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="svc"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self.host = service.config.host
        self.port = service.config.port

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[Request | None, str]:
        """Parse one request off the stream.

        Returns ``(request, "")`` on success, ``(None, reason)`` where
        reason is ``"closed"`` (peer gone / idle timeout — drop
        silently) or ``"slow"``/``"oversize"``/``"bad"`` (answer 408/400
        then close).
        """
        try:
            first = await asyncio.wait_for(
                reader.readline(), timeout=IDLE_KEEPALIVE_SECONDS
            )
        except (asyncio.TimeoutError, ConnectionError):
            return None, "closed"
        if not first:
            return None, "closed"

        deadline = time.monotonic() + self.service.config.slow_client_timeout
        try:
            request_line = first.decode("ascii").strip()
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            return None, "bad"

        headers: dict[str, str] = {}
        total = len(first)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None, "slow"
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=remaining)
            except (asyncio.TimeoutError, ConnectionError):
                return None, "slow"
            if not line:
                return None, "closed"
            total += len(line)
            if total > MAX_HEADER_BYTES:
                return None, "oversize"
            text = line.decode("latin-1").rstrip("\r\n")
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()

        body_raw = b""
        length = headers.get("content-length", "0")
        try:
            content_length = int(length)
        except ValueError:
            return None, "bad"
        if content_length > MAX_BODY_BYTES:
            return None, "oversize"
        if content_length:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None, "slow"
            try:
                body_raw = await asyncio.wait_for(
                    reader.readexactly(content_length), timeout=remaining
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, ConnectionError):
                return None, "slow"

        body = None
        if body_raw:
            try:
                body = json.loads(body_raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                return None, "bad"

        path, _, raw_query = target.partition("?")
        bearer = ""
        authorization = headers.get("authorization", "")
        if authorization.lower().startswith("bearer "):
            bearer = authorization[7:].strip()
        return (
            Request(
                method=method.upper(),
                path=path,
                query=_parse_query(raw_query),
                body=body,
                bearer=bearer,
            ),
            "",
        )

    def _transport_reject(self, reason: str) -> Response:
        code_name = "slow_client" if reason == "slow" else "malformed_request"
        message = {
            "slow": "client did not complete the request in time",
            "oversize": "request exceeds the size limits",
            "bad": "request could not be parsed",
        }[reason]
        deny = _Deny(api.SERVICE_CODES[code_name], message)
        return self.service._reject(Request(method="?", path="/"), None, deny)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                request, reason = await self._read_request(reader)
                if request is None:
                    if reason != "closed":
                        rejection = await loop.run_in_executor(
                            self._executor, self._transport_reject, reason
                        )
                        writer.write(_render(rejection, keep_alive=False))
                        await writer.drain()
                    return
                response = await loop.run_in_executor(
                    self._executor, self.service.handle_request, request
                )
                keep_alive = not self.service.admission.draining
                writer.write(_render(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def _serve(self, ready: threading.Event | None = None) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if ready is not None:
            ready.set()
        async with self._server:
            await self._server.serve_forever()

    def run_forever(self) -> None:
        """Serve on the calling thread until KeyboardInterrupt."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            pass

    def start(self) -> "ServiceServer":
        """Serve on a background thread; returns once the socket is
        bound (``self.port`` then holds the real port, so ``port=0``
        works for tests)."""
        def runner() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self._serve(self._started))
            except asyncio.CancelledError:
                pass
            finally:
                # let cancelled connection handlers unwind before the
                # loop closes (else "Task was destroyed but pending")
                pending = asyncio.all_tasks(self._loop)
                if pending:
                    self._loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                self._loop.close()

        self._thread = threading.Thread(target=runner, daemon=True, name="svc-loop")
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("service failed to start within 10s")
        return self

    def stop(self) -> None:
        """Graceful drain, then close the listener and join the loop."""
        self.service.start_draining()
        deadline = time.monotonic() + self.service.config.drain_timeout
        while not self.service.admission.idle() and time.monotonic() < deadline:
            time.sleep(0.02)
        loop, server = self._loop, self._server
        if loop is not None and server is not None:

            def shutdown() -> None:
                server.close()
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            loop.call_soon_threadsafe(shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._executor.shutdown(wait=False)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"
