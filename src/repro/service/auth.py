"""Bearer-token sessions for the wire service.

:class:`SessionBroker` wraps the engine's challenge-response
:class:`~repro.access.sessions.Authenticator` with what a network front
door additionally needs:

* a **wire codec** — the whole :class:`Session` (id, user, validity
  window, HMAC) folded into one opaque base64url bearer string, so the
  client presents a single ``Authorization: Bearer`` header and the
  broker re-verifies the HMAC on every request (stateless check,
  stateful revocation);
* **revocation** — logout and refresh rotation invalidate the old
  session id, so a replayed pre-refresh token fails with its own rule
  (``deny:service:revoked-token``), not a generic 401;
* **one policy decision per validation** — the broker *measures*
  (token HMAC, expiry clock, lockout set, revocation set) and the
  :func:`~repro.policy.compiler.service_ruleset` decides, exactly the
  mechanism/policy split the rest of the codebase uses.  The returned
  :class:`~repro.policy.model.Decision` rides into the error body.
"""

from __future__ import annotations

import base64
import binascii
import threading

from repro.access.sessions import Authenticator, Challenge, Session
from repro.errors import AccessDeniedError
from repro.policy.compiler import service_ruleset
from repro.policy.engine import PolicyEngine
from repro.policy.model import Decision, PolicyContext


class MalformedTokenError(AccessDeniedError):
    """The bearer string does not decode to a session at all."""


def encode_token(session: Session) -> str:
    """Fold a session into one opaque bearer string."""
    material = "|".join(
        (
            session.session_id,
            session.user_id,
            repr(session.issued_at),
            repr(session.expires_at),
            session.token.hex(),
        )
    ).encode("utf-8")
    return base64.urlsafe_b64encode(material).decode("ascii")


def decode_token(token: str) -> Session:
    """Unfold a bearer string; raises :class:`MalformedTokenError` on
    anything that is not five well-typed pipe-joined fields.  No
    authenticity judgement here — that is the broker's policy pass."""
    try:
        material = base64.urlsafe_b64decode(token.encode("ascii")).decode("utf-8")
        session_id, user_id, issued_at, expires_at, mac_hex = material.split("|")
        return Session(
            session_id=session_id,
            user_id=user_id,
            issued_at=float(issued_at),
            expires_at=float(expires_at),
            token=bytes.fromhex(mac_hex),
        )
    except (ValueError, binascii.Error, UnicodeDecodeError) as exc:
        raise MalformedTokenError(f"bearer token is malformed: {exc}") from None


class SessionBroker:
    """Login, validation, refresh, and revocation over an Authenticator.

    Thread-safe: the revocation and active-session sets are guarded, and
    the underlying Authenticator is only called from within the lock (it
    is not itself thread-safe; the service funnels all auth through this
    broker).
    """

    def __init__(self, authenticator: Authenticator) -> None:
        self._auth = authenticator
        self._policy = PolicyEngine(service_ruleset())
        self._lock = threading.Lock()
        self._revoked: set[str] = set()
        self._active: set[str] = set()

    # -- login protocol (pass-through with bookkeeping) ---------------------

    def request_challenge(self, user_id: str) -> Challenge:
        with self._lock:
            return self._auth.request_challenge(user_id)

    def login(self, user_id: str, response: bytes) -> tuple[Session, str]:
        """Verify the challenge response; returns (session, bearer)."""
        with self._lock:
            session = self._auth.login(user_id, response)
            self._active.add(session.session_id)
        return session, encode_token(session)

    # -- per-request validation --------------------------------------------

    def validate_bearer(self, bearer: str) -> tuple[str, Decision]:
        """Authenticate one presented bearer token.

        Returns ``(user_id, decision)`` on allow; raises the decision's
        typed exception (with ``.decision`` attached) on deny, and
        :class:`MalformedTokenError` when the string is not a token.
        One ``decide()`` over all measured facts — the deciding rule id
        tells the wire layer which 401 code to return.
        """
        session = decode_token(bearer)
        with self._lock:
            decision = self._decide(session, "use_session")
        if not decision.allowed:
            raise decision.exception()
        return session.user_id, decision

    def _decide(self, session: Session, action: str) -> Decision:
        # lock held by caller
        return self._policy.decide(
            session.user_id,
            action,
            resource=session.session_id,
            context=PolicyContext(
                facts={
                    "token_valid": self._auth.token_matches(session),
                    "session_expired": self._auth.clock.now() >= session.expires_at,
                    "account_locked": self._auth.is_locked(session.user_id),
                    "session_revoked": session.session_id in self._revoked,
                }
            ),
        )

    # -- rotation / revocation ---------------------------------------------

    def refresh(self, bearer: str) -> tuple[Session, str]:
        """Rotate a still-valid session: mint a fresh one, revoke the
        old id.  A replay of the pre-refresh token is now a
        ``deny:service:revoked-token`` denial."""
        session = decode_token(bearer)
        with self._lock:
            decision = self._decide(session, "use_session")
            if not decision.allowed:
                raise decision.exception()
            fresh = self._auth.reissue(session)
            self._revoked.add(session.session_id)
            self._active.discard(session.session_id)
            self._active.add(fresh.session_id)
        return fresh, encode_token(fresh)

    def logout(self, bearer: str) -> str:
        """Revoke the presented session (idempotent for valid tokens);
        returns the user id for the audit event."""
        session = decode_token(bearer)
        with self._lock:
            decision = self._decide(session, "use_session")
            if not decision.allowed:
                raise decision.exception()
            self._revoked.add(session.session_id)
            self._active.discard(session.session_id)
        return session.user_id

    # -- introspection ------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        with self._lock:
            return len(self._active)

    def enroll(self, user_id: str) -> bytes:
        with self._lock:
            return self._auth.enroll(user_id)
