"""The transport-independent service core.

:class:`CuratorService` owns everything the HTTP layer should not:
routing, session authentication, admission, authorization, dispatch
into :class:`~repro.cluster.router.CuratorCluster`, exception → wire
mapping, and the service's own hash-chained audit log.  The asyncio
glue in :mod:`repro.service.http` only parses bytes into a
:class:`Request` and writes a :class:`Response` back — which is what
makes the whole pipeline testable without a socket.

Invariants the test suite pins:

* **no unauthenticated paths** — every route except the login protocol
  (``challenge``/``login``) and ``healthz`` demands a valid bearer
  token, and :meth:`CuratorService.routes` exposes the flags so the
  oracle test can enumerate rather than trust;
* **no unaudited paths** — every handled request, including every 4xx
  and 5xx (and healthz), appends exactly one
  ``API_REQUEST``/``API_REJECTED`` event to the service chain;
* **no unexplained denials** — authorization flows through
  ``repro.policy`` decisions whose rule id and trace ride back in the
  structured error body.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.access.principals import User
from repro.access.rbac import Permission, Purpose
from repro.access.sessions import Authenticator
from repro.audit.events import AuditAction, AuditEvent
from repro.audit.log import AuditLog
from repro.cluster.router import CuratorCluster
from repro.errors import AccessDeniedError, CuratorError
from repro.policy.compiler import compile_default_ruleset, default_purpose_for
from repro.policy.engine import PolicyEngine
from repro.policy.model import PolicyContext
from repro.records.model import HealthRecord
from repro.service import api
from repro.service.admission import AdmissionController
from repro.service.auth import MalformedTokenError, SessionBroker
from repro.util.clock import Clock
from repro.util.metrics import METRICS


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for the front door (transport + admission + sessions)."""

    host: str = "127.0.0.1"
    port: int = 8471
    queue_limit: int = 64
    rate_capacity: float = 50.0
    rate_refill_per_second: float = 25.0
    slow_client_timeout: float = 5.0
    drain_timeout: float = 10.0


@dataclass(frozen=True)
class Request:
    """One parsed wire request (transport-agnostic)."""

    method: str
    path: str
    query: Mapping[str, str] = field(default_factory=dict)
    body: Any = None
    bearer: str = ""


@dataclass(frozen=True)
class Response:
    """One wire response: status, JSON-able body, extra headers."""

    status: int
    body: Mapping[str, Any]
    headers: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Route:
    """One routing-table entry (introspectable for the oracle test)."""

    method: str
    pattern: str  # "/v1/records/{record_id}"
    auth_required: bool
    audited: bool
    handler_name: str


class _Deny(Exception):
    """Internal: a service-boundary rejection with a fixed wire code."""

    def __init__(self, code: api.ErrorCode, message: str, decision=None, retry_after: float = 0.0):
        super().__init__(message)
        self.code = code
        self.decision = decision
        self.retry_after = retry_after


class CuratorService:
    """The v1 API over one cluster.  Thread-safe: handlers may run on
    any executor thread; shared state (audit chain, broker, admission)
    is internally locked."""

    def __init__(
        self,
        cluster: CuratorCluster,
        config: ServiceConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.cluster = cluster
        self._clock = clock or cluster.config.clock
        self.broker = SessionBroker(
            Authenticator(clock=self._clock)
        )
        self.admission = AdmissionController(
            self._clock,
            queue_limit=self.config.queue_limit,
            rate_capacity=self.config.rate_capacity,
            rate_refill_per_second=self.config.rate_refill_per_second,
        )
        self._policy = PolicyEngine(compile_default_ruleset())
        self._users: dict[str, User] = {}
        self._audit = AuditLog(clock=self._clock)
        self._audit_lock = threading.Lock()
        self._routes: tuple[tuple[Route, Callable[..., Response]], ...] = (
            self._build_routes()
        )

    # ------------------------------------------------------------------
    # enrollment / lifecycle
    # ------------------------------------------------------------------

    def enroll(self, user: User) -> bytes:
        """Register *user* with the cluster and the session broker;
        returns the challenge-response secret for their token."""
        self.cluster.register_user(user)
        self._users[user.user_id] = user
        secret = self.broker.enroll(user.user_id)
        self._append_audit(
            AuditAction.SERVICE_LIFECYCLE,
            "system",
            user.user_id,
            {"event": "enrolled", "roles": sorted(r.value for r in user.roles)},
        )
        return secret

    def start_draining(self) -> None:
        self.admission.start_draining()
        self._append_audit(
            AuditAction.SERVICE_LIFECYCLE, "system", "service", {"event": "draining"}
        )

    def audit_events(self) -> list[AuditEvent]:
        """The service chain (wire-level events, distinct from the
        cluster's per-shard engine chains)."""
        with self._audit_lock:
            return self._audit.events()

    def verify_service_audit(self) -> None:
        with self._audit_lock:
            self._audit.verify_chain()

    def routes(self) -> tuple[Route, ...]:
        return tuple(route for route, _handler in self._routes)

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------

    def handle_request(self, request: Request) -> Response:
        """Route, authenticate, admit, authorize, dispatch, audit."""
        METRICS.incr("service_requests")
        route, handler, params = self._match(request.method, request.path)
        if route is None:
            return self._reject(request, None, _Deny(*self._route_miss(request, handler)))

        actor_id = ""
        try:
            if route.auth_required:
                actor_id = self._authenticate(request.bearer)
                decision, retry_after = self.admission.admit(actor_id)
                if not decision.allowed:
                    code_name = api.RULE_CODES.get(decision.rule_id, "queue_full")
                    raise _Deny(
                        api.SERVICE_CODES[code_name],
                        decision.reason,
                        decision=decision,
                        retry_after=retry_after,
                    )
            else:
                if self.admission.draining and route.handler_name != "healthz":
                    raise _Deny(
                        api.SERVICE_CODES["service_draining"],
                        "service is draining for shutdown",
                    )
        except _Deny as deny:
            return self._reject(request, actor_id or None, deny, route=route)
        except CuratorError as exc:
            return self._reject_exception(request, actor_id or None, exc, route=route)

        try:
            response = handler(request, params, actor_id)
        except _Deny as deny:
            return self._reject(request, actor_id or None, deny, route=route)
        except CuratorError as exc:
            return self._reject_exception(request, actor_id or None, exc, route=route)
        finally:
            if route.auth_required:
                self.admission.release()

        if route.audited:
            self._append_audit(
                AuditAction.API_REQUEST,
                actor_id or "anonymous",
                request.path,
                {
                    "method": request.method,
                    "status": response.status,
                    "handler": route.handler_name,
                },
            )
        METRICS.incr_labelled("service_responses", str(response.status))
        return response

    # -- helpers ------------------------------------------------------------

    def _route_miss(self, request: Request, methods: list[str]):
        if methods:
            return (
                api.SERVICE_CODES["method_not_allowed"],
                f"{request.path} supports {', '.join(sorted(methods))}",
            )
        return (
            api.SERVICE_CODES["unknown_endpoint"],
            f"no such endpoint: {request.method} {request.path}",
        )

    def _match(self, method: str, path: str):
        """Returns (route, handler, params) or (None, allowed_methods, {})."""
        parts = path.strip("/").split("/")
        allowed: list[str] = []
        for route, handler in self._routes:
            pattern = route.pattern.strip("/").split("/")
            if len(pattern) != len(parts):
                continue
            params: dict[str, str] = {}
            for expected, got in zip(pattern, parts):
                if expected.startswith("{") and expected.endswith("}"):
                    params[expected[1:-1]] = got
                elif expected != got:
                    break
            else:
                if route.method == method:
                    return route, handler, params
                allowed.append(route.method)
        return None, allowed, {}

    def _authenticate(self, bearer: str) -> str:
        if not bearer:
            raise _Deny(
                api.SERVICE_CODES["unauthorized"],
                "missing Authorization: Bearer token",
            )
        try:
            user_id, _decision = self.broker.validate_bearer(bearer)
        except MalformedTokenError as exc:
            raise _Deny(api.SERVICE_CODES["malformed_token"], str(exc)) from None
        except AccessDeniedError as exc:
            decision = getattr(exc, "decision", None)
            code_name = "unauthorized"
            if decision is not None:
                code_name = api.RULE_CODES.get(decision.rule_id, "unauthorized")
            raise _Deny(
                api.SERVICE_CODES[code_name], str(exc), decision=decision
            ) from None
        return user_id

    def _user(self, actor_id: str) -> User:
        user = self._users.get(actor_id)
        if user is None:
            raise AccessDeniedError(f"unknown principal {actor_id!r}")
        return user

    def _decide_service(
        self, actor_id: str, permission: Permission, resource: str, patient_id: str = ""
    ) -> None:
        """A service-level authorization (for surfaces the cluster does
        not itself gate, e.g. the merged audit stream)."""
        user = self._user(actor_id)
        decision = self._policy.decide(
            user,
            permission,
            resource=resource,
            context=PolicyContext(
                purpose=default_purpose_for(user), patient_id=patient_id
            ),
        )
        decision.require()

    def _append_audit(
        self,
        action: AuditAction,
        actor_id: str,
        subject_id: str,
        detail: dict[str, Any],
    ) -> None:
        with self._audit_lock:
            self._audit.append(action, actor_id, subject_id, detail)

    def _reject(
        self, request: Request, actor_id: str | None, deny: _Deny, route: Route | None = None
    ) -> Response:
        # NB: Decision.__bool__ is .allowed — a denial is falsy, so
        # presence checks here must be `is not None`.
        decision = deny.decision
        body = api.ErrorBody(
            status=deny.code.status,
            code=deny.code.code,
            message=str(deny),
            rule_id=decision.rule_id if decision is not None else "",
            trace=tuple(decision.trace_dicts()) if decision is not None else (),
        )
        headers = {}
        if deny.retry_after > 0:
            headers["Retry-After"] = str(max(1, int(deny.retry_after + 0.999)))
        self._audit_rejection(request, actor_id, body, route)
        METRICS.incr_labelled("service_denials", body.code)
        METRICS.incr_labelled("service_responses", str(body.status))
        return Response(status=deny.code.status, body=body.to_wire(), headers=headers)

    def _reject_exception(
        self,
        request: Request,
        actor_id: str | None,
        exc: CuratorError,
        route: Route | None = None,
    ) -> Response:
        code = api.code_for_exception(exc)
        decision = getattr(exc, "decision", None)
        body = api.ErrorBody(
            status=code.status,
            code=code.code,
            message=str(exc),
            rule_id=decision.rule_id if decision is not None else "",
            trace=tuple(decision.trace_dicts()) if decision is not None else (),
        )
        self._audit_rejection(request, actor_id, body, route)
        METRICS.incr_labelled("service_denials", body.code)
        METRICS.incr_labelled("service_responses", str(body.status))
        return Response(status=code.status, body=body.to_wire(), headers={})

    def _audit_rejection(
        self,
        request: Request,
        actor_id: str | None,
        body: api.ErrorBody,
        route: Route | None,
    ) -> None:
        detail: dict[str, Any] = {
            "method": request.method,
            "status": body.status,
            "code": body.code,
            "message": body.message,
        }
        if body.rule_id:
            detail["rule"] = body.rule_id
        if route is not None:
            detail["handler"] = route.handler_name
        self._append_audit(
            AuditAction.API_REJECTED,
            actor_id or "anonymous",
            request.path or "/",
            detail,
        )

    @staticmethod
    def _payload(request: Request) -> Mapping[str, Any]:
        if not isinstance(request.body, Mapping):
            raise api.WireError("request body must be a JSON object")
        return request.body

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _build_routes(self):
        def route(method, pattern, handler, *, auth=True, audited=True):
            return (
                Route(method, pattern, auth, audited, handler.__name__.lstrip("_")),
                handler,
            )

        return (
            route("POST", "/v1/auth/challenge", self._challenge, auth=False),
            route("POST", "/v1/auth/login", self._login, auth=False),
            route("POST", "/v1/auth/refresh", self._refresh),
            route("POST", "/v1/auth/logout", self._logout),
            route("GET", "/v1/healthz", self._healthz, auth=False),
            route("POST", "/v1/records", self._store_record),
            route("GET", "/v1/records/{record_id}", self._read_record),
            route(
                "GET",
                "/v1/records/{record_id}/versions/{version}",
                self._read_version,
            ),
            route("GET", "/v1/patients/{patient_id}/records", self._patient_records),
            route("GET", "/v1/search", self._search),
            route("GET", "/v1/audit", self._audit_query),
            route(
                "GET",
                "/v1/audit/disclosures/{patient_id}",
                self._disclosures,
            ),
            route("POST", "/v1/verify", self._verify),
            route("POST", "/v1/break-glass", self._break_glass),
        )

    # -- auth ---------------------------------------------------------------

    def _challenge(self, request: Request, params, actor_id) -> Response:
        req = api.ChallengeRequest.from_wire(self._payload(request))
        challenge = self.broker.request_challenge(req.user_id)
        return Response(
            200,
            api.ChallengeResponse(
                user_id=challenge.user_id,
                nonce_hex=challenge.nonce.hex(),
                issued_at=challenge.issued_at,
            ).to_wire(),
        )

    def _login(self, request: Request, params, actor_id) -> Response:
        req = api.LoginRequest.from_wire(self._payload(request))
        try:
            proof = bytes.fromhex(req.response_hex)
        except ValueError:
            raise api.WireError("field 'response' must be hex") from None
        session, bearer = self.broker.login(req.user_id, proof)
        return Response(
            200,
            api.SessionEnvelope(
                token=bearer,
                session_id=session.session_id,
                user_id=session.user_id,
                issued_at=session.issued_at,
                expires_at=session.expires_at,
            ).to_wire(),
        )

    def _refresh(self, request: Request, params, actor_id) -> Response:
        session, bearer = self.broker.refresh(request.bearer)
        return Response(
            200,
            api.SessionEnvelope(
                token=bearer,
                session_id=session.session_id,
                user_id=session.user_id,
                issued_at=session.issued_at,
                expires_at=session.expires_at,
            ).to_wire(),
        )

    def _logout(self, request: Request, params, actor_id) -> Response:
        user_id = self.broker.logout(request.bearer)
        return Response(200, {"status": "logged_out", "user_id": user_id})

    def _healthz(self, request: Request, params, actor_id) -> Response:
        return Response(
            200,
            api.HealthzResponse(
                status="draining" if self.admission.draining else "ok",
                shards=tuple(self.cluster.shard_ids),
                queue_depth=self.admission.in_flight,
                queue_limit=self.admission.queue_limit,
                active_sessions=self.broker.active_sessions,
                draining=self.admission.draining,
            ).to_wire(),
        )

    # -- records ------------------------------------------------------------

    def _store_record(self, request: Request, params, actor_id) -> Response:
        req = api.StoreRecordRequest.from_wire(self._payload(request))
        record = HealthRecord.from_dict(req.to_wire())
        self.cluster.store(record, author_id=actor_id)
        return Response(
            201,
            api.StoreRecordResponse(
                record_id=record.record_id,
                patient_id=record.patient_id,
                versions=self.cluster.version_count(record.record_id),
            ).to_wire(),
        )

    def _record_envelope(self, record: HealthRecord, version: int) -> Response:
        return Response(
            200,
            api.RecordEnvelope(
                record_id=record.record_id,
                patient_id=record.patient_id,
                record_type=record.record_type.value,
                created_at=record.created_at,
                body=record.body,
                version=version,
            ).to_wire(),
        )

    def _read_record(self, request: Request, params, actor_id) -> Response:
        purpose = None
        if request.query.get("purpose"):
            try:
                purpose = Purpose(request.query["purpose"])
            except ValueError:
                raise api.WireError(
                    f"unknown purpose {request.query['purpose']!r}"
                ) from None
        record = self.cluster.read(
            params["record_id"], actor_id=actor_id, purpose=purpose
        )
        return self._record_envelope(
            record, self.cluster.version_count(record.record_id)
        )

    def _read_version(self, request: Request, params, actor_id) -> Response:
        try:
            version = int(params["version"])
        except ValueError:
            raise api.WireError("version must be an integer") from None
        record = self.cluster.read_version(
            params["record_id"], version, actor_id=actor_id
        )
        return self._record_envelope(record, version)

    def _patient_records(self, request: Request, params, actor_id) -> Response:
        patient_id = params["patient_id"]
        self._decide_service(
            actor_id,
            Permission.SEARCH_RECORDS,
            resource=f"patient:{patient_id}",
            patient_id=patient_id,
        )
        return Response(
            200,
            api.PatientRecordsResponse(
                patient_id=patient_id,
                record_ids=tuple(self.cluster.records_of_patient(patient_id)),
            ).to_wire(),
        )

    def _search(self, request: Request, params, actor_id) -> Response:
        term = request.query.get("term", "")
        if not term:
            raise api.WireError("query parameter 'term' is required")
        hits = self.cluster.search(term, actor_id=actor_id)
        return Response(
            200, api.SearchResponse(term=term, record_ids=tuple(hits)).to_wire()
        )

    # -- audit / verification / break-glass ---------------------------------

    def _audit_query(self, request: Request, params, actor_id) -> Response:
        raw: dict[str, Any] = dict(request.query)
        if "limit" in raw:  # query params arrive as strings
            try:
                raw["limit"] = int(raw["limit"])
            except ValueError:
                raise api.WireError("query parameter 'limit' must be an integer") from None
        req = api.AuditQueryRequest.from_wire(raw)
        self._decide_service(actor_id, Permission.READ_AUDIT_TRAIL, resource="audit")
        events = self.cluster.audit_events()
        if req.actor_id:
            events = [e for e in events if e["actor_id"] == req.actor_id]
        if req.action:
            events = [e for e in events if e["action"] == req.action]
        if req.subject_id:
            events = [e for e in events if e["subject_id"] == req.subject_id]
        total = len(events)
        return Response(
            200,
            api.AuditEventsResponse(
                events=tuple(events[-req.limit :]), total=total
            ).to_wire(),
        )

    def _disclosures(self, request: Request, params, actor_id) -> Response:
        events = self.cluster.accounting_of_disclosures(
            params["patient_id"], actor_id=actor_id
        )
        dicts = tuple(
            e.to_dict() if hasattr(e, "to_dict") else dict(e) for e in events
        )
        return Response(
            200, api.AuditEventsResponse(events=dicts, total=len(dicts)).to_wire()
        )

    def _verify(self, request: Request, params, actor_id) -> Response:
        self._decide_service(actor_id, Permission.READ_AUDIT_TRAIL, resource="audit")
        payload = request.body if isinstance(request.body, Mapping) else {}
        incremental = bool(payload.get("incremental", False))
        integrity = self.cluster.verify_integrity(incremental)
        audit = self.cluster.verify_audit_trail(incremental)
        violations = tuple(integrity.violations) + tuple(audit.violations)
        return Response(
            200,
            api.VerifyResponse(
                ok=integrity.ok and audit.ok,
                integrity_summary=f"{integrity.mode}: {integrity.coverage or 'ok'}",
                audit_summary=f"{audit.mode}: {audit.coverage or 'ok'}",
                violations=violations,
            ).to_wire(),
        )

    def _break_glass(self, request: Request, params, actor_id) -> Response:
        req = api.BreakGlassRequest.from_wire(self._payload(request))
        grant = self.cluster.break_glass(actor_id, req.patient_id, req.justification)
        return Response(
            200,
            api.BreakGlassResponse(
                grant_id=grant.grant_id,
                patient_id=grant.patient_id,
                user_id=grant.user_id,
            ).to_wire(),
        )
