"""The versioned wire schema: typed requests, responses, error codes.

Everything that crosses the service boundary is declared here — the
``/v1`` request and response dataclasses with ``to_wire()`` /
``from_wire()`` round-trip codecs, and the single :data:`ERROR_CODES`
table mapping every public exception in :mod:`repro.errors` to a stable
HTTP status plus a machine-readable code.  Nothing else is allowed on
the wire: no raw tracebacks, no ad-hoc dicts, no internal reprs.

Versioning contract: the ``v1`` shapes are additive-only once shipped.
A field may be added with a default; a field may never change meaning
or disappear.  A breaking change mints ``/v2`` beside ``/v1``.

``from_wire`` raises :class:`WireError` (a :class:`ValidationError`,
so it maps to 400 through the same table) naming the offending field —
the dispatcher turns that into a structured 400 without ever seeing a
``KeyError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import (
    AccessDeniedError,
    AuditError,
    AuthenticationError,
    BackupError,
    ClusterError,
    ComplianceError,
    ConfigurationError,
    ConsentError,
    CryptoError,
    CuratorError,
    DispositionError,
    IndexError_,
    IntegrityError,
    KeyManagementError,
    MigrationError,
    ProvenanceError,
    RecordError,
    RecordNotFoundError,
    RetentionError,
    ValidationError,
    WormViolationError,
)

WIRE_VERSION = "v1"


class WireError(ValidationError):
    """A wire payload failed schema validation (maps to HTTP 400)."""


# ---------------------------------------------------------------------------
# the error-code table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorCode:
    """One stable wire mapping: HTTP status + machine-readable code."""

    status: int
    code: str


#: Exception -> wire mapping, most specific class first; the dispatcher
#: walks it with ``isinstance`` and the FIRST match wins, so a subclass
#: must appear before every one of its bases.  ``CuratorError`` is the
#: terminal catch-all: every library exception maps somewhere, and no
#: handler ever serializes a traceback.
ERROR_CODES: tuple[tuple[type[CuratorError], ErrorCode], ...] = (
    (RecordNotFoundError, ErrorCode(404, "record_not_found")),
    (ConsentError, ErrorCode(403, "consent_denied")),
    (AccessDeniedError, ErrorCode(403, "access_denied")),
    (WireError, ErrorCode(400, "malformed_request")),
    (ValidationError, ErrorCode(400, "validation_error")),
    (DispositionError, ErrorCode(409, "disposition_conflict")),
    (RetentionError, ErrorCode(409, "retention_conflict")),
    (WormViolationError, ErrorCode(409, "worm_violation")),
    (KeyManagementError, ErrorCode(410, "record_destroyed")),
    (IntegrityError, ErrorCode(500, "tamper_detected")),
    (AuthenticationError, ErrorCode(500, "signature_invalid")),
    (CryptoError, ErrorCode(500, "crypto_failure")),
    (AuditError, ErrorCode(500, "audit_failure")),
    (ProvenanceError, ErrorCode(500, "provenance_failure")),
    (IndexError_, ErrorCode(500, "index_failure")),
    (BackupError, ErrorCode(500, "backup_failure")),
    (ComplianceError, ErrorCode(500, "compliance_failure")),
    (MigrationError, ErrorCode(503, "migration_in_progress")),
    (ClusterError, ErrorCode(503, "cluster_unavailable")),
    (RecordError, ErrorCode(422, "record_conflict")),
    (ConfigurationError, ErrorCode(500, "misconfigured")),
    (CuratorError, ErrorCode(500, "internal_error")),
)

#: Service-boundary conditions that never raise a library exception:
#: admission, authentication transport, and routing outcomes.  Same
#: stability contract as :data:`ERROR_CODES`.
SERVICE_CODES: Mapping[str, ErrorCode] = {
    "unauthorized": ErrorCode(401, "unauthorized"),
    "session_expired": ErrorCode(401, "session_expired"),
    "session_revoked": ErrorCode(401, "session_revoked"),
    "account_locked": ErrorCode(401, "account_locked"),
    "malformed_token": ErrorCode(401, "malformed_token"),
    "rate_limited": ErrorCode(429, "rate_limited"),
    "queue_full": ErrorCode(503, "queue_full"),
    "service_draining": ErrorCode(503, "service_draining"),
    "slow_client": ErrorCode(408, "slow_client"),
    "unknown_endpoint": ErrorCode(404, "unknown_endpoint"),
    "method_not_allowed": ErrorCode(405, "method_not_allowed"),
    "malformed_request": ErrorCode(400, "malformed_request"),
}

#: Session/service policy rule id -> the 401-family code the denial
#: maps to on the wire (anything unlisted is plain ``unauthorized``).
RULE_CODES: Mapping[str, str] = {
    "deny:session:expired": "session_expired",
    "deny:service:revoked-token": "session_revoked",
    "deny:session:locked": "account_locked",
    "deny:service:rate-limited": "rate_limited",
    "deny:service:queue-full": "queue_full",
    "deny:service:draining": "service_draining",
}


def code_for_exception(exc: BaseException) -> ErrorCode:
    """The wire mapping for *exc*: first ``isinstance`` match in
    :data:`ERROR_CODES`; non-library exceptions are an opaque 500."""
    for exc_type, code in ERROR_CODES:
        if isinstance(exc, exc_type):
            return code
    return ErrorCode(500, "internal_error")


# ---------------------------------------------------------------------------
# wire codec plumbing
# ---------------------------------------------------------------------------


def _take(payload: Mapping[str, Any], name: str, kind: type, *, optional: bool = False, default: Any = None) -> Any:
    if not isinstance(payload, Mapping):
        raise WireError(f"expected a JSON object, got {type(payload).__name__}")
    if name not in payload:
        if optional:
            return default
        raise WireError(f"missing required field {name!r}")
    value = payload[name]
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or (kind is not bool and isinstance(value, bool)):
        raise WireError(
            f"field {name!r} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _take_str_list(payload: Mapping[str, Any], name: str) -> tuple[str, ...]:
    value = _take(payload, name, list, optional=True, default=[])
    for item in value:
        if not isinstance(item, str):
            raise WireError(f"field {name!r} must be a list of strings")
    return tuple(value)


# ---------------------------------------------------------------------------
# auth
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChallengeRequest:
    """POST /v1/auth/challenge — step 1 of the login protocol."""

    user_id: str

    def to_wire(self) -> dict[str, Any]:
        return {"user_id": self.user_id}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "ChallengeRequest":
        return cls(user_id=_take(payload, "user_id", str))


@dataclass(frozen=True)
class ChallengeResponse:
    """The nonce the client must HMAC with its enrollment secret."""

    user_id: str
    nonce_hex: str
    issued_at: float

    def to_wire(self) -> dict[str, Any]:
        return {
            "user_id": self.user_id,
            "nonce": self.nonce_hex,
            "issued_at": self.issued_at,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "ChallengeResponse":
        return cls(
            user_id=_take(payload, "user_id", str),
            nonce_hex=_take(payload, "nonce", str),
            issued_at=_take(payload, "issued_at", float),
        )


@dataclass(frozen=True)
class LoginRequest:
    """POST /v1/auth/login — step 2: prove possession of the secret."""

    user_id: str
    response_hex: str

    def to_wire(self) -> dict[str, Any]:
        return {"user_id": self.user_id, "response": self.response_hex}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "LoginRequest":
        return cls(
            user_id=_take(payload, "user_id", str),
            response_hex=_take(payload, "response", str),
        )


@dataclass(frozen=True)
class SessionEnvelope:
    """A live session: the bearer token plus its public fields."""

    token: str
    session_id: str
    user_id: str
    issued_at: float
    expires_at: float

    def to_wire(self) -> dict[str, Any]:
        return {
            "token": self.token,
            "session_id": self.session_id,
            "user_id": self.user_id,
            "issued_at": self.issued_at,
            "expires_at": self.expires_at,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "SessionEnvelope":
        return cls(
            token=_take(payload, "token", str),
            session_id=_take(payload, "session_id", str),
            user_id=_take(payload, "user_id", str),
            issued_at=_take(payload, "issued_at", float),
            expires_at=_take(payload, "expires_at", float),
        )


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StoreRecordRequest:
    """POST /v1/records — create one record, attributed to the session
    actor (there is no author field on the wire: the author is whoever
    authenticated — that is the point of the front door)."""

    record_id: str
    patient_id: str
    record_type: str
    created_at: float
    body: Mapping[str, Any]

    def to_wire(self) -> dict[str, Any]:
        return {
            "record_id": self.record_id,
            "patient_id": self.patient_id,
            "record_type": self.record_type,
            "created_at": self.created_at,
            "body": dict(self.body),
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "StoreRecordRequest":
        return cls(
            record_id=_take(payload, "record_id", str),
            patient_id=_take(payload, "patient_id", str),
            record_type=_take(payload, "record_type", str),
            created_at=_take(payload, "created_at", float),
            body=_take(payload, "body", dict),
        )


@dataclass(frozen=True)
class StoreRecordResponse:
    record_id: str
    patient_id: str
    versions: int

    def to_wire(self) -> dict[str, Any]:
        return {
            "record_id": self.record_id,
            "patient_id": self.patient_id,
            "versions": self.versions,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "StoreRecordResponse":
        return cls(
            record_id=_take(payload, "record_id", str),
            patient_id=_take(payload, "patient_id", str),
            versions=_take(payload, "versions", int),
        )


@dataclass(frozen=True)
class RecordEnvelope:
    """GET /v1/records/{id} — one decrypted, verified record."""

    record_id: str
    patient_id: str
    record_type: str
    created_at: float
    body: Mapping[str, Any]
    version: int

    def to_wire(self) -> dict[str, Any]:
        return {
            "record_id": self.record_id,
            "patient_id": self.patient_id,
            "record_type": self.record_type,
            "created_at": self.created_at,
            "body": dict(self.body),
            "version": self.version,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "RecordEnvelope":
        return cls(
            record_id=_take(payload, "record_id", str),
            patient_id=_take(payload, "patient_id", str),
            record_type=_take(payload, "record_type", str),
            created_at=_take(payload, "created_at", float),
            body=_take(payload, "body", dict),
            version=_take(payload, "version", int),
        )


@dataclass(frozen=True)
class SearchResponse:
    term: str
    record_ids: tuple[str, ...]

    def to_wire(self) -> dict[str, Any]:
        return {"term": self.term, "record_ids": list(self.record_ids)}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "SearchResponse":
        return cls(
            term=_take(payload, "term", str),
            record_ids=_take_str_list(payload, "record_ids"),
        )


@dataclass(frozen=True)
class PatientRecordsResponse:
    patient_id: str
    record_ids: tuple[str, ...]

    def to_wire(self) -> dict[str, Any]:
        return {"patient_id": self.patient_id, "record_ids": list(self.record_ids)}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "PatientRecordsResponse":
        return cls(
            patient_id=_take(payload, "patient_id", str),
            record_ids=_take_str_list(payload, "record_ids"),
        )


# ---------------------------------------------------------------------------
# audit / verification / break-glass
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AuditQueryRequest:
    """GET /v1/audit — filtered slice of the merged audit stream."""

    actor_id: str = ""
    action: str = ""
    subject_id: str = ""
    limit: int = 100

    def to_wire(self) -> dict[str, Any]:
        return {
            "actor_id": self.actor_id,
            "action": self.action,
            "subject_id": self.subject_id,
            "limit": self.limit,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "AuditQueryRequest":
        limit = _take(payload, "limit", int, optional=True, default=100)
        if limit < 1:
            raise WireError("field 'limit' must be >= 1")
        return cls(
            actor_id=_take(payload, "actor_id", str, optional=True, default=""),
            action=_take(payload, "action", str, optional=True, default=""),
            subject_id=_take(payload, "subject_id", str, optional=True, default=""),
            limit=limit,
        )


@dataclass(frozen=True)
class AuditEventsResponse:
    events: tuple[Mapping[str, Any], ...]
    total: int

    def to_wire(self) -> dict[str, Any]:
        return {"events": [dict(e) for e in self.events], "total": self.total}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "AuditEventsResponse":
        events = _take(payload, "events", list)
        for item in events:
            if not isinstance(item, Mapping):
                raise WireError("field 'events' must be a list of objects")
        return cls(
            events=tuple(dict(e) for e in events),
            total=_take(payload, "total", int),
        )


@dataclass(frozen=True)
class VerifyResponse:
    """POST /v1/verify — merged integrity + audit verification."""

    ok: bool
    integrity_summary: str
    audit_summary: str
    violations: tuple[str, ...] = ()

    def to_wire(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "integrity": self.integrity_summary,
            "audit": self.audit_summary,
            "violations": list(self.violations),
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "VerifyResponse":
        return cls(
            ok=_take(payload, "ok", bool),
            integrity_summary=_take(payload, "integrity", str),
            audit_summary=_take(payload, "audit", str),
            violations=_take_str_list(payload, "violations"),
        )


@dataclass(frozen=True)
class BreakGlassRequest:
    patient_id: str
    justification: str

    def to_wire(self) -> dict[str, Any]:
        return {"patient_id": self.patient_id, "justification": self.justification}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "BreakGlassRequest":
        justification = _take(payload, "justification", str)
        if not justification.strip():
            raise WireError("field 'justification' must not be blank")
        return cls(
            patient_id=_take(payload, "patient_id", str),
            justification=justification,
        )


@dataclass(frozen=True)
class BreakGlassResponse:
    grant_id: str
    patient_id: str
    user_id: str

    def to_wire(self) -> dict[str, Any]:
        return {
            "grant_id": self.grant_id,
            "patient_id": self.patient_id,
            "user_id": self.user_id,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "BreakGlassResponse":
        return cls(
            grant_id=_take(payload, "grant_id", str),
            patient_id=_take(payload, "patient_id", str),
            user_id=_take(payload, "user_id", str),
        )


@dataclass(frozen=True)
class HealthzResponse:
    """GET /v1/healthz — liveness plus shard and queue status."""

    status: str
    shards: tuple[str, ...]
    queue_depth: int
    queue_limit: int
    active_sessions: int
    draining: bool

    def to_wire(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "shards": list(self.shards),
            "queue_depth": self.queue_depth,
            "queue_limit": self.queue_limit,
            "active_sessions": self.active_sessions,
            "draining": self.draining,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "HealthzResponse":
        return cls(
            status=_take(payload, "status", str),
            shards=_take_str_list(payload, "shards"),
            queue_depth=_take(payload, "queue_depth", int),
            queue_limit=_take(payload, "queue_limit", int),
            active_sessions=_take(payload, "active_sessions", int),
            draining=_take(payload, "draining", bool),
        )


@dataclass(frozen=True)
class ErrorBody:
    """Every non-2xx body: status, stable code, human message, and —
    when the rejection was a policy decision — the deciding rule id and
    full consultation trace (HIPAA audits ask *why*)."""

    status: int
    code: str
    message: str
    rule_id: str = ""
    trace: tuple[Mapping[str, Any], ...] = field(default_factory=tuple)

    def to_wire(self) -> dict[str, Any]:
        body: dict[str, Any] = {
            "error": {
                "status": self.status,
                "code": self.code,
                "message": self.message,
            }
        }
        if self.rule_id:
            body["error"]["rule_id"] = self.rule_id
        if self.trace:
            body["error"]["trace"] = [dict(t) for t in self.trace]
        return body

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "ErrorBody":
        error = _take(payload, "error", dict)
        trace = error.get("trace", [])
        if not isinstance(trace, list) or any(
            not isinstance(t, Mapping) for t in trace
        ):
            raise WireError("field 'error.trace' must be a list of objects")
        return cls(
            status=_take(error, "status", int),
            code=_take(error, "code", str),
            message=_take(error, "message", str),
            rule_id=_take(error, "rule_id", str, optional=True, default=""),
            trace=tuple(dict(t) for t in trace),
        )


#: Every wire type, for the round-trip test to enumerate.
WIRE_TYPES: tuple[type, ...] = (
    ChallengeRequest,
    ChallengeResponse,
    LoginRequest,
    SessionEnvelope,
    StoreRecordRequest,
    StoreRecordResponse,
    RecordEnvelope,
    SearchResponse,
    PatientRecordsResponse,
    AuditQueryRequest,
    AuditEventsResponse,
    VerifyResponse,
    BreakGlassRequest,
    BreakGlassResponse,
    HealthzResponse,
    ErrorBody,
)
