"""A blocking v1 API client (stdlib ``http.client``, keep-alive).

This is the only way the CLI, the tests' end-to-end paths, and the E11
load generator talk to the service — everything goes over the wire, so
nothing can accidentally bypass authentication, admission, or audit.

:class:`ServiceClient` is one connection = one session: it keeps a
persistent HTTP connection (reconnecting transparently if the server
closed it) and attaches its bearer token to every call.  Errors come
back as :class:`ServiceClientError` carrying the structured
:class:`~repro.service.api.ErrorBody` — status, stable code, message,
and the policy rule id / trace when the rejection was a decision.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping

from repro.access.sessions import Authenticator, Challenge
from repro.service import api


class ServiceClientError(Exception):
    """A non-2xx wire response, with the structured error body."""

    def __init__(self, error: api.ErrorBody, retry_after: float = 0.0) -> None:
        super().__init__(f"{error.status} {error.code}: {error.message}")
        self.error = error
        self.status = error.status
        self.code = error.code
        self.rule_id = error.rule_id
        self.trace = error.trace
        self.retry_after = retry_after


class ServiceClient:
    """One authenticated client session against a running service."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.bearer = ""
        self.user_id = ""
        self._conn: http.client.HTTPConnection | None = None

    # -- transport ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        *,
        bearer: str | None = None,
    ) -> dict[str, Any]:
        """One wire round trip; raises :class:`ServiceClientError` on
        any non-2xx.  Retries exactly once on a dropped keep-alive
        connection (the server may have idle-closed it)."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        token = self.bearer if bearer is None else bearer
        if token:
            headers["Authorization"] = f"Bearer {token}"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        data = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status >= 300:
            retry_after = float(response.getheader("Retry-After") or 0)
            raise ServiceClientError(api.ErrorBody.from_wire(data), retry_after)
        return data

    # -- auth ---------------------------------------------------------------

    def login(self, user_id: str, secret: bytes) -> api.SessionEnvelope:
        """Run the full challenge-response protocol over the wire."""
        challenge_wire = self.request(
            "POST", "/v1/auth/challenge", api.ChallengeRequest(user_id).to_wire()
        )
        challenge = api.ChallengeResponse.from_wire(challenge_wire)
        proof = Authenticator.respond(
            secret,
            Challenge(
                user_id=challenge.user_id,
                nonce=bytes.fromhex(challenge.nonce_hex),
                issued_at=challenge.issued_at,
            ),
        )
        session_wire = self.request(
            "POST",
            "/v1/auth/login",
            api.LoginRequest(user_id=user_id, response_hex=proof.hex()).to_wire(),
        )
        envelope = api.SessionEnvelope.from_wire(session_wire)
        self.bearer = envelope.token
        self.user_id = envelope.user_id
        return envelope

    def refresh(self) -> api.SessionEnvelope:
        envelope = api.SessionEnvelope.from_wire(
            self.request("POST", "/v1/auth/refresh", {})
        )
        self.bearer = envelope.token
        return envelope

    def logout(self) -> None:
        self.request("POST", "/v1/auth/logout", {})
        self.bearer = ""

    # -- records ------------------------------------------------------------

    def store(self, record: Mapping[str, Any]) -> api.StoreRecordResponse:
        """``record`` is the canonical dict form (``HealthRecord.to_dict``)."""
        return api.StoreRecordResponse.from_wire(
            self.request(
                "POST",
                "/v1/records",
                api.StoreRecordRequest.from_wire(record).to_wire(),
            )
        )

    def read(self, record_id: str, purpose: str = "") -> api.RecordEnvelope:
        path = f"/v1/records/{record_id}"
        if purpose:
            path += f"?purpose={purpose}"
        return api.RecordEnvelope.from_wire(self.request("GET", path))

    def read_version(self, record_id: str, version: int) -> api.RecordEnvelope:
        return api.RecordEnvelope.from_wire(
            self.request("GET", f"/v1/records/{record_id}/versions/{version}")
        )

    def patient_records(self, patient_id: str) -> api.PatientRecordsResponse:
        return api.PatientRecordsResponse.from_wire(
            self.request("GET", f"/v1/patients/{patient_id}/records")
        )

    def search(self, term: str) -> api.SearchResponse:
        return api.SearchResponse.from_wire(self.request("GET", f"/v1/search?term={term}"))

    # -- audit / verify / break-glass ---------------------------------------

    def audit_query(
        self, actor_id: str = "", action: str = "", subject_id: str = "", limit: int = 100
    ) -> api.AuditEventsResponse:
        params = [f"limit={limit}"]
        if actor_id:
            params.append(f"actor_id={actor_id}")
        if action:
            params.append(f"action={action}")
        if subject_id:
            params.append(f"subject_id={subject_id}")
        return api.AuditEventsResponse.from_wire(
            self.request("GET", "/v1/audit?" + "&".join(params))
        )

    def disclosures(self, patient_id: str) -> api.AuditEventsResponse:
        return api.AuditEventsResponse.from_wire(
            self.request("GET", f"/v1/audit/disclosures/{patient_id}")
        )

    def verify(self, incremental: bool = False) -> api.VerifyResponse:
        return api.VerifyResponse.from_wire(
            self.request("POST", "/v1/verify", {"incremental": incremental})
        )

    def break_glass(self, patient_id: str, justification: str) -> api.BreakGlassResponse:
        return api.BreakGlassResponse.from_wire(
            self.request(
                "POST",
                "/v1/break-glass",
                api.BreakGlassRequest(patient_id, justification).to_wire(),
            )
        )

    def healthz(self) -> api.HealthzResponse:
        return api.HealthzResponse.from_wire(self.request("GET", "/v1/healthz"))
