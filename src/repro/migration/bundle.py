"""Per-patient migration bundles for online rebalancing.

A :class:`PatientBundle` is everything one patient's history is made of,
decoupled from any shard's key hierarchy: version plaintexts (as
canonical dicts), attachment bytes, the retention state each WORM object
carried, the patient's audit-chain segment, and two signed artifacts —
a :class:`~repro.migration.manifest.MigrationManifest` over the moved
extents' *plaintext* digests, and a chain-continuity attestation binding
the segment to the source shard's audit head.

The plaintext digests are the point: each shard seals data under its own
derived master key, so ciphertexts cannot move between shards — but the
digest of ``canonical_bytes(version.to_dict())`` is key-independent, and
the destination can recompute it after re-sealing and prove, entry by
entry, that what it holds is what the source signed.

Bundles cross a process boundary in worker mode, so every field is
plain-data picklable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signatures import SignedPayload
from repro.migration.manifest import MigrationManifest


@dataclass(frozen=True)
class AttachmentBundle:
    """One attachment's plaintext and the metadata to re-seal it."""

    attachment_id: str
    content_type: str
    data: bytes
    #: (start, duration_seconds) of the retention term the chunks carried.
    term: tuple[float, float]


@dataclass(frozen=True)
class RecordBundle:
    """One record's full history, key-independent."""

    record_id: str
    #: ``RecordVersion.to_dict()`` in version order — linkage is
    #: re-verified by ``VersionChain.from_versions`` at import.
    versions: tuple[dict, ...]
    #: ``(object_id, start, duration_seconds)`` — the exact retention
    #: term of every version object, re-attached verbatim at import.
    terms: tuple[tuple[str, float, float], ...]
    #: ``(object_id, (hold_id, ...))`` — litigation holds survive moves.
    holds: tuple[tuple[str, tuple[str, ...]], ...]
    attachments: tuple[AttachmentBundle, ...]


@dataclass(frozen=True)
class PatientBundle:
    """Everything required to re-home one patient on another shard."""

    patient_id: str
    source_id: str
    exported_at: float
    records: tuple[RecordBundle, ...]
    #: The patient's audit-chain segment: every source-log event whose
    #: subject is one of the patient's records (or their attachments),
    #: plus any segment imported by an earlier move (chained custody).
    segment: tuple[dict, ...]
    #: Source-signed binding of the segment digest to the source audit
    #: chain head and log size at export time.
    attestation: SignedPayload
    #: Signed Merkle manifest over the moved extents' plaintext digests.
    manifest: MigrationManifest

    @property
    def record_ids(self) -> tuple[str, ...]:
        return tuple(bundle.record_id for bundle in self.records)
