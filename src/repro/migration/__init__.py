"""Trustworthy, verifiable migration between stores.

Records outlive hardware: 30-year retention (OSHA) guarantees several
generations of media and formats, so the paper requires migration that
is "trustworthy, and verifiable".  Protocol implemented here:

1. **Manifest** (:mod:`repro.migration.manifest`) — the source
   enumerates every live object with its content digest, computes the
   Merkle root over the digest set, and *signs* the manifest.
2. **Copy** (:mod:`repro.migration.engine`) — objects move to the
   destination store; each arrival is digest-checked immediately.
3. **Verify** — the destination independently recomputes the manifest
   from its own storage and checks: completeness (every manifest entry
   present), integrity (digests match), and no extras (nothing was
   injected in transit).  The Merkle root makes the check a single
   comparison, with per-object localization when it fails.
4. **Custody transfer** — on success, a signed custody event moves
   responsibility to the destination (see :mod:`repro.provenance`).

Failure injection in E6 demonstrates that dropped, altered, and
injected objects are all caught before custody transfers.
"""

from repro.migration.engine import MigrationEngine, MigrationResult
from repro.migration.manifest import MigrationManifest, build_manifest

__all__ = ["MigrationEngine", "MigrationResult", "MigrationManifest", "build_manifest"]
