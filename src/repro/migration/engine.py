"""The migration executor and destination-side verification.

The engine copies objects between WORM stores and verifies the result
against the source's signed manifest.  It supports a fault hook so
experiments can inject transit corruption, drops, and injections, and
proves that every such fault is caught *before* custody transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.crypto.hashing import sha256
from repro.crypto.signatures import Signer, TrustStore
from repro.errors import MigrationError
from repro.migration.manifest import MigrationManifest, build_manifest, verify_manifest
from repro.provenance.chain import CustodyRegistry
from repro.util.clock import Clock, WallClock
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore

TransitHook = Callable[[str, bytes], bytes | None]
"""Fault-injection hook: receives (object_id, data); returns the bytes
to deliver, or None to drop the object in transit."""


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of one verified migration."""

    source_id: str
    destination_id: str
    manifest: MigrationManifest
    copied: int
    verified: bool
    missing: tuple[str, ...] = ()
    corrupted: tuple[str, ...] = ()
    unexpected: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.verified and not (self.missing or self.corrupted or self.unexpected)


class MigrationEngine:
    """Runs manifest → copy → verify → custody-transfer migrations."""

    def __init__(
        self,
        trust: TrustStore,
        clock: Clock | None = None,
        custody: CustodyRegistry | None = None,
    ) -> None:
        self._trust = trust
        self._clock = clock or WallClock()
        self._custody = custody

    def migrate(
        self,
        source: WormStore,
        destination: WormStore,
        source_signer: Signer,
        destination_id: str,
        transit_hook: TransitHook | None = None,
        preserve_retention: bool = True,
    ) -> MigrationResult:
        """Migrate all live objects; verification is never optional.

        On verification failure the result reports exactly which objects
        were lost, altered, or injected; custody does NOT transfer.
        """
        manifest = build_manifest(source, source_signer, self._clock.now())
        verify_manifest(manifest, self._trust)

        copied = 0
        for object_id in manifest.object_ids():
            data = source.get(object_id)
            if transit_hook is not None:
                delivered = transit_hook(object_id, data)
                if delivered is None:
                    continue  # dropped in transit
                data = delivered
            retention = None
            if preserve_retention:
                term = source.retention.term_for(object_id)
                retention = RetentionTerm(
                    start=term.start, duration_seconds=term.duration_seconds
                )
            destination.put(object_id, data, retention=retention)
            copied += 1

        missing, corrupted, unexpected = self.verify_against_manifest(
            destination, manifest
        )
        verified = not (missing or corrupted or unexpected)
        result = MigrationResult(
            source_id=manifest.source_id,
            destination_id=destination_id,
            manifest=manifest,
            copied=copied,
            verified=verified,
            missing=tuple(missing),
            corrupted=tuple(corrupted),
            unexpected=tuple(unexpected),
        )
        if verified and self._custody is not None:
            for object_id in manifest.object_ids():
                self._custody.record_transfer(
                    object_id=object_id,
                    releasing=source_signer,
                    receiving_id=destination_id,
                    object_digest=manifest.digest_for(object_id),
                    timestamp=self._clock.now(),
                    reason="migration",
                )
        return result

    @staticmethod
    def verify_against_manifest(
        destination: WormStore, manifest: MigrationManifest
    ) -> tuple[list[str], list[str], list[str]]:
        """Destination-side audit: returns (missing, corrupted, unexpected)."""
        missing: list[str] = []
        corrupted: list[str] = []
        present = set(destination.object_ids())
        expected = set(manifest.object_ids())
        for object_id in manifest.object_ids():
            if object_id not in present:
                missing.append(object_id)
                continue
            data = destination.get(object_id)  # digest-checked read
            if sha256(data) != manifest.digest_for(object_id):
                corrupted.append(object_id)
        unexpected = sorted(present - expected)
        return missing, corrupted, unexpected

    def chained_migration(
        self,
        stores: list[tuple[WormStore, Signer, str]],
        transit_hook: TransitHook | None = None,
    ) -> list[MigrationResult]:
        """Migrate through a chain of (store, signer, site_id) hops —
        the multi-generation scenario of the 30-year experiment.  Stops
        at the first failed hop."""
        if len(stores) < 2:
            raise MigrationError("a chained migration needs at least two stores")
        results = []
        for (src, src_signer, _), (dst, _, dst_id) in zip(stores, stores[1:]):
            result = self.migrate(
                source=src,
                destination=dst,
                source_signer=src_signer,
                destination_id=dst_id,
                transit_hook=transit_hook,
            )
            results.append(result)
            if not result.ok:
                break
        return results
