"""Signed migration manifests.

A manifest commits the source store's exact live contents at migration
time: sorted (object_id, digest) pairs, their Merkle root, the count,
and the source's signature over all of it.  The destination can verify
any claim about the migrated set against this one artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import SignedPayload, Signer, TrustStore
from repro.errors import MigrationError
from repro.util.encoding import canonical_bytes
from repro.worm.store import WormStore


@dataclass(frozen=True)
class MigrationManifest:
    """The source's signed statement of what is being migrated."""

    source_id: str
    created_at: float
    entries: tuple[tuple[str, bytes], ...]  # sorted (object_id, digest)
    merkle_root: bytes
    signed: SignedPayload

    @property
    def object_count(self) -> int:
        return len(self.entries)

    def digest_for(self, object_id: str) -> bytes:
        for entry_id, digest in self.entries:
            if entry_id == object_id:
                return digest
        raise MigrationError(f"object {object_id} is not in the manifest")

    def object_ids(self) -> list[str]:
        return [entry_id for entry_id, _ in self.entries]


def _entries_root(entries: list[tuple[str, bytes]]) -> bytes:
    tree = MerkleTree()
    for object_id, digest in entries:
        tree.append(canonical_bytes({"id": object_id, "digest": digest}))
    return tree.root()


def build_manifest(
    store: WormStore, signer: Signer, timestamp: float
) -> MigrationManifest:
    """Enumerate the store's live objects and sign the manifest."""
    entries = sorted(
        (object_id, store.metadata(object_id).content_digest)
        for object_id in store.object_ids()
    )
    root = _entries_root(entries)
    signed = signer.sign(
        {
            "source_id": signer.signer_id,
            "created_at": timestamp,
            "entries": [[object_id, digest] for object_id, digest in entries],
            "merkle_root": root,
        }
    )
    return MigrationManifest(
        source_id=signer.signer_id,
        created_at=timestamp,
        entries=tuple(entries),
        merkle_root=root,
        signed=signed,
    )


def build_entries_manifest(
    entries: list[tuple[str, bytes]], signer: Signer, timestamp: float
) -> MigrationManifest:
    """Sign a manifest over caller-supplied (object_id, digest) pairs.

    The per-patient rebalancer uses this: the moved set is one patient's
    extents, not a whole store, and the digests commit to the
    *plaintext* content (version dicts, attachment bytes) so the claim
    survives re-encryption under the destination shard's keys."""
    entries = sorted(entries)
    root = _entries_root(entries)
    signed = signer.sign(
        {
            "source_id": signer.signer_id,
            "created_at": timestamp,
            "entries": [[object_id, digest] for object_id, digest in entries],
            "merkle_root": root,
        }
    )
    return MigrationManifest(
        source_id=signer.signer_id,
        created_at=timestamp,
        entries=tuple(entries),
        merkle_root=root,
        signed=signed,
    )


def entry_leaf(object_id: str, digest: bytes) -> bytes:
    """The Merkle leaf encoding of one manifest entry (shared by the
    root computation and per-entry inclusion proofs)."""
    return canonical_bytes({"id": object_id, "digest": digest})


def entry_inclusion_proofs(manifest: MigrationManifest) -> dict[str, object]:
    """``object_id -> MerkleProof`` of membership in the manifest root."""
    tree = MerkleTree()
    for object_id, digest in manifest.entries:
        tree.append(entry_leaf(object_id, digest))
    return {
        object_id: tree.prove_inclusion(index)
        for index, (object_id, _) in enumerate(manifest.entries)
    }


def verify_manifest(manifest: MigrationManifest, trust: TrustStore) -> None:
    """Check the manifest's signature and internal consistency."""
    payload = trust.verify(manifest.signed)
    expected_entries = [[object_id, digest] for object_id, digest in manifest.entries]
    if payload["entries"] != expected_entries:
        raise MigrationError("manifest entries do not match the signed payload")
    if payload["merkle_root"] != manifest.merkle_root:
        raise MigrationError("manifest root does not match the signed payload")
    if payload["source_id"] != manifest.source_id:
        raise MigrationError("manifest source does not match the signed payload")
    if _entries_root(list(manifest.entries)) != manifest.merkle_root:
        raise MigrationError("manifest root does not match its entries")
