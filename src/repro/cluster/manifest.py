"""The sealed cluster manifest: topology that recovery can trust.

A sharded cluster's weakest recovery failure is the *silent* one: hand
the recovery path three of four shards' devices and get back a smaller
archive that verifies clean — every surviving shard's chain intact,
every surviving record readable — with a quarter of the patients simply
gone.  Per-shard integrity machinery cannot catch this because each
shard only vouches for itself.

The manifest closes that hole.  It records the cluster's topology —
shard count, shard names, placement algorithm — and is sealed with an
HMAC under a key derived from the HSM-held master key
(``curator/cluster-manifest``), the same trust anchor the per-shard
key escrows rely on.  Recovery refuses to proceed unless the manifest
verifies and a device set is presented for **every** shard the
manifest names; a missing shard is a :class:`~repro.errors.ClusterError`
naming exactly what is absent, never a quietly smaller cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.crypto.hmac_utils import constant_time_equal, hmac_sha256
from repro.crypto.kdf import derive_key
from repro.errors import ClusterError
from repro.util.encoding import canonical_bytes, canonical_loads

MANIFEST_KEY_LABEL = "curator/cluster-manifest"


@dataclass(frozen=True)
class ClusterManifest:
    """Sealed topology of one cluster deployment."""

    cluster_id: str
    site_id: str
    shard_ids: tuple[str, ...]
    algorithm: str = "sha256-ring"
    #: Monotonic topology generation.  Every reshape bumps the epoch and
    #: re-seals, so a recovered manifest names not just *a* topology but
    #: *which* one — a stale pre-rebalance manifest and a lost device
    #: produce distinguishable errors.
    epoch: int = 0
    seal: bytes = b""

    @property
    def shard_count(self) -> int:
        return len(self.shard_ids)

    def _payload(self) -> bytes:
        return canonical_bytes(
            {
                "cluster_id": self.cluster_id,
                "site_id": self.site_id,
                "shard_ids": list(self.shard_ids),
                "algorithm": self.algorithm,
                "epoch": self.epoch,
            }
        )

    def sealed(self, master_key: bytes) -> "ClusterManifest":
        """A copy carrying the HMAC seal under *master_key*."""
        key = derive_key(master_key, MANIFEST_KEY_LABEL)
        return replace(self, seal=hmac_sha256(key, self._payload()))

    def verify(self, master_key: bytes) -> None:
        """Raise :class:`ClusterError` unless the seal matches the
        topology under *master_key*."""
        key = derive_key(master_key, MANIFEST_KEY_LABEL)
        if not self.seal or not constant_time_equal(
            self.seal, hmac_sha256(key, self._payload())
        ):
            raise ClusterError(
                f"cluster manifest for {self.cluster_id!r} failed seal "
                "verification; refusing to trust its topology"
            )

    def to_bytes(self) -> bytes:
        """Canonical serialization (seal included) for off-site escrow."""
        return canonical_bytes(
            {
                "cluster_id": self.cluster_id,
                "site_id": self.site_id,
                "shard_ids": list(self.shard_ids),
                "algorithm": self.algorithm,
                "epoch": self.epoch,
                "seal": self.seal,
            }
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ClusterManifest":
        fields = canonical_loads(blob)
        return cls(
            cluster_id=fields["cluster_id"],
            site_id=fields["site_id"],
            shard_ids=tuple(fields["shard_ids"]),
            algorithm=fields["algorithm"],
            # pre-rebalance escrow copies predate the epoch field
            epoch=fields.get("epoch", 0),
            seal=fields["seal"],
        )
