"""The sharded cluster frontend: N independent curator engines behind
one actor-attributed API.

:class:`CuratorCluster` presents the same surface as a single
:class:`~repro.core.engine.CuratorStore` while spreading patients
across independent engines.  The design commitments:

* **Placement is by patient.**  The ring — the fixed-modulo
  :class:`~repro.cluster.ring.HashRing` by default, a
  :class:`~repro.cluster.ring.VNodeRing` when built with ``vnodes > 0``
  — maps ``patient_id`` to a shard deterministically (SHA-256, never
  the process-salted builtin ``hash``), so every record, version,
  attachment, break-glass grant and disclosure of one patient lives on
  exactly one engine and per-patient invariants never span shards.
* **Shards are full engines, not partitions of one.**  Each shard has
  its own WORM medium, key escrow, hash-chained audit log, checkpoint
  store and trustworthy index, under a per-shard master key derived
  from the cluster's HSM-held master key.  A raw-device insider on one
  shard learns nothing about, and can tamper with nothing on, the
  others.  The anchor-signing keypair is shared (it models one HSM-held
  site identity and avoids per-shard keygen cost).
* **Thread-safe routing.**  Every delegated call runs under its shard's
  lock; requests to different shards proceed concurrently, and the
  fan-out operations (``search``, ``store_many``, verification,
  sweeps) run the shards in parallel.
* **Merged verification keeps per-shard blame.**  ``verify_integrity``
  and ``verify_audit_trail`` return one
  :class:`~repro.baselines.interface.VerificationReport` merged from
  the per-shard reports, every violation prefixed with the shard that
  raised it.
* **Recovery refuses to shrink silently.**  The sealed
  :class:`~repro.cluster.manifest.ClusterManifest` pins the topology
  and its epoch; :meth:`CuratorCluster.recover_from_devices` raises
  :class:`~repro.errors.ClusterError` naming any shard whose devices
  are missing instead of reassembling a smaller cluster.
* **Elastic, online.**  A vnode-ring cluster can
  :meth:`~CuratorCluster.rebalance` to more or fewer shards while
  serving: each displaced patient moves under a per-patient ticket
  (reads never block; writes to that one patient wait out the move),
  every move emits a verifier-checked
  :class:`~repro.cluster.rebalancer.MigrationProof`, and the manifest
  epoch bumps with each topology change.

Routing during and after a reshape resolves in three layers:
*pending routes* (patients pinned to their current home while a
transition topology is live), *overrides* (durable off-ring placements
— a patient whose move was salvaged to a shard the ring would not
pick), then the ring itself.  Shard *slots* (indices into
:attr:`~CuratorCluster.shards`) always match ring order outside a
transition, so existing index-based callers are unaffected.

Attribution: every PHI-touching method requires ``actor_id`` as a
keyword, matching the engine's fully-attributed surface.

Policy: the default declarative ruleset is compiled **once** at cluster
construction and shared by every shard engine via
``config.policy_rules`` — authorization must give one answer no matter
where the patient hashed, and N shards should not pay N compilations.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, TypeVar

from repro.baselines.interface import StorageModel, VerificationReport
from repro.cluster.manifest import ClusterManifest
from repro.cluster.rebalancer import (
    MigrationProof,
    MoveTicket,
    RebalanceReport,
    Rebalancer,
    verify_migration_proof,
)
from repro.cluster.ring import HashRing, VNodeRing
from repro.cluster.workers import ShardWorkerProxy
from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.crypto.kdf import derive_key
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer, TrustStore
from repro.errors import ClusterError, MigrationError, RecordNotFoundError
from repro.records.model import HealthRecord
from repro.util.metrics import METRICS

T = TypeVar("T")


def _shard_config(
    base: CuratorConfig, keypair: object, shard_id: str
) -> CuratorConfig:
    """The per-shard engine config: derived master key, scoped site id,
    shared signing identity; every other knob inherited from the base."""
    return replace(
        base,
        master_key=derive_key(base.master_key, f"curator/cluster/{shard_id}"),
        site_id=f"{base.site_id}/{shard_id}",
        signing_keypair=keypair,
    )


def _ring_algorithm(ring) -> str:
    """The manifest's placement-algorithm tag for *ring* (recovery
    rebuilds the same ring type from it)."""
    if isinstance(ring, VNodeRing):
        return f"sha256-vnode/{ring.vnodes}"
    return "sha256-ring"


def _ring_from_algorithm(algorithm: str, shard_ids: tuple[str, ...]):
    """Invert :func:`_ring_algorithm` at recovery time."""
    if algorithm == "sha256-ring":
        return HashRing(len(shard_ids))
    if algorithm.startswith("sha256-vnode/"):
        try:
            vnodes = int(algorithm.split("/", 1)[1])
        except ValueError:
            vnodes = 0
        if vnodes > 0:
            return VNodeRing(shard_ids=shard_ids, vnodes=vnodes)
    raise ClusterError(
        f"cluster manifest names unknown placement algorithm {algorithm!r}"
    )


@dataclass(frozen=True)
class _Topology:
    """One immutable routing snapshot, swapped atomically on reshape.

    ``slot_ids[i]`` names the shard at slot *i* of ``engines``/``locks``;
    ``slots`` inverts it.  During a rebalance transition ``slot_ids`` is
    the union of old and new shards while ``ring`` is already the final
    ring (residents are pinned by pending routes, so the ring only
    answers for patients that arrive mid-transition)."""

    ring: Any
    slot_ids: tuple[str, ...]
    engines: tuple[Any, ...]
    locks: tuple[Any, ...]
    slots: dict[str, int]


class CuratorCluster(StorageModel):
    """A patient-sharded cluster of curator engines (see module docstring)."""

    model_name = "curator-cluster"

    def __init__(
        self,
        config: CuratorConfig,
        *,
        shards: int = 4,
        cluster_id: str | None = None,
        workers: int = 0,
        vnodes: int = 0,
        _engines: list[CuratorStore] | None = None,
        _ring=None,
        _epoch: int = 0,
    ) -> None:
        if config.policy_rules is None:
            from repro.policy.compiler import compile_default_ruleset

            config = replace(config, policy_rules=compile_default_ruleset())
        self._config = config
        if _ring is not None:
            ring = _ring
        elif vnodes:
            ring = VNodeRing.for_count(shards, vnodes=vnodes)
        else:
            ring = HashRing(shards)
        shards = ring.shard_count
        self._cluster_id = cluster_id or f"{config.site_id}-cluster"
        self._keypair = config.signing_keypair or generate_keypair(
            config.signature_bits
        )
        self._workers = 0 if _engines is not None else max(0, int(workers))
        if _engines is None:
            engines = [self._build_engine(sid) for sid in ring.shard_ids]
        else:
            if len(_engines) != shards:
                raise ClusterError(
                    f"expected {shards} recovered engines, got {len(_engines)}"
                )
            engines = list(_engines)
        self._topo = _Topology(
            ring=ring,
            slot_ids=ring.shard_ids,
            engines=tuple(engines),
            locks=tuple(threading.RLock() for _ in range(shards)),
            slots={sid: i for i, sid in enumerate(ring.shard_ids)},
        )
        self._state_lock = threading.Lock()
        #: user_id -> User for every principal registered cluster-wide;
        #: replayed onto shards added by a later rebalance so that
        #: authorization gives one answer no matter when a shard joined.
        self._directory: dict[str, Any] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._rebalance_lock = threading.Lock()
        self._owner: dict[str, int] = {}
        self._grants: dict[str, int] = {}
        self._snapshots: dict[str, int] = {}
        #: Live per-patient move tickets (and the same tickets keyed by
        #: the records they cover) — the write gates of an online move.
        self._moves: dict[str, MoveTicket] = {}
        self._record_moves: dict[str, MoveTicket] = {}
        #: pid -> slot while a transition topology is live.
        self._pending_routes: dict[str, int] = {}
        #: pid -> slot for durable off-ring placements (salvage).
        self._patient_overrides: dict[str, int] = {}
        self._salvage_report: list[dict[str, Any]] = []
        self._epoch = int(_epoch)
        self._manifest = ClusterManifest(
            cluster_id=self._cluster_id,
            site_id=config.site_id,
            shard_ids=ring.shard_ids,
            algorithm=_ring_algorithm(ring),
            epoch=self._epoch,
        ).sealed(config.master_key)
        for index, engine in enumerate(engines):
            for record_id in engine.record_ids():
                self._owner[record_id] = index

    def _build_engine(self, shard_id: str):
        shard_config = _shard_config(self._config, self._keypair, shard_id)
        if self._workers:
            # Process-backed shards: one worker process per shard, each
            # hosting a full engine behind the pipe protocol.  Device-
            # level harnesses (equivalence oracle, crash sweeps) need
            # workers=0 — raw media cannot cross a pipe.
            return ShardWorkerProxy(shard_config, shard_id)
        return CuratorStore(shard_config)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    @property
    def ring(self):
        return self._topo.ring

    @property
    def manifest(self) -> ClusterManifest:
        """The sealed topology manifest (escrow it off-site)."""
        return self._manifest

    @property
    def shard_count(self) -> int:
        return len(self._topo.engines)

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return self._topo.slot_ids

    @property
    def policy_ruleset(self) -> tuple:
        """The compiled declarative ruleset every shard shares."""
        return self._config.policy_rules

    @property
    def config(self):
        """The cluster-wide :class:`~repro.core.config.CuratorConfig`
        (read-only; the wire service reuses its clock and site id)."""
        return self._config

    @property
    def shards(self) -> tuple[CuratorStore, ...]:
        """The shard engines, in slot order (read-only introspection;
        going around the router bypasses its locks).  With process
        workers these are :class:`~repro.cluster.workers.ShardWorkerProxy`
        objects — method calls cross the pipe, internals do not."""
        return self._topo.engines

    @property
    def worker_count(self) -> int:
        """Number of process-backed shard workers (0 = in-process)."""
        return len(self._topo.engines) if self._workers else 0

    @property
    def salvage_report(self) -> list[dict[str, Any]]:
        """Dual-home resolutions the last device recovery performed."""
        return list(self._salvage_report)

    def slot_shard_id(self, slot: int) -> str:
        """The shard id at engine slot *slot*."""
        return self._topo.slot_ids[slot]

    def close(self) -> None:
        """Shut down process-backed shard workers and the fan-out pool.

        Safe to call on an in-process cluster (only the lazy thread pool
        is reaped) and idempotent either way.
        """
        for engine in self._topo.engines:
            if isinstance(engine, ShardWorkerProxy):
                engine.close()
        self._reset_pool()

    def shard_for(self, patient_id: str) -> int:
        """The slot currently serving *patient_id* (ring placement,
        unless a pending route or salvage override pins it elsewhere)."""
        return self._home_slot(patient_id)

    def shard_of_record(self, record_id: str) -> int:
        """The shard index holding *record_id* (routed at store time)."""
        try:
            return self._owner[record_id]
        except KeyError:
            raise RecordNotFoundError(
                f"record {record_id!r} is not stored on any shard"
            ) from None

    # ------------------------------------------------------------------
    # routing plumbing
    # ------------------------------------------------------------------

    def _ring_slot(self, patient_id: str) -> int:
        topo = self._topo
        ring = topo.ring
        return topo.slots[ring.shard_id(ring.shard_for(patient_id))]

    def _home_slot(self, patient_id: str) -> int:
        slot = self._pending_routes.get(patient_id)
        if slot is None:
            slot = self._patient_overrides.get(patient_id)
        if slot is None:
            slot = self._ring_slot(patient_id)
        return slot

    def _on(self, topo: _Topology, index: int, fn: Callable[[Any], T]) -> T:
        with topo.locks[index]:
            return fn(topo.engines[index])

    def _on_shard(self, index: int, fn: Callable[[CuratorStore], T]) -> T:
        return self._on(self._topo, index, fn)

    def _route_patient(
        self, patient_id: str, fn: Callable[[CuratorStore], T]
    ) -> T:
        # Reads stay lock-free against moves: pre-cutover the source
        # serves, post-cutover the destination does.  If the home flips
        # mid-call (the cutover window), re-run against the new home.
        for _ in range(4):
            slot = self._home_slot(patient_id)
            try:
                result = self._on_shard(slot, fn)
            except RecordNotFoundError:
                if self._home_slot(patient_id) == slot:
                    raise
                continue
            if self._home_slot(patient_id) == slot:
                return result
        return self._on_shard(self._home_slot(patient_id), fn)

    def _route_record(self, record_id: str, fn: Callable[[CuratorStore], T]) -> T:
        slot = self.shard_of_record(record_id)
        try:
            return self._on_shard(slot, fn)
        except RecordNotFoundError:
            fresh = self._owner.get(record_id)
            if fresh is None or fresh == slot:
                raise
            return self._on_shard(fresh, fn)

    def _write_patient(
        self,
        patient_id: str,
        fn: Callable[[CuratorStore], T],
        record_ids: tuple[str, ...] = (),
    ) -> tuple[int, T]:
        """Run a patient-keyed write on its home shard, gated against a
        concurrent move of that patient (writes to other patients are
        unaffected).  New record ownership is registered under the shard
        lock so a racing move's snapshot and the owner map never skew."""
        while True:
            topo = self._topo
            slot = self._home_slot(patient_id)
            if slot >= len(topo.engines):
                continue  # topology swapped under us; recompute
            ticket = None
            with topo.locks[slot]:
                ticket = self._moves.get(patient_id)
                if ticket is not None and ticket.held():
                    pass  # live move: wait outside the shard lock
                elif self._home_slot(patient_id) != slot:
                    continue  # moved while we waited for the lock
                else:
                    result = fn(topo.engines[slot])
                    if record_ids:
                        with self._state_lock:
                            for record_id in record_ids:
                                self._owner[record_id] = slot
                    return slot, result
            ticket.wait()

    def _write_record(self, record_id: str, fn: Callable[[CuratorStore], T]) -> T:
        """Run a record-keyed write on the owning shard, gated against a
        concurrent move of the record's patient."""
        while True:
            topo = self._topo
            slot = self.shard_of_record(record_id)
            if slot >= len(topo.engines):
                continue
            ticket = None
            with topo.locks[slot]:
                ticket = self._record_moves.get(record_id)
                if ticket is not None and ticket.held():
                    pass
                elif self._owner.get(record_id) != slot:
                    continue
                else:
                    return fn(topo.engines[slot])
            ticket.wait()

    def _executor(self) -> ThreadPoolExecutor:
        """The router's long-lived fan-out pool, created on first use.

        A pool per call would cost more in thread startup than a whole
        shard-local query; the router amortizes it across the cluster's
        lifetime instead (idle workers are reaped at interpreter exit).
        Reshapes reset it so the width tracks the shard count."""
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=len(self._topo.engines),
                        thread_name_prefix=f"{self._cluster_id}-fanout",
                    )
        return self._pool

    def _reset_pool(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    def _fan_out_labelled(
        self, fn: Callable[[CuratorStore], T]
    ) -> tuple[tuple[str, ...], list[T]]:
        """Run *fn* on every shard of one topology snapshot (in parallel
        when there are several), returning ``(slot_ids, results)`` in
        slot order.  Mid-transition the snapshot is the union topology,
        so not-yet-drained shards are still covered."""
        topo = self._topo
        count = len(topo.engines)
        if count == 1:
            return topo.slot_ids, [self._on(topo, 0, fn)]
        for attempt in (0, 1):
            pool = self._executor()
            try:
                futures = [
                    pool.submit(self._on, topo, index, fn)
                    for index in range(count)
                ]
            except RuntimeError:
                # the pool was reset by a concurrent reshape; rebuild
                if attempt:
                    raise
                self._reset_pool()
                continue
            return topo.slot_ids, [future.result() for future in futures]
        raise AssertionError("unreachable")

    def _fan_out(self, fn: Callable[[CuratorStore], T]) -> list[T]:
        return self._fan_out_labelled(fn)[1]

    def _count(self, name: str, index: int) -> None:
        slot_ids = self._topo.slot_ids
        if index < len(slot_ids):
            METRICS.incr_labelled(name, slot_ids[index])

    # ------------------------------------------------------------------
    # principals
    # ------------------------------------------------------------------

    def register_user(self, user) -> None:
        """Replicate the principal to every shard: authorization must
        give one answer no matter where the patient hashed."""
        self._directory[user.user_id] = user
        topo = self._topo
        for index in range(len(topo.engines)):
            self._on(topo, index, lambda engine: engine.register_user(user))

    def prepare_access_probe(self, actor_id: str) -> None:
        topo = self._topo
        for index in range(len(topo.engines)):
            self._on(
                topo, index, lambda engine: engine.prepare_access_probe(actor_id)
            )

    def break_glass(self, actor_id: str, patient_id: str, justification: str):
        """Emergency access on whichever shard holds the patient."""
        index = self._home_slot(patient_id)
        grant = self._on_shard(
            index,
            lambda engine: engine.break_glass(actor_id, patient_id, justification),
        )
        with self._state_lock:
            self._grants[grant.grant_id] = index
        return grant

    def revoke_break_glass(self, grant_id: str):
        with self._state_lock:
            index = self._grants.get(grant_id)
        if index is None:
            raise ClusterError(f"unknown break-glass grant {grant_id!r}")
        return self._on_shard(
            index, lambda engine: engine.revoke_break_glass(grant_id)
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _replicate_author(self, author_id: str, home: int) -> None:
        """Documenting care makes the author a known principal on a
        single engine *engine-wide*; mirror that cluster-wide so e.g. a
        fan-out search does not die on a shard the author never wrote
        to.  Shards that already know the author keep their own view
        (their local treating lists are the authoritative ones)."""
        topo = self._topo
        if home >= len(topo.engines):
            return
        user = self._on(topo, home, lambda engine: engine.principal(author_id))
        if user is None:
            return
        self._directory.setdefault(author_id, user)
        for index in range(len(topo.engines)):
            if index == home:
                continue
            self._on(
                topo,
                index,
                lambda engine: (
                    None
                    if engine.principal(author_id) is not None
                    else engine.register_user(user)
                ),
            )

    def store(self, record: HealthRecord, author_id: str) -> None:
        index, _ = self._write_patient(
            record.patient_id,
            lambda engine: engine.store(record, author_id),
            record_ids=(record.record_id,),
        )
        self._count("cluster_stores", index)
        self._replicate_author(author_id, index)

    def store_many(self, records: list[HealthRecord], author_id: str) -> int:
        """Batched ingest, grouped per shard and run in parallel.

        Each shard's sub-batch keeps the engine's atomic batch
        semantics; atomicity across shards is per-shard, not global —
        a crash can land with some shards' sub-batches durable and
        others absent, which recovery reports per shard.
        """
        # Wait out any in-flight move of a patient in the batch, then
        # group; per-group ingest re-checks under the shard lock and
        # falls back to single-record stores if routing shifted.
        for record in records:
            ticket = self._moves.get(record.patient_id)
            if ticket is not None and ticket.held():
                ticket.wait(timeout=30.0)
        groups: dict[int, list[HealthRecord]] = {}
        for record in records:
            groups.setdefault(self._home_slot(record.patient_id), []).append(
                record
            )

        def ingest(index: int) -> int:
            topo = self._topo
            group = groups[index]

            def run(engine) -> int | None:
                for record in group:
                    if (
                        self._home_slot(record.patient_id) != index
                        or self._moves.get(record.patient_id) is not None
                    ):
                        return None  # routing shifted under us
                return engine.store_many(group, author_id)

            stored = (
                self._on(topo, index, run)
                if index < len(topo.engines)
                else None
            )
            if stored is None:
                stored = 0
                for record in group:
                    self.store(record, author_id)
                    stored += 1
                return stored
            with self._state_lock:
                for record in group:
                    self._owner[record.record_id] = index
            self._count("cluster_stores", index)
            return stored

        if len(groups) <= 1:
            counts = [ingest(index) for index in groups]
        else:
            counts = list(self._executor().map(ingest, sorted(groups)))
        if groups:
            self._replicate_author(author_id, next(iter(groups)))
        return sum(counts)

    def correct(self, corrected: HealthRecord, author_id: str, reason: str) -> None:
        self._write_record(
            corrected.record_id,
            lambda engine: engine.correct(corrected, author_id, reason),
        )

    def attach(self, record_id: str, attachment_id: str, data: bytes, *,
               actor_id: str, content_type: str = "application/octet-stream"):
        return self._write_record(
            record_id,
            lambda engine: engine.attach(
                record_id, attachment_id, data,
                actor_id=actor_id, content_type=content_type,
            ),
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(self, record_id: str, *, actor_id: str, purpose=None) -> HealthRecord:
        self._count("cluster_reads", self.shard_of_record(record_id))
        return self._route_record(
            record_id,
            lambda engine: engine.read(record_id, actor_id=actor_id, purpose=purpose),
        )

    def read_view(self, record_id: str, actor_id: str) -> dict[str, Any]:
        return self._route_record(
            record_id, lambda engine: engine.read_view(record_id, actor_id)
        )

    def read_version(
        self, record_id: str, version: int, *, actor_id: str
    ) -> HealthRecord:
        return self._route_record(
            record_id,
            lambda engine: engine.read_version(record_id, version, actor_id=actor_id),
        )

    def read_attachment(
        self, record_id: str, attachment_id: str, *, actor_id: str
    ) -> bytes:
        return self._route_record(
            record_id,
            lambda engine: engine.read_attachment(
                record_id, attachment_id, actor_id=actor_id
            ),
        )

    def attachments_of(self, record_id: str) -> list[str]:
        return self._route_record(
            record_id, lambda engine: engine.attachments_of(record_id)
        )

    def version_count(self, record_id: str) -> int:
        return self._route_record(
            record_id, lambda engine: engine.version_count(record_id)
        )

    def search(self, term: str, *, actor_id: str) -> list[str]:
        """Fan out to every shard, merge and de-duplicate the hits."""
        for index in range(len(self._topo.engines)):
            self._count("cluster_searches", index)
        hits = self._fan_out(lambda engine: engine.search(term, actor_id=actor_id))
        return sorted({record_id for shard_hits in hits for record_id in shard_hits})

    def record_ids(self) -> list[str]:
        ids = self._fan_out(lambda engine: engine.record_ids())
        return sorted({record_id for shard_ids in ids for record_id in shard_ids})

    def records_of_patient(self, patient_id: str) -> list[str]:
        return self._route_patient(
            patient_id, lambda engine: engine.records_of_patient(patient_id)
        )

    def records_in_window(self, start: float, end: float) -> list[str]:
        windows = self._fan_out(
            lambda engine: engine.records_in_window(start, end)
        )
        return sorted({record_id for window in windows for record_id in window})

    def export_deidentified(self, record_id: str, *, actor_id: str) -> HealthRecord:
        return self._route_record(
            record_id,
            lambda engine: engine.export_deidentified(record_id, actor_id=actor_id),
        )

    def accounting_of_disclosures(self, patient_id: str, *, actor_id: str):
        """The whole-patient disclosure accounting; single-shard by
        construction, because placement is by patient (and a move
        carries the audit segment along, so accounting survives it)."""
        return self._route_patient(
            patient_id,
            lambda engine: engine.accounting_of_disclosures(
                patient_id, actor_id=actor_id
            ),
        )

    # ------------------------------------------------------------------
    # disposal / retention
    # ------------------------------------------------------------------

    def dispose(self, record_id: str, *, actor_id: str):
        """Compliant disposal on the owning shard only: certificates
        come from, and the certified hole lands on, that shard alone."""
        self._count("cluster_disposals", self.shard_of_record(record_id))
        return self._write_record(
            record_id, lambda engine: engine.dispose(record_id, actor_id=actor_id)
        )

    def retention_sweep(self) -> list[str]:
        due = self._fan_out(lambda engine: engine.retention_sweep())
        return sorted({record_id for shard_due in due for record_id in shard_due})

    def place_hold(self, record_id: str, hold_id: str, *, actor_id: str) -> None:
        self._write_record(
            record_id,
            lambda engine: engine.place_hold(record_id, hold_id, actor_id=actor_id),
        )

    def release_hold(self, record_id: str, hold_id: str, *, actor_id: str) -> None:
        self._write_record(
            record_id,
            lambda engine: engine.release_hold(record_id, hold_id, actor_id=actor_id),
        )

    # ------------------------------------------------------------------
    # tiering
    # ------------------------------------------------------------------

    def demotion_sweep(
        self, policy=None, *, actor_id: str = "archive-tiering"
    ) -> list[str]:
        """Run the demotion policy on every shard; each shard compacts
        its own eligible records into its own cold segments."""
        demoted = self._fan_out(
            lambda engine: engine.demotion_sweep(policy, actor_id=actor_id)
        )
        return sorted({record_id for shard in demoted for record_id in shard})

    def demote_records(
        self, record_ids: list[str], *, actor_id: str = "archive-tiering"
    ) -> list[str]:
        """Explicit demotion, routed to each record's owning shard."""
        by_shard: dict[int, list[str]] = {}
        for record_id in record_ids:
            by_shard.setdefault(self.shard_of_record(record_id), []).append(record_id)
        demoted: list[str] = []
        for index, shard_ids in sorted(by_shard.items()):
            demoted += self._on_shard(
                index,
                lambda engine, ids=shard_ids: engine.demote_records(
                    ids, actor_id=actor_id
                ),
            )
        return demoted

    def cold_record_ids(self) -> list[str]:
        cold = self._fan_out(lambda engine: engine.cold_record_ids())
        return sorted({record_id for shard in cold for record_id in shard})

    def tier_stats(self) -> dict[str, int]:
        """Cluster-wide tier occupancy: the per-shard stats, summed."""
        totals: dict[str, int] = {}
        for stats in self._fan_out(lambda engine: engine.tier_stats()):
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # verification / audit / compliance
    # ------------------------------------------------------------------

    def _merged(
        self, labelled: tuple[tuple[str, ...], list[VerificationReport]]
    ) -> VerificationReport:
        slot_ids, reports = labelled
        return VerificationReport.merge(dict(zip(slot_ids, reports)))

    def verify_integrity(self, incremental: bool = False) -> VerificationReport:
        return self._merged(
            self._fan_out_labelled(
                lambda engine: engine.verify_integrity(incremental)
            )
        )

    def verify_audit_trail(self, incremental: bool = False) -> VerificationReport:
        return self._merged(
            self._fan_out_labelled(
                lambda engine: engine.verify_audit_trail(incremental=incremental)
            )
        )

    def audit_events(self) -> list[dict[str, Any]]:
        """Every shard's audit stream, merged in timestamp order (ties
        broken by shard order, then per-shard sequence)."""
        streams = self._fan_out(lambda engine: engine.audit_events())
        merged = [
            (event["timestamp"], index, event["sequence"], event)
            for index, stream in enumerate(streams)
            for event in stream
        ]
        return [event for *_key, event in sorted(merged, key=lambda e: e[:3])]

    def audit_devices(self):
        devices = []
        for shard_devices in self._fan_out(lambda engine: engine.audit_devices()):
            devices.extend(shard_devices)
        return devices

    def devices(self):
        devices = []
        for shard_devices in self._fan_out(lambda engine: engine.devices()):
            devices.extend(shard_devices)
        return devices

    def compliance_findings(self) -> dict[str, list]:
        """Operational compliance findings, per shard."""
        from repro.compliance.operations import operational_findings

        slot_ids, findings = self._fan_out_labelled(operational_findings)
        return dict(zip(slot_ids, findings))

    def declared_features(self) -> frozenset[str]:
        return self._topo.engines[0].declared_features()

    # ------------------------------------------------------------------
    # elastic resharding
    # ------------------------------------------------------------------

    def migration_trust(self, *extra_shard_ids: str) -> TrustStore:
        """Verifiers for every shard identity this cluster has a slot
        for, plus *extra_shard_ids* — migration manifests and
        attestations are signed by per-shard signers sharing the
        cluster's HSM-held keypair, so a proof signed by a shard that a
        later shrink retired stays verifiable."""
        trust = TrustStore()
        for shard_id in {*self._topo.slot_ids, *extra_shard_ids}:
            trust.add(
                Signer(
                    f"{self._config.site_id}/{shard_id}", keypair=self._keypair
                ).verifier()
            )
        return trust

    def rebalance(
        self,
        *,
        target_shards: int | None = None,
        add: tuple[str, ...] = (),
        remove: tuple[str, ...] = (),
        actor_id: str = "system",
        hook: Callable[[str, str], None] | None = None,
        verify_proofs: bool = True,
        pace_s: float = 0.0,
    ) -> RebalanceReport:
        """Reshape the cluster online: split (add shards) or merge
        (remove shards) while serving reads and writes.

        Give either *target_shards* (shards are added with canonical
        names, or removed highest-name-first) or explicit *add* /
        *remove* shard ids.  Requires a virtual-node ring (``vnodes >
        0`` at construction): the fixed-modulo ring would displace
        nearly every patient on any resize.  Every displaced patient
        moves under the stage machine in
        :mod:`repro.cluster.rebalancer`; the returned report carries one
        verifier-accepted :class:`MigrationProof` per move, and the
        sealed manifest's epoch is bumped for the transition and again
        for the final topology.
        """
        ring = self._topo.ring
        if not isinstance(ring, VNodeRing):
            raise ClusterError(
                "elastic rebalancing requires a virtual-node ring; build "
                "the cluster with vnodes > 0"
            )
        final = ring
        for shard_id in add:
            final = final.with_added(shard_id)
        for shard_id in remove:
            final = final.with_removed(shard_id)
        if target_shards is not None:
            if target_shards < 1:
                raise ClusterError("target_shards must be at least 1")
            existing = set(final.shard_ids)
            candidate = 0
            while final.shard_count < target_shards:
                shard_id = f"shard-{candidate:02d}"
                if shard_id not in existing:
                    final = final.with_added(shard_id)
                    existing.add(shard_id)
                candidate += 1
            while final.shard_count > target_shards:
                final = final.with_removed(max(final.shard_ids))
        rebalancer = Rebalancer(
            self,
            actor_id=actor_id,
            hook=hook,
            verify_proofs=verify_proofs,
            pace_s=pace_s,
        )
        return rebalancer.run(final)

    def verify_move_proof(self, proof: MigrationProof) -> None:
        """Re-check a :class:`MigrationProof` against the shard that now
        holds the patient (auditor entry point)."""
        shard_id = proof.destination_shard
        slot = self._topo.slots.get(shard_id)
        if slot is None:
            raise ClusterError(
                f"proof names destination shard {shard_id!r}, which this "
                "cluster does not have"
            )
        trust = self.migration_trust(
            proof.source_shard, proof.destination_shard
        )
        self._on_shard(
            slot, lambda engine: verify_migration_proof(proof, trust, engine)
        )

    # -- move plumbing used by the Rebalancer --------------------------

    def _publish_move(
        self, patient_id: str, source_slot: int, dest_slot: int
    ) -> MoveTicket:
        ticket = MoveTicket(patient_id, source_slot, dest_slot)
        with self._state_lock:
            if patient_id in self._moves:
                raise ClusterError(
                    f"patient {patient_id} is already mid-move"
                )
            self._moves[patient_id] = ticket
        return ticket

    def _register_move_records(self, ticket: MoveTicket) -> None:
        def snapshot(engine) -> tuple[str, ...]:
            record_ids = tuple(engine.records_of_patient(ticket.patient_id))
            with self._state_lock:
                for record_id in record_ids:
                    self._record_moves[record_id] = ticket
            return record_ids

        ticket.record_ids = self._on_shard(ticket.source_slot, snapshot)

    def _cutover(self, ticket: MoveTicket) -> None:
        """Flip routing to the destination (the mover holds the ticket
        lock, so no write can interleave)."""
        with self._state_lock:
            for record_id in ticket.record_ids:
                self._owner[record_id] = ticket.dest_slot
            self._patient_overrides[ticket.patient_id] = ticket.dest_slot
            self._pending_routes.pop(ticket.patient_id, None)

    def _retire_move(self, ticket: MoveTicket) -> None:
        with self._state_lock:
            if self._moves.get(ticket.patient_id) is ticket:
                del self._moves[ticket.patient_id]
            for record_id in ticket.record_ids:
                if self._record_moves.get(record_id) is ticket:
                    del self._record_moves[record_id]

    def _install_transition(self, final_ring, added: list[str]) -> dict[str, int]:
        """Enter the transition topology: new shards appended at fresh
        slots, every resident patient pinned to its current home, the
        ring swapped to the final placement, the manifest re-sealed at
        epoch+1 over the union of shards.  Returns the pin map."""
        topo = self._topo
        slot_ids = topo.slot_ids + tuple(added)
        joined = tuple(self._build_engine(shard_id) for shard_id in added)
        for engine in joined:
            # A shard that joins late still answers authorization
            # questions like one that was there from day one.
            for user in self._directory.values():
                engine.register_user(user)
        engines = topo.engines + joined
        locks = topo.locks + tuple(threading.RLock() for _ in added)
        slots = {shard_id: i for i, shard_id in enumerate(slot_ids)}
        pinned: dict[str, int] = {}
        for index in range(len(topo.engines)):
            for patient_id in self._on(
                topo, index, lambda engine: engine.patient_ids()
            ):
                pinned[patient_id] = index
        with self._state_lock:
            for patient_id, slot in pinned.items():
                if patient_id not in self._pending_routes:
                    self._pending_routes[patient_id] = (
                        self._patient_overrides.pop(patient_id, slot)
                    )
            self._topo = _Topology(
                ring=final_ring,
                slot_ids=slot_ids,
                engines=engines,
                locks=locks,
                slots=slots,
            )
            self._epoch += 1
            self._manifest = ClusterManifest(
                cluster_id=self._cluster_id,
                site_id=self._config.site_id,
                shard_ids=slot_ids,
                algorithm=_ring_algorithm(final_ring),
                epoch=self._epoch,
            ).sealed(self._config.master_key)
        self._reset_pool()
        # Writers that raced the swap landed patients by the old ring;
        # pin any such straggler to where it actually is.
        topo = self._topo
        for index in range(len(topo.engines)):
            for patient_id in self._on(
                topo, index, lambda engine: engine.patient_ids()
            ):
                if (
                    patient_id in self._pending_routes
                    or patient_id in self._patient_overrides
                ):
                    continue
                if self._ring_slot(patient_id) != index:
                    with self._state_lock:
                        self._patient_overrides.setdefault(patient_id, index)
        return dict(self._pending_routes)

    def _finalize_rebalance(self, final_ring) -> None:
        """Leave the transition: drop drained slots, renumber to the
        final ring's order, clear pending routes, re-seal the manifest
        at the next epoch."""
        topo = self._topo
        old_index = {shard_id: i for i, shard_id in enumerate(topo.slot_ids)}
        remap = {
            old_index[shard_id]: new
            for new, shard_id in enumerate(final_ring.shard_ids)
        }
        engines = tuple(
            topo.engines[old_index[shard_id]]
            for shard_id in final_ring.shard_ids
        )
        locks = tuple(
            topo.locks[old_index[shard_id]] for shard_id in final_ring.shard_ids
        )
        dropped = [
            topo.engines[index]
            for index in range(len(topo.engines))
            if index not in remap
        ]
        for lock in topo.locks:
            lock.acquire()
        try:
            with self._state_lock:
                self._topo = _Topology(
                    ring=final_ring,
                    slot_ids=final_ring.shard_ids,
                    engines=engines,
                    locks=locks,
                    slots={
                        shard_id: i
                        for i, shard_id in enumerate(final_ring.shard_ids)
                    },
                )
                self._owner = {
                    record_id: remap[slot]
                    for record_id, slot in self._owner.items()
                    if slot in remap
                }
                self._grants = {
                    grant_id: remap[slot]
                    for grant_id, slot in self._grants.items()
                    if slot in remap
                }
                self._snapshots = {
                    snapshot_id: remap[slot]
                    for snapshot_id, slot in self._snapshots.items()
                    if slot in remap
                }
                placements = {
                    patient_id: remap[slot]
                    for patient_id, slot in {
                        **self._pending_routes,
                        **self._patient_overrides,
                    }.items()
                    if slot in remap
                }
                self._pending_routes = {}
                self._patient_overrides = {
                    patient_id: slot
                    for patient_id, slot in placements.items()
                    if self._ring_slot(patient_id) != slot
                }
                self._epoch += 1
                self._manifest = ClusterManifest(
                    cluster_id=self._cluster_id,
                    site_id=self._config.site_id,
                    shard_ids=final_ring.shard_ids,
                    algorithm=_ring_algorithm(final_ring),
                    epoch=self._epoch,
                ).sealed(self._config.master_key)
        finally:
            for lock in topo.locks:
                lock.release()
        for engine in dropped:
            if isinstance(engine, ShardWorkerProxy):
                engine.close()
        self._reset_pool()

    def recover_interrupted_moves(self, *, actor_id: str = "system") -> list[dict]:
        """Resolve moves whose mover died: abort anything that had not
        cut over (the source stays authoritative; a partial destination
        copy is retired back), complete anything that had (the source
        copy is retired forward).  Either way the patient ends wholly on
        exactly one shard.  Returns one action dict per resolved move."""
        with self._state_lock:
            tickets = list(self._moves.values())
        actions: list[dict] = []
        for ticket in tickets:
            if ticket.held():
                continue  # a live mover still owns this ticket
            patient_id = ticket.patient_id
            if ticket.cutover_done:
                if ticket.stage == "cutover":
                    # routing flipped but the source copy is still there
                    try:
                        self._on_shard(
                            ticket.source_slot,
                            lambda engine: engine.retire_patient(
                                patient_id,
                                actor_id=actor_id,
                                destination_id=self.slot_shard_id(
                                    ticket.dest_slot
                                ),
                            ),
                        )
                    except RecordNotFoundError:
                        pass
                resolution = "completed"
                with self._state_lock:
                    for record_id in ticket.record_ids:
                        self._owner[record_id] = ticket.dest_slot
            else:
                if ticket.stage in ("imported", "verified"):
                    try:
                        self._on_shard(
                            ticket.dest_slot,
                            lambda engine: engine.retire_patient(
                                patient_id,
                                actor_id=actor_id,
                                destination_id=self.slot_shard_id(
                                    ticket.source_slot
                                ),
                            ),
                        )
                    except RecordNotFoundError:
                        pass
                resolution = "aborted"
                with self._state_lock:
                    for record_id in ticket.record_ids:
                        self._owner[record_id] = ticket.source_slot
                    if (
                        patient_id not in self._pending_routes
                        and self._ring_slot(patient_id) != ticket.source_slot
                    ):
                        self._patient_overrides.setdefault(
                            patient_id, ticket.source_slot
                        )
            self._retire_move(ticket)
            actions.append(
                {
                    "patient": patient_id,
                    "resolution": resolution,
                    "stage": ticket.stage,
                    "source": self.slot_shard_id(ticket.source_slot),
                    "destination": self.slot_shard_id(ticket.dest_slot),
                }
            )
        return actions

    def _salvage_dual_homes(self) -> None:
        """Post-recovery custody reconciliation: if a crash landed a
        patient on two shards (durable import, crash before the retire
        marker), complete the interrupted move — the copy carrying the
        newest imported-segment attestation is the destination — and
        pin any surviving off-ring placement as an override."""
        topo = self._topo
        claims: dict[str, list[int]] = {}
        for index in range(len(topo.engines)):
            for patient_id in self._on(
                topo, index, lambda engine: engine.patient_ids()
            ):
                claims.setdefault(patient_id, []).append(index)
        actions: list[dict[str, Any]] = []
        for patient_id, slots in sorted(claims.items()):
            if len(slots) == 1:
                if self._ring_slot(patient_id) != slots[0]:
                    self._patient_overrides[patient_id] = slots[0]
                continue

            def imported_at(slot: int) -> float:
                attestation = self._on(
                    topo,
                    slot,
                    lambda engine: engine.segment_attestation(patient_id),
                )
                if attestation is None:
                    return -1.0
                return float(attestation.payload.get("exported_at", -1.0))

            ring_slot = self._ring_slot(patient_id)
            winner = max(
                slots, key=lambda slot: (imported_at(slot), slot == ring_slot)
            )
            for loser in slots:
                if loser == winner:
                    continue
                # forward the audit tail the loser accrued after export,
                # then complete the hand-off
                attestation = self._on(
                    topo,
                    winner,
                    lambda engine: engine.segment_attestation(patient_id),
                )
                if attestation is not None:
                    since = int(attestation.payload.get("log_size", 0))
                    delta = self._on(
                        topo,
                        loser,
                        lambda engine: engine.export_audit_delta(
                            patient_id, since=since
                        ),
                    )
                    if delta:
                        try:
                            self._on(
                                topo,
                                winner,
                                lambda engine: engine.adopt_audit_delta(
                                    patient_id, delta
                                ),
                            )
                        except MigrationError:
                            pass
                self._on(
                    topo,
                    loser,
                    lambda engine: engine.retire_patient(
                        patient_id,
                        actor_id="recovery",
                        destination_id=topo.slot_ids[winner],
                    ),
                )
                actions.append(
                    {
                        "patient": patient_id,
                        "resolution": "completed",
                        "winner": topo.slot_ids[winner],
                        "retired": topo.slot_ids[loser],
                    }
                )
            if self._ring_slot(patient_id) != winner:
                self._patient_overrides[patient_id] = winner
        if actions:
            self._owner = {}
            for index in range(len(topo.engines)):
                for record_id in self._on(
                    topo, index, lambda engine: engine.record_ids()
                ):
                    self._owner[record_id] = index
        self._salvage_report = actions

    # ------------------------------------------------------------------
    # backup / recovery
    # ------------------------------------------------------------------

    def create_backup(self, *, incremental: bool = False, actor_id: str):
        """Per-shard snapshots, keyed by shard id."""
        slot_ids, snapshots = self._fan_out_labelled(
            lambda engine: engine.create_backup(
                incremental=incremental, actor_id=actor_id
            )
        )
        with self._state_lock:
            for index, snapshot in enumerate(snapshots):
                self._snapshots[snapshot.snapshot_id] = index
        return dict(zip(slot_ids, snapshots))

    def restore_from_backup(self, snapshot_id: str, *, actor_id: str):
        with self._state_lock:
            index = self._snapshots.get(snapshot_id)
        if index is None:
            raise ClusterError(
                f"snapshot {snapshot_id!r} was not taken through this cluster"
            )
        return self._on_shard(
            index,
            lambda engine: engine.restore_from_backup(snapshot_id, actor_id=actor_id),
        )

    def device_sets(self) -> dict[str, dict[str, Any]]:
        """Each shard's recovery-relevant devices, keyed by shard id —
        the hand-off format :meth:`recover_from_devices` expects."""
        topo = self._topo
        sets: dict[str, dict[str, Any]] = {}
        for index, engine in enumerate(topo.engines):
            worm, _index_dev, audit, keys, checkpoints, cold = engine.devices()
            sets[topo.slot_ids[index]] = {
                "worm_device": worm,
                "key_device": keys,
                "audit_device": audit,
                "checkpoint_device": checkpoints,
                "cold_device": cold,
            }
        return sets

    @classmethod
    def recover_from_devices(
        cls,
        config: CuratorConfig,
        manifest: ClusterManifest,
        device_sets: dict[str, dict[str, Any]],
        *,
        witnesses: dict[str, list] | None = None,
    ) -> "CuratorCluster":
        """Restart the whole cluster from surviving per-shard devices.

        The sealed *manifest* is the source of truth for topology: it
        must verify under the HSM-held master key, and a device set
        must be present for **every** shard it names — recovery raises
        :class:`ClusterError` listing the manifest epoch and exactly
        which shards are missing rather than silently reassembling a
        smaller cluster.  Per-shard recovery then follows
        :meth:`CuratorStore.recover_from_devices`; afterwards any
        interrupted move (a patient durably present on two shards) is
        reconciled and reported in :attr:`salvage_report`.

        For anchor-witness continuity across the restart, pin the
        signing keypair in ``config.signing_keypair`` (a cluster built
        with a generated keypair re-signs under a new identity and
        pre-crash witness attestations no longer apply).
        """
        manifest.verify(config.master_key)
        missing = [sid for sid in manifest.shard_ids if sid not in device_sets]
        if missing:
            raise ClusterError(
                f"cluster manifest {manifest.cluster_id!r} (epoch "
                f"{manifest.epoch}) names {manifest.shard_count} shard(s) "
                f"but no device set was provided for: {', '.join(missing)}; "
                "either those devices are lost, or this manifest predates "
                "a rebalance that removed them — recover with the latest "
                "re-sealed manifest if so"
            )
        unknown = sorted(set(device_sets) - set(manifest.shard_ids))
        if unknown:
            raise ClusterError(
                f"device sets offered for shards the manifest (epoch "
                f"{manifest.epoch}) does not name: {', '.join(unknown)}"
            )
        keypair = config.signing_keypair or generate_keypair(config.signature_bits)
        config = replace(config, signing_keypair=keypair)
        if config.policy_rules is None:
            from repro.policy.compiler import compile_default_ruleset

            config = replace(config, policy_rules=compile_default_ruleset())
        witnesses = witnesses or {}
        engines = [
            CuratorStore.recover_from_devices(
                _shard_config(config, keypair, shard_id),
                worm_device=device_sets[shard_id]["worm_device"],
                key_device=device_sets[shard_id]["key_device"],
                audit_device=device_sets[shard_id]["audit_device"],
                checkpoint_device=device_sets[shard_id].get("checkpoint_device"),
                cold_device=device_sets[shard_id].get("cold_device"),
                witnesses=witnesses.get(shard_id),
            )
            for shard_id in manifest.shard_ids
        ]
        ring = _ring_from_algorithm(manifest.algorithm, manifest.shard_ids)
        cluster = cls(
            config,
            shards=manifest.shard_count,
            cluster_id=manifest.cluster_id,
            _engines=engines,
            _ring=ring,
            _epoch=manifest.epoch,
        )
        cluster._salvage_dual_homes()
        return cluster

    @property
    def recovery_reports(self) -> dict[str, Any]:
        """Per-shard recovery reports (shards built live report None)."""
        topo = self._topo
        return {
            topo.slot_ids[index]: engine.recovery_report
            for index, engine in enumerate(topo.engines)
        }
