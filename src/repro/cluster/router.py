"""The sharded cluster frontend: N independent curator engines behind
one actor-attributed API.

:class:`CuratorCluster` presents the same surface as a single
:class:`~repro.core.engine.CuratorStore` while spreading patients
across independent engines.  The design commitments:

* **Placement is by patient.**  The :class:`~repro.cluster.ring.HashRing`
  maps ``patient_id`` to a shard deterministically (SHA-256, never the
  process-salted builtin ``hash``), so every record, version,
  attachment, break-glass grant and disclosure of one patient lives on
  exactly one engine and per-patient invariants never span shards.
* **Shards are full engines, not partitions of one.**  Each shard has
  its own WORM medium, key escrow, hash-chained audit log, checkpoint
  store and trustworthy index, under a per-shard master key derived
  from the cluster's HSM-held master key.  A raw-device insider on one
  shard learns nothing about, and can tamper with nothing on, the
  others.  The anchor-signing keypair is shared (it models one HSM-held
  site identity and avoids per-shard keygen cost).
* **Thread-safe routing.**  Every delegated call runs under its shard's
  lock; requests to different shards proceed concurrently, and the
  fan-out operations (``search``, ``store_many``, verification,
  sweeps) run the shards in parallel.
* **Merged verification keeps per-shard blame.**  ``verify_integrity``
  and ``verify_audit_trail`` return one
  :class:`~repro.baselines.interface.VerificationReport` merged from
  the per-shard reports, every violation prefixed with the shard that
  raised it.
* **Recovery refuses to shrink silently.**  The sealed
  :class:`~repro.cluster.manifest.ClusterManifest` pins the topology;
  :meth:`CuratorCluster.recover_from_devices` raises
  :class:`~repro.errors.ClusterError` naming any shard whose devices
  are missing instead of reassembling a smaller cluster.

Attribution: every PHI-touching method requires ``actor_id`` as a
keyword, matching the engine's fully-attributed surface.

Policy: the default declarative ruleset is compiled **once** at cluster
construction and shared by every shard engine via
``config.policy_rules`` — authorization must give one answer no matter
where the patient hashed, and N shards should not pay N compilations.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Callable, TypeVar

from repro.baselines.interface import StorageModel, VerificationReport
from repro.cluster.manifest import ClusterManifest
from repro.cluster.ring import HashRing
from repro.cluster.workers import ShardWorkerProxy
from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.crypto.kdf import derive_key
from repro.crypto.rsa import generate_keypair
from repro.errors import ClusterError, RecordNotFoundError
from repro.records.model import HealthRecord
from repro.util.metrics import METRICS

T = TypeVar("T")


def _shard_config(
    base: CuratorConfig, keypair: object, shard_id: str
) -> CuratorConfig:
    """The per-shard engine config: derived master key, scoped site id,
    shared signing identity; every other knob inherited from the base."""
    return replace(
        base,
        master_key=derive_key(base.master_key, f"curator/cluster/{shard_id}"),
        site_id=f"{base.site_id}/{shard_id}",
        signing_keypair=keypair,
    )


class CuratorCluster(StorageModel):
    """A patient-sharded cluster of curator engines (see module docstring)."""

    model_name = "curator-cluster"

    def __init__(
        self,
        config: CuratorConfig,
        *,
        shards: int = 4,
        cluster_id: str | None = None,
        workers: int = 0,
        _engines: list[CuratorStore] | None = None,
    ) -> None:
        if config.policy_rules is None:
            from repro.policy.compiler import compile_default_ruleset

            config = replace(config, policy_rules=compile_default_ruleset())
        self._config = config
        self._ring = HashRing(shards)
        self._cluster_id = cluster_id or f"{config.site_id}-cluster"
        self._keypair = config.signing_keypair or generate_keypair(
            config.signature_bits
        )
        self._workers = 0 if _engines is not None else max(0, int(workers))
        if _engines is None:
            if self._workers:
                # Process-backed shards: one worker process per shard,
                # each hosting a full engine behind the pipe protocol.
                # Device-level harnesses (equivalence oracle, crash
                # sweeps) need workers=0 — raw media cannot cross a pipe.
                self._engines = [
                    ShardWorkerProxy(
                        _shard_config(config, self._keypair, shard_id), shard_id
                    )
                    for shard_id in self._ring.shard_ids
                ]
            else:
                self._engines = [
                    CuratorStore(_shard_config(config, self._keypair, shard_id))
                    for shard_id in self._ring.shard_ids
                ]
        else:
            if len(_engines) != shards:
                raise ClusterError(
                    f"expected {shards} recovered engines, got {len(_engines)}"
                )
            self._engines = list(_engines)
        self._locks = [threading.RLock() for _ in range(shards)]
        self._state_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._owner: dict[str, int] = {}
        self._grants: dict[str, int] = {}
        self._snapshots: dict[str, int] = {}
        self._manifest = ClusterManifest(
            cluster_id=self._cluster_id,
            site_id=config.site_id,
            shard_ids=self._ring.shard_ids,
        ).sealed(config.master_key)
        for index, engine in enumerate(self._engines):
            for record_id in engine.record_ids():
                self._owner[record_id] = index

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def manifest(self) -> ClusterManifest:
        """The sealed topology manifest (escrow it off-site)."""
        return self._manifest

    @property
    def shard_count(self) -> int:
        return self._ring.shard_count

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return self._ring.shard_ids

    @property
    def policy_ruleset(self) -> tuple:
        """The compiled declarative ruleset every shard shares."""
        return self._config.policy_rules

    @property
    def shards(self) -> tuple[CuratorStore, ...]:
        """The shard engines, in ring order (read-only introspection;
        going around the router bypasses its locks).  With process
        workers these are :class:`~repro.cluster.workers.ShardWorkerProxy`
        objects — method calls cross the pipe, internals do not."""
        return tuple(self._engines)

    @property
    def worker_count(self) -> int:
        """Number of process-backed shard workers (0 = in-process)."""
        return self._ring.shard_count if self._workers else 0

    def close(self) -> None:
        """Shut down process-backed shard workers and the fan-out pool.

        Safe to call on an in-process cluster (only the lazy thread pool
        is reaped) and idempotent either way.
        """
        for engine in self._engines:
            if isinstance(engine, ShardWorkerProxy):
                engine.close()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    def shard_for(self, patient_id: str) -> int:
        """The shard index the ring assigns to *patient_id*."""
        return self._ring.shard_for(patient_id)

    def shard_of_record(self, record_id: str) -> int:
        """The shard index holding *record_id* (routed at store time)."""
        try:
            return self._owner[record_id]
        except KeyError:
            raise RecordNotFoundError(
                f"record {record_id!r} is not stored on any shard"
            ) from None

    # ------------------------------------------------------------------
    # routing plumbing
    # ------------------------------------------------------------------

    def _on_shard(self, index: int, fn: Callable[[CuratorStore], T]) -> T:
        with self._locks[index]:
            return fn(self._engines[index])

    def _route_patient(
        self, patient_id: str, fn: Callable[[CuratorStore], T]
    ) -> T:
        return self._on_shard(self._ring.shard_for(patient_id), fn)

    def _route_record(self, record_id: str, fn: Callable[[CuratorStore], T]) -> T:
        return self._on_shard(self.shard_of_record(record_id), fn)

    def _executor(self) -> ThreadPoolExecutor:
        """The router's long-lived fan-out pool, created on first use.

        A pool per call would cost more in thread startup than a whole
        shard-local query; the router amortizes it across the cluster's
        lifetime instead (idle workers are reaped at interpreter exit)."""
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self._ring.shard_count,
                        thread_name_prefix=f"{self._cluster_id}-fanout",
                    )
        return self._pool

    def _fan_out(self, fn: Callable[[CuratorStore], T]) -> list[T]:
        """Run *fn* on every shard (in parallel when there are several),
        returning per-shard results in ring order."""
        if self._ring.shard_count == 1:
            return [self._on_shard(0, fn)]
        pool = self._executor()
        futures = [
            pool.submit(self._on_shard, index, fn)
            for index in range(self._ring.shard_count)
        ]
        return [future.result() for future in futures]

    def _count(self, name: str, index: int) -> None:
        METRICS.incr_labelled(name, self._ring.shard_id(index))

    # ------------------------------------------------------------------
    # principals
    # ------------------------------------------------------------------

    def register_user(self, user) -> None:
        """Replicate the principal to every shard: authorization must
        give one answer no matter where the patient hashed."""
        for index in range(self._ring.shard_count):
            self._on_shard(index, lambda engine: engine.register_user(user))

    def prepare_access_probe(self, actor_id: str) -> None:
        for index in range(self._ring.shard_count):
            self._on_shard(
                index, lambda engine: engine.prepare_access_probe(actor_id)
            )

    def break_glass(self, actor_id: str, patient_id: str, justification: str):
        """Emergency access on whichever shard holds the patient."""
        index = self._ring.shard_for(patient_id)
        grant = self._on_shard(
            index,
            lambda engine: engine.break_glass(actor_id, patient_id, justification),
        )
        with self._state_lock:
            self._grants[grant.grant_id] = index
        return grant

    def revoke_break_glass(self, grant_id: str):
        with self._state_lock:
            index = self._grants.get(grant_id)
        if index is None:
            raise ClusterError(f"unknown break-glass grant {grant_id!r}")
        return self._on_shard(
            index, lambda engine: engine.revoke_break_glass(grant_id)
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _replicate_author(self, author_id: str, home: int) -> None:
        """Documenting care makes the author a known principal on a
        single engine *engine-wide*; mirror that cluster-wide so e.g. a
        fan-out search does not die on a shard the author never wrote
        to.  Shards that already know the author keep their own view
        (their local treating lists are the authoritative ones)."""
        user = self._on_shard(home, lambda engine: engine.principal(author_id))
        if user is None:
            return
        for index in range(self._ring.shard_count):
            if index == home:
                continue
            self._on_shard(
                index,
                lambda engine: (
                    None
                    if engine.principal(author_id) is not None
                    else engine.register_user(user)
                ),
            )

    def store(self, record: HealthRecord, author_id: str) -> None:
        index = self._ring.shard_for(record.patient_id)
        self._on_shard(index, lambda engine: engine.store(record, author_id))
        with self._state_lock:
            self._owner[record.record_id] = index
        self._count("cluster_stores", index)
        self._replicate_author(author_id, index)

    def store_many(self, records: list[HealthRecord], author_id: str) -> int:
        """Batched ingest, grouped per shard and run in parallel.

        Each shard's sub-batch keeps the engine's atomic batch
        semantics; atomicity across shards is per-shard, not global —
        a crash can land with some shards' sub-batches durable and
        others absent, which recovery reports per shard.
        """
        groups: dict[int, list[HealthRecord]] = {}
        for record in records:
            groups.setdefault(self._ring.shard_for(record.patient_id), []).append(
                record
            )

        def ingest(index: int) -> int:
            stored = self._on_shard(
                index, lambda engine: engine.store_many(groups[index], author_id)
            )
            self._count("cluster_stores", index)
            return stored

        if len(groups) <= 1:
            counts = [ingest(index) for index in groups]
        else:
            counts = list(self._executor().map(ingest, sorted(groups)))
        with self._state_lock:
            for index, group in groups.items():
                for record in group:
                    self._owner[record.record_id] = index
        if groups:
            self._replicate_author(author_id, next(iter(groups)))
        return sum(counts)

    def correct(self, corrected: HealthRecord, author_id: str, reason: str) -> None:
        self._route_record(
            corrected.record_id,
            lambda engine: engine.correct(corrected, author_id, reason),
        )

    def attach(self, record_id: str, attachment_id: str, data: bytes, *,
               actor_id: str, content_type: str = "application/octet-stream"):
        return self._route_record(
            record_id,
            lambda engine: engine.attach(
                record_id, attachment_id, data,
                actor_id=actor_id, content_type=content_type,
            ),
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(self, record_id: str, *, actor_id: str, purpose=None) -> HealthRecord:
        index = self.shard_of_record(record_id)
        self._count("cluster_reads", index)
        return self._on_shard(
            index,
            lambda engine: engine.read(record_id, actor_id=actor_id, purpose=purpose),
        )

    def read_view(self, record_id: str, actor_id: str) -> dict[str, Any]:
        return self._route_record(
            record_id, lambda engine: engine.read_view(record_id, actor_id)
        )

    def read_version(
        self, record_id: str, version: int, *, actor_id: str
    ) -> HealthRecord:
        return self._route_record(
            record_id,
            lambda engine: engine.read_version(record_id, version, actor_id=actor_id),
        )

    def read_attachment(
        self, record_id: str, attachment_id: str, *, actor_id: str
    ) -> bytes:
        return self._route_record(
            record_id,
            lambda engine: engine.read_attachment(
                record_id, attachment_id, actor_id=actor_id
            ),
        )

    def attachments_of(self, record_id: str) -> list[str]:
        return self._route_record(
            record_id, lambda engine: engine.attachments_of(record_id)
        )

    def version_count(self, record_id: str) -> int:
        return self._route_record(
            record_id, lambda engine: engine.version_count(record_id)
        )

    def search(self, term: str, *, actor_id: str) -> list[str]:
        """Fan out to every shard, merge and de-duplicate the hits."""
        for index in range(self._ring.shard_count):
            self._count("cluster_searches", index)
        hits = self._fan_out(lambda engine: engine.search(term, actor_id=actor_id))
        return sorted({record_id for shard_hits in hits for record_id in shard_hits})

    def record_ids(self) -> list[str]:
        ids = self._fan_out(lambda engine: engine.record_ids())
        return sorted({record_id for shard_ids in ids for record_id in shard_ids})

    def records_of_patient(self, patient_id: str) -> list[str]:
        return self._route_patient(
            patient_id, lambda engine: engine.records_of_patient(patient_id)
        )

    def records_in_window(self, start: float, end: float) -> list[str]:
        windows = self._fan_out(
            lambda engine: engine.records_in_window(start, end)
        )
        return sorted({record_id for window in windows for record_id in window})

    def export_deidentified(self, record_id: str, *, actor_id: str) -> HealthRecord:
        return self._route_record(
            record_id,
            lambda engine: engine.export_deidentified(record_id, actor_id=actor_id),
        )

    def accounting_of_disclosures(self, patient_id: str, *, actor_id: str):
        """The whole-patient disclosure accounting; single-shard by
        construction, because placement is by patient."""
        return self._route_patient(
            patient_id,
            lambda engine: engine.accounting_of_disclosures(
                patient_id, actor_id=actor_id
            ),
        )

    # ------------------------------------------------------------------
    # disposal / retention
    # ------------------------------------------------------------------

    def dispose(self, record_id: str, *, actor_id: str):
        """Compliant disposal on the owning shard only: certificates
        come from, and the certified hole lands on, that shard alone."""
        index = self.shard_of_record(record_id)
        self._count("cluster_disposals", index)
        return self._on_shard(
            index, lambda engine: engine.dispose(record_id, actor_id=actor_id)
        )

    def retention_sweep(self) -> list[str]:
        due = self._fan_out(lambda engine: engine.retention_sweep())
        return sorted({record_id for shard_due in due for record_id in shard_due})

    def place_hold(self, record_id: str, hold_id: str, *, actor_id: str) -> None:
        self._route_record(
            record_id,
            lambda engine: engine.place_hold(record_id, hold_id, actor_id=actor_id),
        )

    def release_hold(self, record_id: str, hold_id: str, *, actor_id: str) -> None:
        self._route_record(
            record_id,
            lambda engine: engine.release_hold(record_id, hold_id, actor_id=actor_id),
        )

    # ------------------------------------------------------------------
    # verification / audit / compliance
    # ------------------------------------------------------------------

    def _merged(self, reports: list[VerificationReport]) -> VerificationReport:
        return VerificationReport.merge(
            dict(zip(self._ring.shard_ids, reports))
        )

    def verify_integrity(self, incremental: bool = False) -> VerificationReport:
        return self._merged(
            self._fan_out(lambda engine: engine.verify_integrity(incremental))
        )

    def verify_audit_trail(self, incremental: bool = False) -> VerificationReport:
        return self._merged(
            self._fan_out(
                lambda engine: engine.verify_audit_trail(incremental=incremental)
            )
        )

    def audit_events(self) -> list[dict[str, Any]]:
        """Every shard's audit stream, merged in timestamp order (ties
        broken by shard order, then per-shard sequence)."""
        streams = self._fan_out(lambda engine: engine.audit_events())
        merged = [
            (event["timestamp"], index, event["sequence"], event)
            for index, stream in enumerate(streams)
            for event in stream
        ]
        return [event for *_key, event in sorted(merged, key=lambda e: e[:3])]

    def audit_devices(self):
        devices = []
        for shard_devices in self._fan_out(lambda engine: engine.audit_devices()):
            devices.extend(shard_devices)
        return devices

    def devices(self):
        devices = []
        for shard_devices in self._fan_out(lambda engine: engine.devices()):
            devices.extend(shard_devices)
        return devices

    def compliance_findings(self) -> dict[str, list]:
        """Operational compliance findings, per shard."""
        from repro.compliance.operations import operational_findings

        findings = self._fan_out(operational_findings)
        return dict(zip(self._ring.shard_ids, findings))

    def declared_features(self) -> frozenset[str]:
        return self._engines[0].declared_features()

    # ------------------------------------------------------------------
    # backup / recovery
    # ------------------------------------------------------------------

    def create_backup(self, *, incremental: bool = False, actor_id: str):
        """Per-shard snapshots, keyed by shard id."""
        snapshots = self._fan_out(
            lambda engine: engine.create_backup(
                incremental=incremental, actor_id=actor_id
            )
        )
        with self._state_lock:
            for index, snapshot in enumerate(snapshots):
                self._snapshots[snapshot.snapshot_id] = index
        return dict(zip(self._ring.shard_ids, snapshots))

    def restore_from_backup(self, snapshot_id: str, *, actor_id: str):
        with self._state_lock:
            index = self._snapshots.get(snapshot_id)
        if index is None:
            raise ClusterError(
                f"snapshot {snapshot_id!r} was not taken through this cluster"
            )
        return self._on_shard(
            index,
            lambda engine: engine.restore_from_backup(snapshot_id, actor_id=actor_id),
        )

    def device_sets(self) -> dict[str, dict[str, Any]]:
        """Each shard's recovery-relevant devices, keyed by shard id —
        the hand-off format :meth:`recover_from_devices` expects."""
        sets: dict[str, dict[str, Any]] = {}
        for index, engine in enumerate(self._engines):
            worm, _index_dev, audit, keys, checkpoints = engine.devices()
            sets[self._ring.shard_id(index)] = {
                "worm_device": worm,
                "key_device": keys,
                "audit_device": audit,
                "checkpoint_device": checkpoints,
            }
        return sets

    @classmethod
    def recover_from_devices(
        cls,
        config: CuratorConfig,
        manifest: ClusterManifest,
        device_sets: dict[str, dict[str, Any]],
        *,
        witnesses: dict[str, list] | None = None,
    ) -> "CuratorCluster":
        """Restart the whole cluster from surviving per-shard devices.

        The sealed *manifest* is the source of truth for topology: it
        must verify under the HSM-held master key, and a device set
        must be present for **every** shard it names — recovery raises
        :class:`ClusterError` listing what is missing rather than
        silently reassembling a smaller cluster.  Per-shard recovery
        then follows :meth:`CuratorStore.recover_from_devices`.

        For anchor-witness continuity across the restart, pin the
        signing keypair in ``config.signing_keypair`` (a cluster built
        with a generated keypair re-signs under a new identity and
        pre-crash witness attestations no longer apply).
        """
        manifest.verify(config.master_key)
        missing = [sid for sid in manifest.shard_ids if sid not in device_sets]
        if missing:
            raise ClusterError(
                f"cluster manifest {manifest.cluster_id!r} names "
                f"{manifest.shard_count} shard(s) but no device set was "
                f"provided for: {', '.join(missing)}"
            )
        unknown = sorted(set(device_sets) - set(manifest.shard_ids))
        if unknown:
            raise ClusterError(
                f"device sets offered for shards the manifest does not "
                f"name: {', '.join(unknown)}"
            )
        keypair = config.signing_keypair or generate_keypair(config.signature_bits)
        config = replace(config, signing_keypair=keypair)
        if config.policy_rules is None:
            from repro.policy.compiler import compile_default_ruleset

            config = replace(config, policy_rules=compile_default_ruleset())
        witnesses = witnesses or {}
        engines = [
            CuratorStore.recover_from_devices(
                _shard_config(config, keypair, shard_id),
                worm_device=device_sets[shard_id]["worm_device"],
                key_device=device_sets[shard_id]["key_device"],
                audit_device=device_sets[shard_id]["audit_device"],
                checkpoint_device=device_sets[shard_id].get("checkpoint_device"),
                witnesses=witnesses.get(shard_id),
            )
            for shard_id in manifest.shard_ids
        ]
        return cls(
            config,
            shards=manifest.shard_count,
            cluster_id=manifest.cluster_id,
            _engines=engines,
        )

    @property
    def recovery_reports(self) -> dict[str, Any]:
        """Per-shard recovery reports (shards built live report None)."""
        return {
            self._ring.shard_id(index): engine.recovery_report
            for index, engine in enumerate(self._engines)
        }
