"""Deterministic record placement for the sharded cluster.

Placement must be a pure function of the patient identifier and the
shard count — never of process state.  Two independently restarted
routers (or a router and the recovery path) must agree on where every
patient lives, so the ring hashes with SHA-256 under a fixed domain
label.  Python's builtin ``hash()`` is per-process salted
(``PYTHONHASHSEED``) and is therefore exactly the wrong tool; using it
would scatter a recovered cluster's routing table.

Sharding by *patient* (not by record) keeps every record of one
patient — versions, attachments, disclosures, break-glass grants — on
a single engine, so per-patient invariants (version chains, consent,
accounting of disclosures) never span shards.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable

from repro.errors import ConfigurationError

_DOMAIN = b"curator/cluster-ring\x00"
#: Virtual-node placement hashes under its own label so a vnode ring and
#: the legacy modulo ring can never be confused for one another.
_VNODE_DOMAIN = b"curator/cluster-vnode\x00"


def _point(data: bytes) -> int:
    """A 64-bit position on the hash circle."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


@dataclass(frozen=True)
class HashRing:
    """A stable ``patient_id -> shard index`` map for a fixed shard count."""

    shard_count: int

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ConfigurationError(
                f"a cluster needs at least one shard, got {self.shard_count}"
            )

    def shard_for(self, patient_id: str) -> int:
        """The shard index owning *patient_id* (stable across processes)."""
        digest = hashlib.sha256(_DOMAIN + patient_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.shard_count

    def shard_id(self, index: int) -> str:
        """The canonical name of shard *index* (``shard-00`` ...)."""
        if not 0 <= index < self.shard_count:
            raise ConfigurationError(
                f"shard index {index} out of range for {self.shard_count} shards"
            )
        return f"shard-{index:02d}"

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """All shard names, in index order."""
        return tuple(self.shard_id(i) for i in range(self.shard_count))

    def diff(self, new: "HashRing | VNodeRing") -> "RingDiff":
        """The topology change from this ring to *new*."""
        return RingDiff(old=self, new=new)


@dataclass(frozen=True)
class VNodeRing:
    """Consistent hashing over named shards with virtual nodes.

    Each shard owns ``vnodes`` points on a 64-bit hash circle (more for
    shards listed in ``weights``); a patient maps to the shard owning
    the first point at or after the patient's own hash.  Adding one
    shard to an N-shard ring therefore displaces only the patients whose
    successor point now belongs to the newcomer — roughly ``1/(N+1)`` of
    them — where the modulo :class:`HashRing` would reshuffle nearly
    everything.

    Like :class:`HashRing`, every hash is SHA-256 under a fixed domain
    label: placement is a pure function of ``(shard_ids, vnodes,
    weights, patient_id)`` and two independently restarted routers agree
    on every assignment.
    """

    shard_ids: tuple[str, ...]
    vnodes: int = 64
    #: Optional per-shard vnode overrides, e.g. ``(("shard-02", 128),)``
    #: gives shard-02 twice the default weight.
    weights: tuple[tuple[str, int], ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "shard_ids", tuple(self.shard_ids))
        object.__setattr__(
            self, "weights", tuple((str(s), int(n)) for s, n in self.weights)
        )
        if not self.shard_ids:
            raise ConfigurationError("a cluster needs at least one shard")
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise ConfigurationError(
                f"duplicate shard ids in ring: {self.shard_ids}"
            )
        if self.vnodes < 1:
            raise ConfigurationError(
                f"a shard needs at least one virtual node, got {self.vnodes}"
            )
        known = set(self.shard_ids)
        for shard_id, count in self.weights:
            if shard_id not in known:
                raise ConfigurationError(
                    f"weight names unknown shard {shard_id!r}"
                )
            if count < 1:
                raise ConfigurationError(
                    f"shard {shard_id!r} needs at least one virtual node"
                )

    @classmethod
    def for_count(cls, shards: int, vnodes: int = 64) -> "VNodeRing":
        """A ring over the canonical ``shard-00 .. shard-NN`` names."""
        if shards < 1:
            raise ConfigurationError(
                f"a cluster needs at least one shard, got {shards}"
            )
        return cls(
            shard_ids=tuple(f"shard-{i:02d}" for i in range(shards)),
            vnodes=vnodes,
        )

    # -- placement ---------------------------------------------------------

    def vnode_count(self, shard_id: str) -> int:
        """How many points *shard_id* owns on the circle."""
        if shard_id not in self._indices:
            raise ConfigurationError(f"unknown shard {shard_id!r}")
        return dict(self.weights).get(shard_id, self.vnodes)

    @cached_property
    def _indices(self) -> dict[str, int]:
        return {shard_id: i for i, shard_id in enumerate(self.shard_ids)}

    @cached_property
    def _points(self) -> tuple[list[int], list[str]]:
        """Sorted circle positions and the shard owning each one."""
        pairs: list[tuple[int, str]] = []
        for shard_id in self.shard_ids:
            for v in range(self.vnode_count(shard_id)):
                token = f"{shard_id}#{v}".encode("utf-8")
                pairs.append((_point(_VNODE_DOMAIN + token), shard_id))
        # ties (astronomically unlikely) break on shard id so the order
        # is still a pure function of the topology
        pairs.sort()
        return [p for p, _ in pairs], [s for _, s in pairs]

    def shard_for(self, patient_id: str) -> int:
        """The shard index owning *patient_id* (stable across processes)."""
        return self._indices[self.owner_of(patient_id)]

    def owner_of(self, patient_id: str) -> str:
        """The shard *id* owning *patient_id*."""
        keys, owners = self._points
        point = _point(_DOMAIN + patient_id.encode("utf-8"))
        slot = bisect.bisect_right(keys, point)
        if slot == len(keys):  # wrap past the top of the circle
            slot = 0
        return owners[slot]

    def shard_id(self, index: int) -> str:
        """The name of shard *index* (ring order, not necessarily dense)."""
        if not 0 <= index < len(self.shard_ids):
            raise ConfigurationError(
                f"shard index {index} out of range for "
                f"{len(self.shard_ids)} shards"
            )
        return self.shard_ids[index]

    @property
    def shard_count(self) -> int:
        return len(self.shard_ids)

    # -- topology changes --------------------------------------------------

    def with_added(
        self, shard_id: str, vnode_count: int | None = None
    ) -> "VNodeRing":
        """A new ring with *shard_id* joined (split)."""
        if shard_id in self._indices:
            raise ConfigurationError(f"shard {shard_id!r} is already in the ring")
        weights = self.weights
        if vnode_count is not None and vnode_count != self.vnodes:
            weights = weights + ((shard_id, vnode_count),)
        return VNodeRing(
            shard_ids=self.shard_ids + (shard_id,),
            vnodes=self.vnodes,
            weights=weights,
        )

    def with_removed(self, shard_id: str) -> "VNodeRing":
        """A new ring with *shard_id* drained out (merge)."""
        if shard_id not in self._indices:
            raise ConfigurationError(f"shard {shard_id!r} is not in the ring")
        remaining = tuple(s for s in self.shard_ids if s != shard_id)
        if not remaining:
            raise ConfigurationError("cannot remove the last shard")
        return VNodeRing(
            shard_ids=remaining,
            vnodes=self.vnodes,
            weights=tuple((s, n) for s, n in self.weights if s != shard_id),
        )

    def diff(self, new: "HashRing | VNodeRing") -> "RingDiff":
        """The topology change from this ring to *new*."""
        return RingDiff(old=self, new=new)


def _owner_name(ring: "HashRing | VNodeRing", patient_id: str) -> str:
    if isinstance(ring, VNodeRing):
        return ring.owner_of(patient_id)
    return ring.shard_id(ring.shard_for(patient_id))


@dataclass(frozen=True)
class RingDiff:
    """The exact displacement set of a topology change.

    Comparison is by shard *id*, not ring index: renaming a shard's
    position in the tuple is not a move, and only patients whose owning
    shard id changes need migration.
    """

    old: "HashRing | VNodeRing"
    new: "HashRing | VNodeRing"

    @property
    def added(self) -> tuple[str, ...]:
        """Shard ids present only in the new topology."""
        old_ids = set(self.old.shard_ids)
        return tuple(s for s in self.new.shard_ids if s not in old_ids)

    @property
    def removed(self) -> tuple[str, ...]:
        """Shard ids present only in the old topology."""
        new_ids = set(self.new.shard_ids)
        return tuple(s for s in self.old.shard_ids if s not in new_ids)

    def moves(
        self, patient_ids: Iterable[str]
    ) -> dict[str, tuple[str, str]]:
        """``patient_id -> (old_shard_id, new_shard_id)`` for every
        patient of *patient_ids* the change displaces."""
        displaced: dict[str, tuple[str, str]] = {}
        for patient_id in patient_ids:
            before = _owner_name(self.old, patient_id)
            after = _owner_name(self.new, patient_id)
            if before != after:
                displaced[patient_id] = (before, after)
        return displaced

    def displaced(self, patient_ids: Iterable[str]) -> tuple[str, ...]:
        """Just the displaced patient ids, in input order."""
        moves = self.moves(patient_ids)
        return tuple(p for p in patient_ids if p in moves)

    def displaced_fraction(self, patient_ids: Iterable[str]) -> float:
        """The fraction of *patient_ids* the change displaces."""
        patients = list(patient_ids)
        if not patients:
            return 0.0
        return len(self.moves(patients)) / len(patients)
