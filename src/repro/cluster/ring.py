"""Deterministic record placement for the sharded cluster.

Placement must be a pure function of the patient identifier and the
shard count — never of process state.  Two independently restarted
routers (or a router and the recovery path) must agree on where every
patient lives, so the ring hashes with SHA-256 under a fixed domain
label.  Python's builtin ``hash()`` is per-process salted
(``PYTHONHASHSEED``) and is therefore exactly the wrong tool; using it
would scatter a recovered cluster's routing table.

Sharding by *patient* (not by record) keeps every record of one
patient — versions, attachments, disclosures, break-glass grants — on
a single engine, so per-patient invariants (version chains, consent,
accounting of disclosures) never span shards.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigurationError

_DOMAIN = b"curator/cluster-ring\x00"


@dataclass(frozen=True)
class HashRing:
    """A stable ``patient_id -> shard index`` map for a fixed shard count."""

    shard_count: int

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ConfigurationError(
                f"a cluster needs at least one shard, got {self.shard_count}"
            )

    def shard_for(self, patient_id: str) -> int:
        """The shard index owning *patient_id* (stable across processes)."""
        digest = hashlib.sha256(_DOMAIN + patient_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.shard_count

    def shard_id(self, index: int) -> str:
        """The canonical name of shard *index* (``shard-00`` ...)."""
        if not 0 <= index < self.shard_count:
            raise ConfigurationError(
                f"shard index {index} out of range for {self.shard_count} shards"
            )
        return f"shard-{index:02d}"

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """All shard names, in index order."""
        return tuple(self.shard_id(i) for i in range(self.shard_count))
