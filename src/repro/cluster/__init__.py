"""Sharded deployment of the curator engine.

* :mod:`repro.cluster.ring` — deterministic SHA-256 patient placement
  (fixed-modulo :class:`HashRing`, elastic :class:`VNodeRing`);
* :mod:`repro.cluster.manifest` — the HMAC-sealed topology manifest
  recovery refuses to proceed without;
* :mod:`repro.cluster.router` — :class:`CuratorCluster`, the
  thread-safe actor-attributed frontend over N independent engines;
* :mod:`repro.cluster.rebalancer` — online elastic resharding with a
  verifier-checked :class:`MigrationProof` per moved patient.
"""

from repro.cluster.manifest import ClusterManifest
from repro.cluster.rebalancer import (
    MigrationProof,
    RebalanceReport,
    Rebalancer,
    verify_migration_proof,
)
from repro.cluster.ring import HashRing, RingDiff, VNodeRing
from repro.cluster.router import CuratorCluster

__all__ = [
    "ClusterManifest",
    "CuratorCluster",
    "HashRing",
    "MigrationProof",
    "RebalanceReport",
    "Rebalancer",
    "RingDiff",
    "VNodeRing",
    "verify_migration_proof",
]
