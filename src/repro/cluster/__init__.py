"""Sharded deployment of the curator engine.

* :mod:`repro.cluster.ring` — deterministic SHA-256 patient placement;
* :mod:`repro.cluster.manifest` — the HMAC-sealed topology manifest
  recovery refuses to proceed without;
* :mod:`repro.cluster.router` — :class:`CuratorCluster`, the
  thread-safe actor-attributed frontend over N independent engines.
"""

from repro.cluster.manifest import ClusterManifest
from repro.cluster.ring import HashRing
from repro.cluster.router import CuratorCluster

__all__ = ["ClusterManifest", "CuratorCluster", "HashRing"]
