"""Online elastic resharding: move patients between live shards with
verifiable custody hand-off.

The :class:`Rebalancer` drives the cluster from its current virtual-node
ring to a target ring while the router keeps serving reads and writes.
Each displaced patient moves through a fixed stage machine::

    export -> import -> verify -> cutover -> retire -> proof

* **export** — the source packages the patient's full history
  (:meth:`~repro.core.engine.CuratorStore.export_patient_history`):
  version plaintexts checked against their chain digests, attachments,
  retention terms and litigation holds, the patient's audit-chain
  segment, a signed Merkle manifest over the plaintext digests, and a
  chain-continuity attestation binding the segment to the source's
  audit head.
* **import** — the destination re-seals everything under its own keys
  in one atomic WORM batch and archives the segment durably.
* **verify** — the double read: the import's returned digests AND a
  fresh read-back of the destination's decrypted state must both equal
  the signed manifest, entry for entry.  Any mismatch aborts the move
  and the source stays authoritative.
* **cutover** — under the patient's move ticket the audit tail that
  accrued mid-move and the consent directives are synced, then routing
  flips: the destination serves reads before the source copy is gone.
* **retire** — the source drops its copy behind a durable
  ``CUSTODY_TRANSFERRED`` marker (expatriated, not destroyed).
* **proof** — a :class:`MigrationProof` is assembled: the signed
  manifest, per-entry Merkle inclusion proofs, the destination's
  re-derived digests, and the chain-continuity attestation.  With
  ``verify_proofs`` (the default) the proof is checked end-to-end
  against the live destination before the move counts.

Writes to the moving patient block on the ticket for the duration of
the move; writes to every other patient, and reads of everything
including the moving patient, proceed throughout.  A crash at any stage
boundary (the ``hook`` seam raises
:class:`~repro.errors.CrashError` in the sweep harness) leaves the
ticket published; :meth:`CuratorCluster.recover_interrupted_moves`
resolves it — abort before cutover, complete after — so the patient is
wholly on exactly one shard either way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.crypto.hashing import sha256
from repro.crypto.merkle import MerkleProof, verify_inclusion
from repro.crypto.signatures import SignedPayload, TrustStore
from repro.errors import (
    ClusterError,
    IntegrityError,
    MigrationError,
    RecordNotFoundError,
)
from repro.migration.manifest import (
    MigrationManifest,
    entry_inclusion_proofs,
    entry_leaf,
    verify_manifest,
)
from repro.util.encoding import canonical_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.router import CuratorCluster

#: Stage order; a ticket's ``stage`` records the last *completed* stage.
STAGES = ("export", "import", "verify", "cutover", "retire", "proof")

#: Ticket stages at which the destination holds a (partial or full)
#: copy but the source is still authoritative — crash recovery aborts.
_PRE_CUTOVER = ("pending", "exported", "imported", "verified")


class MoveTicket:
    """Per-patient move state: the write gate and the crash record.

    The mover holds ``lock`` for the whole move; writers test it
    non-blocking (:meth:`held`) — a published ticket whose lock is free
    means the mover died, and routing state (unchanged before cutover,
    flipped after) is still correct, so writers may proceed while
    :meth:`~CuratorCluster.recover_interrupted_moves` cleans up.
    """

    __slots__ = (
        "patient_id",
        "source_slot",
        "dest_slot",
        "lock",
        "record_ids",
        "stage",
    )

    def __init__(self, patient_id: str, source_slot: int, dest_slot: int) -> None:
        self.patient_id = patient_id
        self.source_slot = source_slot
        self.dest_slot = dest_slot
        self.lock = threading.RLock()
        self.record_ids: tuple[str, ...] = ()
        self.stage = "pending"

    def held(self) -> bool:
        """True while a live mover owns the ticket."""
        if self.lock.acquire(blocking=False):
            self.lock.release()
            return False
        return True

    def wait(self, timeout: float = 1.0) -> None:
        """Block (bounded) until the mover releases the ticket."""
        if self.lock.acquire(timeout=timeout):
            self.lock.release()

    @property
    def cutover_done(self) -> bool:
        return self.stage not in _PRE_CUTOVER and self.stage != "aborted"


@dataclass(frozen=True)
class MigrationProof:
    """The signed, independently checkable evidence for one move."""

    patient_id: str
    source_shard: str
    destination_shard: str
    #: Manifest epoch of the transition topology the move ran under.
    epoch: int
    #: Source-signed Merkle manifest over the moved extents' plaintext
    #: digests.
    manifest: MigrationManifest
    #: The digests the destination re-derived after re-sealing.
    destination_entries: tuple[tuple[str, bytes], ...]
    #: Per-entry Merkle inclusion proofs against ``manifest.merkle_root``.
    inclusion_proofs: dict[str, MerkleProof] = field(repr=False)
    #: Source-signed chain-continuity attestation over the audit segment.
    attestation: SignedPayload = field(repr=False)

    @property
    def object_count(self) -> int:
        return len(self.manifest.entries)


def verify_migration_proof(
    proof: MigrationProof, trust: TrustStore, destination
) -> None:
    """Check a move's proof end-to-end against the live destination.

    Raises :class:`~repro.errors.MigrationError` (or
    :class:`~repro.errors.IntegrityError` from a broken inclusion
    proof) unless *all* of:

    1. the manifest signature and Merkle root verify against *trust*;
    2. the destination's re-derived digests equal the manifest entries;
    3. every entry carries a valid inclusion proof against the root;
    4. the attestation verifies, names this patient, and its segment
       digest matches the segment the destination durably archived;
    5. a fresh decrypting read of the destination's current state still
       equals the manifest (the verifier's own third read).
    """
    verify_manifest(proof.manifest, trust)
    if tuple(proof.destination_entries) != proof.manifest.entries:
        raise MigrationError(
            f"destination digests for {proof.patient_id} do not match "
            "the signed manifest"
        )
    for object_id, digest in proof.manifest.entries:
        inclusion = proof.inclusion_proofs.get(object_id)
        if inclusion is None:
            raise MigrationError(
                f"no inclusion proof for moved extent {object_id!r}"
            )
        verify_inclusion(
            entry_leaf(object_id, digest), inclusion, proof.manifest.merkle_root
        )
    payload = trust.verify(proof.attestation)
    if (
        payload.get("kind") != "segment-attestation"
        or payload.get("patient") != proof.patient_id
    ):
        raise MigrationError(
            f"attestation does not cover patient {proof.patient_id}"
        )
    snapshot = destination.imported_segment_snapshot(proof.patient_id)
    if sha256(canonical_bytes(list(snapshot))) != payload["segment_digest"]:
        raise MigrationError(
            f"imported audit segment for {proof.patient_id} does not "
            "match the source's chain-continuity attestation"
        )
    if len(snapshot) != payload["events"]:
        raise MigrationError(
            f"imported segment has {len(snapshot)} events, attestation "
            f"signed {payload['events']}"
        )
    live = tuple(destination.patient_history_digests(proof.patient_id))
    if live != proof.manifest.entries:
        raise MigrationError(
            f"destination live contents for {proof.patient_id} do not "
            "match the signed manifest"
        )


@dataclass(frozen=True)
class RebalanceReport:
    """What one :meth:`CuratorCluster.rebalance` run did."""

    from_shards: tuple[str, ...]
    to_shards: tuple[str, ...]
    added: tuple[str, ...]
    removed: tuple[str, ...]
    #: Final manifest epoch after the reshape.
    epoch: int
    #: Patients the ring diff displaced (planned moves).
    displaced: tuple[str, ...]
    #: One verified proof per completed move.
    proofs: tuple[MigrationProof, ...]

    @property
    def moved(self) -> int:
        return len(self.proofs)


class Rebalancer:
    """Drives one cluster reshape; see the module docstring."""

    def __init__(
        self,
        cluster: "CuratorCluster",
        *,
        actor_id: str = "system",
        hook: Callable[[str, str], None] | None = None,
        verify_proofs: bool = True,
        pace_s: float = 0.0,
    ) -> None:
        self._cluster = cluster
        self._actor_id = actor_id
        self._hook = hook
        self._verify_proofs = verify_proofs
        self._pace_s = pace_s

    def _checkpoint(self, stage: str, patient_id: str) -> None:
        if self._hook is not None:
            self._hook(stage, patient_id)

    def run(self, final_ring) -> RebalanceReport:
        cluster = self._cluster
        if not cluster._rebalance_lock.acquire(blocking=False):
            raise ClusterError(
                "a rebalance is already in progress on this cluster"
            )
        try:
            return self._run(final_ring)
        finally:
            cluster._rebalance_lock.release()

    def _run(self, final_ring) -> RebalanceReport:
        cluster = self._cluster
        old_ids = cluster.shard_ids
        added = [
            shard_id
            for shard_id in final_ring.shard_ids
            if shard_id not in set(old_ids)
        ]
        removed = [
            shard_id
            for shard_id in old_ids
            if shard_id not in set(final_ring.shard_ids)
        ]
        pinned = cluster._install_transition(final_ring, added)
        planned: list[tuple[str, int, int]] = []
        for patient_id in sorted(pinned):
            source = cluster._home_slot(patient_id)
            target = cluster._ring_slot(patient_id)
            if source != target:
                planned.append((patient_id, source, target))
        proofs: list[MigrationProof] = []
        for patient_id, source, target in planned:
            if self._pace_s:
                time.sleep(self._pace_s)
            proof = self._move(patient_id, source, target)
            if proof is not None:
                proofs.append(proof)
        # Writers that raced the ring swap may have landed patients on a
        # shard being removed; drain until the doomed shards are empty.
        for _ in range(4):
            stragglers: list[tuple[str, int, int]] = []
            for shard_id in removed:
                slot = cluster._topo.slots[shard_id]
                for patient_id in cluster._on_shard(
                    slot, lambda engine: engine.patient_ids()
                ):
                    stragglers.append(
                        (patient_id, slot, cluster._ring_slot(patient_id))
                    )
            if not stragglers:
                break
            for patient_id, source, target in stragglers:
                proof = self._move(patient_id, source, target)
                if proof is not None:
                    proofs.append(proof)
        else:
            raise ClusterError(
                f"shards {removed} would not drain; rebalance left in "
                "transition topology"
            )
        cluster._finalize_rebalance(final_ring)
        return RebalanceReport(
            from_shards=tuple(old_ids),
            to_shards=final_ring.shard_ids,
            added=tuple(added),
            removed=tuple(removed),
            epoch=cluster.manifest.epoch,
            displaced=tuple(patient_id for patient_id, _, _ in planned),
            proofs=tuple(proofs),
        )

    def _move(
        self, patient_id: str, source_slot: int, dest_slot: int
    ) -> MigrationProof | None:
        cluster = self._cluster
        ticket = cluster._publish_move(patient_id, source_slot, dest_slot)
        try:
            with ticket.lock:
                # Snapshot the record set under the source shard lock:
                # any writer that raced the publish either finished (and
                # is in the snapshot) or will see the ticket and wait.
                cluster._register_move_records(ticket)
                self._checkpoint("export", patient_id)
                try:
                    bundle = cluster._on_shard(
                        source_slot,
                        lambda engine: engine.export_patient_history(
                            patient_id, actor_id=self._actor_id
                        ),
                    )
                except RecordNotFoundError:
                    # disposed to nothing since planning — nothing to move
                    cluster._retire_move(ticket)
                    return None
                ticket.stage = "exported"
                self._checkpoint("import", patient_id)
                dest_entries = cluster._on_shard(
                    dest_slot,
                    lambda engine: engine.import_patient_history(
                        bundle, actor_id=self._actor_id
                    ),
                )
                ticket.stage = "imported"
                self._checkpoint("verify", patient_id)
                trust = cluster.migration_trust()
                verify_manifest(bundle.manifest, trust)
                if tuple(dest_entries) != bundle.manifest.entries:
                    raise MigrationError(
                        f"destination re-sealed digests for {patient_id} "
                        "do not match the signed manifest"
                    )
                recheck = cluster._on_shard(
                    dest_slot,
                    lambda engine: engine.patient_history_digests(patient_id),
                )
                if tuple(recheck) != bundle.manifest.entries:
                    raise MigrationError(
                        f"destination read-back for {patient_id} does not "
                        "match the signed manifest"
                    )
                ticket.stage = "verified"
                self._checkpoint("cutover", patient_id)
                since = bundle.attestation.payload["log_size"]
                delta = cluster._on_shard(
                    source_slot,
                    lambda engine: engine.export_audit_delta(
                        patient_id, since=since
                    ),
                )
                if delta:
                    cluster._on_shard(
                        dest_slot,
                        lambda engine: engine.adopt_audit_delta(
                            patient_id, delta
                        ),
                    )
                directives = cluster._on_shard(
                    source_slot,
                    lambda engine: engine.export_consent_directives(patient_id),
                )
                if directives:
                    cluster._on_shard(
                        dest_slot,
                        lambda engine: engine.adopt_consent_directives(
                            patient_id, directives
                        ),
                    )
                cluster._cutover(ticket)
                ticket.stage = "cutover"
                self._checkpoint("retire", patient_id)
                cluster._on_shard(
                    source_slot,
                    lambda engine: engine.retire_patient(
                        patient_id,
                        actor_id=self._actor_id,
                        destination_id=cluster.slot_shard_id(dest_slot),
                    ),
                )
                ticket.stage = "retired"
                self._checkpoint("proof", patient_id)
                proof = MigrationProof(
                    patient_id=patient_id,
                    source_shard=cluster.slot_shard_id(source_slot),
                    destination_shard=cluster.slot_shard_id(dest_slot),
                    epoch=cluster.manifest.epoch,
                    manifest=bundle.manifest,
                    destination_entries=tuple(dest_entries),
                    inclusion_proofs=entry_inclusion_proofs(bundle.manifest),
                    attestation=bundle.attestation,
                )
                if self._verify_proofs:
                    cluster._on_shard(
                        dest_slot,
                        lambda engine: verify_migration_proof(
                            proof, trust, engine
                        ),
                    )
                ticket.stage = "done"
        except (MigrationError, IntegrityError):
            if ticket.stage in _PRE_CUTOVER:
                self._abort(ticket)
            cluster._retire_move(ticket)
            raise
        # A CrashError (or any unexpected error) propagates with the
        # ticket still published: recover_interrupted_moves() resolves it.
        cluster._retire_move(ticket)
        return proof

    def _abort(self, ticket: MoveTicket) -> None:
        """Undo a failed pre-cutover move: the source keeps custody and
        any partial destination copy is retired back."""
        cluster = self._cluster
        if ticket.stage in ("imported", "verified"):
            try:
                cluster._on_shard(
                    ticket.dest_slot,
                    lambda engine: engine.retire_patient(
                        ticket.patient_id,
                        actor_id=self._actor_id,
                        destination_id=cluster.slot_shard_id(ticket.source_slot),
                    ),
                )
            except RecordNotFoundError:
                pass
        ticket.stage = "aborted"
