"""Process-backed shard workers for the cluster router.

In-process shard engines share one interpreter, so even with the
router's thread fan-out every cryptographic byte of every shard is
serialized through a single GIL.  A :class:`ShardWorkerProxy` moves one
whole engine into a dedicated worker process and speaks a compact
command protocol over a pipe:

* **request** — ``(method_name, args, kwargs)``, pickled once; the
  worker resolves ``method_name`` against its private
  :class:`~repro.core.engine.CuratorStore` and invokes it.
* **response** — ``(True, result)`` on success or ``(False, exception)``
  on failure; the proxy re-raises the exception in the caller, so error
  semantics match the in-process engine call for every picklable error
  (all of :mod:`repro.errors` is).

The proxy duck-types the engine surface — the router's routing/locking
code does not know whether a shard is local or a process — with two
deliberate exceptions that fail fast instead of pretending:

* raw **device access** (``devices``/``audit_devices``/attribute reads
  like ``_clock``) cannot cross the pipe: a
  :class:`~repro.storage.block.BlockDevice` proxy would be a copy, and
  tampering with a copy proves nothing.  Harnesses that need raw media
  (the detection-equivalence oracle, crash sweeps) must run the cluster
  with ``workers=0``.
* the worker compiles its **own policy ruleset**: compiled rules may
  close over non-picklable condition callables, so the shard spec ships
  with ``policy_rules=None`` and each worker pays one compilation.

Worker processes are daemons: an abandoned cluster cannot wedge
interpreter shutdown, but call :meth:`ShardWorkerProxy.close` (via
``CuratorCluster.close``) for an orderly drain.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import replace
from functools import partial
from typing import Any

from repro.core.config import CuratorConfig
from repro.errors import ClusterError

_SHUTDOWN = "__shutdown__"


def _serve(conn, config: CuratorConfig) -> None:
    """Worker-process main loop: build the shard engine, answer commands."""
    from repro.core.engine import CuratorStore

    engine = CuratorStore(config)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message == _SHUTDOWN:
            conn.send((True, None))
            break
        method, args, kwargs = message
        try:
            result = getattr(engine, method)(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 — every error crosses the pipe
            try:
                conn.send((False, exc))
            except Exception:
                # Unpicklable exception: degrade to a ClusterError that
                # at least carries the message.
                conn.send(
                    (False, ClusterError(f"shard worker {method} failed: {exc}"))
                )
        else:
            try:
                conn.send((True, result))
            except Exception as exc:
                # Connection.send pickles before writing, so a pickling
                # failure leaves the pipe clean for the error response.
                conn.send(
                    (False, ClusterError(f"unpicklable result from {method}: {exc}"))
                )
    conn.close()


def worker_shard_config(config: CuratorConfig) -> CuratorConfig:
    """The picklable shard spec shipped to a worker process.

    Identical to the in-process shard config except ``policy_rules`` is
    stripped: compiled rules may hold non-picklable condition callables,
    and authorization stays equivalent because the worker recompiles the
    same default ruleset from the same RBAC tables.
    """
    return replace(config, policy_rules=None)


class ShardWorkerProxy:
    """One shard engine hosted in a worker process, behind the engine API.

    Unknown public attribute lookups resolve to remote method calls
    (memoized per name); private attributes raise ``AttributeError`` so
    code that reaches into engine internals fails loudly instead of
    operating on a phantom.
    """

    def __init__(self, config: CuratorConfig, shard_id: str) -> None:
        context = multiprocessing.get_context()
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=_serve,
            args=(child, worker_shard_config(config)),
            name=f"curator-shard-{shard_id}",
            daemon=True,
        )
        self._process.start()
        child.close()
        self._shard_id = shard_id
        self._closed = False

    # -- command protocol ------------------------------------------------

    def _call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        if self._closed:
            raise ClusterError(f"shard worker {self._shard_id} is closed")
        try:
            self._conn.send((method, args, kwargs))
            ok, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ClusterError(
                f"shard worker {self._shard_id} died during {method}: {exc}"
            ) from exc
        if not ok:
            raise payload
        return payload

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(
                f"{name!r}: engine internals are not reachable on a "
                f"process-backed shard (run the cluster with workers=0)"
            )
        caller = partial(self._call, name)
        self.__dict__[name] = caller  # memoize; __getattr__ won't fire again
        return caller

    # -- the deliberately unsupported surface ----------------------------

    def devices(self):
        raise ClusterError(
            "raw device access is not available on a process-backed shard; "
            "run the cluster with workers=0 for device-level harnesses"
        )

    def audit_devices(self):
        raise ClusterError(
            "raw audit-device access is not available on a process-backed "
            "shard; run the cluster with workers=0 for device-level harnesses"
        )

    # -- lifecycle -------------------------------------------------------

    @property
    def recovery_report(self):
        """Worker shards are always built live (recovery needs device
        hand-off, which cannot cross the pipe)."""
        return None

    def close(self) -> None:
        """Orderly shutdown: drain, ack, join; terminate as a last resort."""
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.send(_SHUTDOWN)
            self._conn.recv()
        except (EOFError, OSError):
            pass
        self._conn.close()
        self._process.join(timeout=5)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5)
