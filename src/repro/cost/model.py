"""Total-cost-of-retention model.

The paper requires that compliant storage "not be cost-prohibitive",
using "cheap off-the-shelf hardware", and notes that compliance adds
"significant management overhead" plus personnel training.  The model
here quantifies a deployment over an N-year horizon:

* **media** — capacity is bought per service-life generation; cheaper
  media (magnetic, 5y life) is re-bought more often than pricier
  archival media (optical WORM, 10y);
* **migration** — every media generation boundary migrates the archive:
  per-GB copy cost plus verification compute;
* **personnel** — fixed annual compliance overhead (training, audits)
  plus a per-audit-event review cost;
* **security overhead** — the CPU/storage tax of encryption, hashing,
  and index padding, expressed as a fractional capacity/throughput
  surcharge;
* **tiering** — :meth:`CostModel.project_tiered` models the cold
  archive tier: the idle fraction of the population sits in compacted
  compressed segments at a fraction of its warm footprint (the E7b
  benchmark measures ~0.38x), shrinking every capacity-driven line
  (media, migration, security surcharge) for the cold share.

Numbers are parameterized (mid-2000s archival pricing by default) so
E10 can sweep them; the reproduction target is the *shape* — which
configuration is cheapest at which horizon — not 2007 street prices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class MediaCost:
    """Pricing and lifetime for one media class."""

    name: str
    dollars_per_gb: float
    service_life_years: float

    def __post_init__(self) -> None:
        if self.dollars_per_gb < 0 or self.service_life_years <= 0:
            raise ValidationError("media cost parameters must be positive")


STANDARD_COSTS: dict[str, MediaCost] = {
    "magnetic": MediaCost("magnetic", dollars_per_gb=0.50, service_life_years=5.0),
    "optical_worm": MediaCost("optical_worm", dollars_per_gb=2.00, service_life_years=10.0),
    "tape": MediaCost("tape", dollars_per_gb=0.10, service_life_years=7.0),
}


@dataclass(frozen=True)
class CostReport:
    """Itemized cost over the modelled horizon."""

    horizon_years: float
    media_generations: int
    media_dollars: float
    migration_dollars: float
    personnel_dollars: float
    security_overhead_dollars: float
    #: Fraction of the archive resident in the cold tier (0 = untiered).
    cold_fraction: float = 0.0
    #: Capacity-driven dollars the cold tier's compaction saved vs
    #: keeping the whole archive warm.
    tiering_savings_dollars: float = 0.0

    @property
    def total_dollars(self) -> float:
        return (
            self.media_dollars
            + self.migration_dollars
            + self.personnel_dollars
            + self.security_overhead_dollars
        )

    def rows(self) -> list[tuple[str, float]]:
        """(line item, dollars) rows for report rendering."""
        rows = [
            ("media", self.media_dollars),
            ("migration", self.migration_dollars),
            ("personnel", self.personnel_dollars),
            ("security_overhead", self.security_overhead_dollars),
        ]
        if self.cold_fraction > 0.0:
            rows.append(("tiering_savings", -self.tiering_savings_dollars))
        rows.append(("total", self.total_dollars))
        return rows


class CostModel:
    """Parameterized cost projection for a compliant archive."""

    def __init__(
        self,
        media: MediaCost,
        migration_dollars_per_gb: float = 0.05,
        annual_compliance_dollars: float = 5_000.0,
        audit_review_dollars_per_event: float = 0.01,
        security_overhead_fraction: float = 0.15,
    ) -> None:
        if migration_dollars_per_gb < 0:
            raise ValidationError("migration cost must be non-negative")
        if not 0.0 <= security_overhead_fraction <= 1.0:
            raise ValidationError("security overhead fraction must be in [0,1]")
        self._media = media
        self._migration_per_gb = migration_dollars_per_gb
        self._annual_compliance = annual_compliance_dollars
        self._audit_per_event = audit_review_dollars_per_event
        self._security_fraction = security_overhead_fraction

    def project(
        self,
        archive_gb: float,
        horizon_years: float,
        audit_events_per_year: float = 0.0,
        secure: bool = True,
    ) -> CostReport:
        """Project total cost of retaining *archive_gb* for *horizon_years*.

        ``secure=False`` models the paper's non-compliant baseline: no
        security overhead, no compliance personnel — used by E10 to show
        the compliance premium is bounded.
        """
        if archive_gb < 0 or horizon_years <= 0:
            raise ValidationError("archive size and horizon must be positive")
        generations = self.media_generations(horizon_years)
        effective_gb = archive_gb * (1.0 + (self._security_fraction if secure else 0.0))
        media_dollars = generations * effective_gb * self._media.dollars_per_gb
        # Each generation boundary after the first is a migration.
        migration_dollars = (generations - 1) * effective_gb * self._migration_per_gb
        personnel = (
            horizon_years * self._annual_compliance
            + horizon_years * audit_events_per_year * self._audit_per_event
        ) if secure else 0.0
        security_overhead = (
            generations * archive_gb * self._security_fraction * self._media.dollars_per_gb
            if secure
            else 0.0
        )
        # security_overhead is the delta already inside media_dollars;
        # report it as its own line and keep media at the raw size.
        media_dollars -= security_overhead
        return CostReport(
            horizon_years=horizon_years,
            media_generations=generations,
            media_dollars=media_dollars,
            migration_dollars=migration_dollars,
            personnel_dollars=personnel,
            security_overhead_dollars=security_overhead,
        )

    def project_tiered(
        self,
        archive_gb: float,
        horizon_years: float,
        cold_fraction: float,
        cold_footprint_ratio: float = 0.38,
        audit_events_per_year: float = 0.0,
    ) -> CostReport:
        """Project cost with the idle *cold_fraction* of the archive
        compacted into cold segments at *cold_footprint_ratio* of its
        warm footprint (default from the E7b measurement).

        Personnel cost is untouched — compliance overhead follows the
        record population, not its encoding — while every
        capacity-driven line (media rebuys, migration copies, the
        security surcharge) shrinks with the stored bytes.
        """
        if not 0.0 <= cold_fraction <= 1.0:
            raise ValidationError("cold fraction must be in [0,1]")
        if not 0.0 < cold_footprint_ratio <= 1.0:
            raise ValidationError("cold footprint ratio must be in (0,1]")
        effective_gb = archive_gb * (
            1.0 - cold_fraction + cold_fraction * cold_footprint_ratio
        )
        tiered = self.project(
            effective_gb, horizon_years, audit_events_per_year=audit_events_per_year
        )
        untiered = self.project(
            archive_gb, horizon_years, audit_events_per_year=audit_events_per_year
        )
        savings = untiered.total_dollars - tiered.total_dollars
        return CostReport(
            horizon_years=tiered.horizon_years,
            media_generations=tiered.media_generations,
            media_dollars=tiered.media_dollars,
            migration_dollars=tiered.migration_dollars,
            personnel_dollars=tiered.personnel_dollars,
            security_overhead_dollars=tiered.security_overhead_dollars,
            cold_fraction=cold_fraction,
            tiering_savings_dollars=savings,
        )

    def media_generations(self, horizon_years: float) -> int:
        """How many times media must be (re)bought over the horizon."""
        generations = 1
        covered = self._media.service_life_years
        while covered < horizon_years:
            generations += 1
            covered += self._media.service_life_years
        return generations

    def cheapest_media_for(
        self, archive_gb: float, horizon_years: float, candidates: dict[str, MediaCost]
    ) -> tuple[str, CostReport]:
        """Pick the cheapest media class for the horizon (E10's sweep)."""
        if not candidates:
            raise ValidationError("no candidate media classes given")
        best_name, best_report = None, None
        for name, media in sorted(candidates.items()):
            model = CostModel(
                media,
                migration_dollars_per_gb=self._migration_per_gb,
                annual_compliance_dollars=self._annual_compliance,
                audit_review_dollars_per_event=self._audit_per_event,
                security_overhead_fraction=self._security_fraction,
            )
            report = model.project(archive_gb, horizon_years)
            if best_report is None or report.total_dollars < best_report.total_dollars:
                best_name, best_report = name, report
        assert best_name is not None and best_report is not None
        return best_name, best_report
