"""Cost modelling for compliant storage (the paper's §3 Cost requirement)."""

from repro.cost.model import (
    CostModel,
    CostReport,
    MediaCost,
    STANDARD_COSTS,
)

__all__ = ["CostModel", "CostReport", "MediaCost", "STANDARD_COSTS"]
