"""Built-in condition predicates.

Each factory returns a :class:`~repro.policy.model.Condition` whose
``check`` inspects the actor, the bound role, the request context, and
the engine environment, and answers three things at once: does the
condition hold, why (the detail becomes the denial reason when an ALLOW
rule fails it, or the deny reason when a DENY rule matches on it), and
whether the answer is cacheable — a pure function of the decision-cache
key.  Anything that consulted per-actor or mutable-registry state
(treating sets, consent directives, break-glass grants, call-scoped
facts) reports ``cacheable=False`` so the decision cache never serves a
stale answer for it.

The predicates deliberately avoid importing the RBAC tables: purposes
are compared by their ``.value`` strings so this module stays below
:mod:`repro.access` in the import graph.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConsentError, RetentionError
from repro.policy.model import CheckResult, Condition, PolicyContext

_EMERGENCY = "emergency"


def _purpose_value(context: PolicyContext) -> str:
    purpose = context.purpose
    if purpose is None:
        return ""
    return getattr(purpose, "value", str(purpose))


def actor_is_system() -> Condition:
    """The unconditional-trust override: the ``system`` principal."""

    def check(actor, role, action, resource, context, env) -> CheckResult:
        actor_id = getattr(actor, "user_id", None) or str(actor)
        return CheckResult(actor_id == "system", "system principal", True)

    return Condition("actor_is_system", check)


def purpose_in(allowed: frozenset) -> Condition:
    """Purpose-of-use restriction for a (role, action) pair."""

    allowed = frozenset(allowed)
    sorted_values = sorted(getattr(p, "value", str(p)) for p in allowed)

    def check(actor, role, action, resource, context, env) -> CheckResult:
        if context.purpose in allowed:
            return CheckResult(True, "", True)
        role_value = getattr(role, "value", str(role))
        return CheckResult(
            False,
            f"role {role_value} may use {action} only for "
            f"{sorted_values}, not {_purpose_value(context)}",
            True,
        )

    return Condition("purpose_in", check)


def own_record_only() -> Condition:
    """Patients reach only their own chart."""

    def check(actor, role, action, resource, context, env) -> CheckResult:
        if context.own_record:
            return CheckResult(True, "", True)
        return CheckResult(False, "patients may only read their own records", True)

    return Condition("own_record_only", check)


def treating_relationship() -> Condition:
    """Clinical access to an identified record requires an active
    treating relationship — unless the stated purpose is emergency
    (the in-band emergency path; break-glass is the out-of-band one)."""

    def check(actor, role, action, resource, context, env) -> CheckResult:
        if not context.patient_id:
            return CheckResult(True, "", True)
        if _purpose_value(context) == _EMERGENCY:
            return CheckResult(True, "", True)
        is_treating = getattr(actor, "is_treating", None)
        if is_treating is not None and is_treating(context.patient_id):
            return CheckResult(True, "", False)
        actor_id = getattr(actor, "user_id", None) or str(actor)
        return CheckResult(
            False,
            f"{actor_id} has no treating relationship with "
            f"patient {context.patient_id}",
            False,
        )

    return Condition("treating_relationship", check)


def consent_blocks() -> Condition:
    """Matches when a patient directive blocks disclosure to the bound
    role for the stated purpose.  Binding-tier: evaluated against the
    role that won the role pass, exactly as the legacy engine checked
    consent only against the deciding role."""

    def check(actor, role, action, resource, context, env) -> CheckResult:
        consent = getattr(env, "consent", None)
        if (
            consent is None
            or not context.patient_id
            or role is None
            or context.purpose is None
        ):
            return CheckResult(False, "", consent is None or not context.patient_id)
        try:
            consent.check_disclosure(context.patient_id, role, context.purpose)
        except ConsentError as exc:
            return CheckResult(True, str(exc), False)
        return CheckResult(False, "", False)

    return Condition("consent_blocks", check)


def break_glass_active() -> Condition:
    """Matches when an unexpired break-glass grant covers (actor,
    patient) right now.  Fallback-tier: rescues a role-pass denial but
    never overrides a binding (consent) or global deny."""

    def check(actor, role, action, resource, context, env) -> CheckResult:
        controller = getattr(env, "breakglass", None)
        if controller is None or not context.patient_id:
            return CheckResult(False, "", controller is None or not context.patient_id)
        actor_id = getattr(actor, "user_id", None) or str(actor)
        if controller.has_active_grant(actor_id, context.patient_id):
            return CheckResult(
                True,
                f"active break-glass grant for {actor_id} "
                f"on patient {context.patient_id}",
                False,
            )
        return CheckResult(False, "", False)

    return Condition("break_glass_active", check)


def retention_clear() -> Condition:
    """Matches when the environment's retention lock permits deletion
    of the resource right now; the failure detail is the retention
    lock's own message (term unexpired, litigation hold)."""

    def check(actor, role, action, resource, context, env) -> CheckResult:
        retention = getattr(env, "retention", None)
        clock = getattr(env, "clock", None)
        if retention is None or clock is None:
            return CheckResult(True, "", False)
        try:
            retention.check_deletable(resource, clock.now())
        except RetentionError as exc:
            return CheckResult(False, str(exc), False)
        return CheckResult(True, "", False)

    return Condition("retention_clear", check)


def retention_blocked() -> Condition:
    """The deny-side complement of :func:`retention_clear` (matches when
    deletion is unlawful now)."""

    clear = retention_clear()

    def check(actor, role, action, resource, context, env) -> CheckResult:
        result = clear.check(actor, role, action, resource, context, env)
        return CheckResult(not result.ok, result.detail, result.cacheable)

    return Condition("retention_blocked", check)


def _render_fact_detail(
    template: str, actor: Any, resource: str, context: PolicyContext
) -> str:
    actor_id = getattr(actor, "user_id", None) or str(actor)
    try:
        return template.format(actor=actor_id, resource=resource, **dict(context.facts))
    except (KeyError, IndexError):
        return template


def fact_true(name: str, detail: str = "") -> Condition:
    """Matches when the named context fact is truthy.  ``detail`` is a
    format template over ``actor``, ``resource``, and every fact."""

    def check(actor, role, action, resource, context, env) -> CheckResult:
        ok = bool(context.fact(name))
        return CheckResult(ok, _render_fact_detail(detail, actor, resource, context), False)

    return Condition(f"fact_true:{name}", check)


def fact_false(name: str, detail: str = "") -> Condition:
    """Matches when the named context fact is falsy."""

    def check(actor, role, action, resource, context, env) -> CheckResult:
        ok = not context.fact(name)
        return CheckResult(ok, _render_fact_detail(detail, actor, resource, context), False)

    return Condition(f"fact_false:{name}", check)
