"""repro.policy — the unified declarative policy engine.

One explainable decision path for RBAC, consent, treating
relationships, break-glass, sessions, and disposition: rules are
declared (:mod:`~repro.policy.model`), compiled from the legacy tables
(:mod:`~repro.policy.compiler`), evaluated with deny-overrides and a
full consultation trace (:mod:`~repro.policy.engine`), and statically
checked (:mod:`~repro.policy.lint`).
"""

from repro.policy.engine import PolicyEngine, PolicyEnv
from repro.policy.model import (
    DESTRUCTION_ACTION,
    WILDCARD,
    CheckResult,
    Condition,
    Decision,
    Effect,
    PolicyContext,
    PolicyRule,
    RuleTrace,
    Tier,
    ensure_destruction_authorized,
    resource_class,
)

__all__ = [
    "CheckResult",
    "Condition",
    "DESTRUCTION_ACTION",
    "Decision",
    "Effect",
    "PolicyContext",
    "PolicyEngine",
    "PolicyEnv",
    "PolicyRule",
    "RuleTrace",
    "Tier",
    "WILDCARD",
    "ensure_destruction_authorized",
    "resource_class",
]
